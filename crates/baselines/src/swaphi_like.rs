//! SWAPHI-like comparator: 32-bit intra-sequence striped SW on the
//! 512-bit ("MIC") engine shape.
//!
//! SWAPHI (Liu & Schmidt 2014) offers inter- and intra-sequence
//! vectorization on Xeon Phi; the paper benchmarks its
//! *intra-sequence, int type* mode, which is a plain 16-lane i32
//! striped-iterate Smith-Waterman without AAlign's hybrid switching.
//! That is exactly what this type runs: the main dispatcher pinned to
//! the 512-bit platform, `StripedIterate`, `Fixed32` — so the Fig. 11
//! delta against AAlign isolates the hybrid mechanism.

use aalign_bio::{Sequence, SubstMatrix};
use aalign_core::{
    AlignConfig, AlignError, AlignOutput, AlignScratch, Aligner, GapModel, PreparedQuery, Strategy,
    WidthPolicy,
};
use aalign_vec::detect::Isa;

/// A prepared SWAPHI-like searcher for one query.
#[derive(Debug)]
pub struct SwaphiLike {
    aligner: Aligner,
    prepared: PreparedQuery,
}

impl SwaphiLike {
    /// Prepare for a query (local alignment; affine or linear gaps).
    ///
    /// # Panics
    /// Panics if the query is empty.
    pub fn new(query: &Sequence, gap: GapModel, matrix: &SubstMatrix) -> Self {
        let aligner = Aligner::new(AlignConfig::local(gap, matrix))
            .with_strategy(Strategy::StripedIterate)
            .with_isa(Isa::Avx512)
            .with_width(WidthPolicy::Fixed32);
        let prepared = aligner.prepare(query).expect("non-empty validated query");
        Self { aligner, prepared }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlignConfig {
        self.aligner.config()
    }

    /// Align one subject (infallible for validated same-alphabet
    /// subjects).
    pub fn align(&self, subject: &Sequence, scratch: &mut AlignScratch) -> AlignOutput {
        self.try_align(subject, scratch)
            .expect("subject validated against the same alphabet")
    }

    /// Fallible variant of [`Self::align`].
    pub fn try_align(
        &self,
        subject: &Sequence,
        scratch: &mut AlignScratch,
    ) -> Result<AlignOutput, AlignError> {
        self.aligner
            .align_prepared(&self.prepared, subject, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
    use aalign_core::paradigm::paradigm_dp;

    #[test]
    fn scores_match_reference() {
        let mut rng = seeded_rng(6);
        let q = named_query(&mut rng, 150);
        let tool = SwaphiLike::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        let mut scratch = AlignScratch::new();
        for spec in [
            PairSpec::new(Level::Hi, Level::Hi),
            PairSpec::new(Level::Lo, Level::Hi),
        ] {
            let s = spec.generate(&mut rng, &q).subject;
            let want = paradigm_dp(tool.config(), &q, &s).score;
            assert_eq!(tool.align(&s, &mut scratch).score, want);
        }
    }

    #[test]
    fn runs_on_512_bit_shape() {
        let mut rng = seeded_rng(8);
        let q = named_query(&mut rng, 60);
        let s = named_query(&mut rng, 50);
        let tool = SwaphiLike::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        let out = tool.align(&s, &mut AlignScratch::new());
        assert!(
            out.backend.contains("x16"),
            "expected 16-lane backend, got {}",
            out.backend
        );
        assert_eq!(out.elem_bits, 32);
    }

    #[test]
    fn linear_gaps_supported() {
        let mut rng = seeded_rng(7);
        let q = named_query(&mut rng, 80);
        let s = named_query(&mut rng, 70);
        let tool = SwaphiLike::new(&q, GapModel::linear(-3), &BLOSUM62);
        let want = paradigm_dp(tool.config(), &q, &s).score;
        assert_eq!(tool.align(&s, &mut AlignScratch::new()).score, want);
    }
}
