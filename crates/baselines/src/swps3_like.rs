//! SWPS3-like comparator: 8-bit-first striped Smith-Waterman.
//!
//! SWPS3 (Szalkowski et al. 2008) runs Farrar's striped-iterate
//! kernel on **char (8-bit) buffers** and only re-runs a subject at
//! 16-bit when saturation is detected. The paper (Sec. VI-C) credits
//! this for SWPS3 winning on long queries (lower cache pressure) and
//! losing elsewhere. This reimplementation keeps exactly that
//! structure: an i8 → i16 → i32 escalation ladder of striped-iterate
//! kernels with per-level profiles built once per query, running on
//! the 256-bit CPU engines through the same dispatched fast path as
//! the main aligner (so the Fig. 11 comparison measures the
//! *algorithmic* difference, not call overhead).

use aalign_bio::{Sequence, SubstMatrix};
use aalign_core::{
    AlignConfig, AlignError, AlignScratch, Aligner, GapModel, PreparedQuery, Strategy, WidthPolicy,
};
use aalign_vec::detect::Isa;

/// A prepared SWPS3-like searcher for one query.
#[derive(Debug)]
pub struct Swps3Like {
    cfg: AlignConfig,
    levels: Vec<(u32, Aligner, PreparedQuery)>,
}

/// Outcome of one SWPS3-like alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swps3Result {
    /// Smith-Waterman score.
    pub score: i32,
    /// Element width that produced the accepted score (8/16/32).
    pub bits_used: u32,
}

impl Swps3Like {
    /// Prepare for a query with the standard SW setup (local
    /// alignment, affine or linear gaps).
    ///
    /// # Panics
    /// Panics if the query is empty.
    pub fn new(query: &Sequence, gap: GapModel, matrix: &SubstMatrix) -> Self {
        let cfg = AlignConfig::local(gap, matrix);
        let levels = [
            (8, WidthPolicy::Fixed8),
            (16, WidthPolicy::Fixed16),
            (32, WidthPolicy::Fixed32),
        ]
        .into_iter()
        .map(|(bits, width)| {
            let aligner = Aligner::new(cfg.clone())
                .with_strategy(Strategy::StripedIterate)
                .with_isa(Isa::Avx2)
                .with_width(width);
            let prepared = aligner.prepare(query).expect("non-empty validated query");
            (bits, aligner, prepared)
        })
        .collect();
        Self { cfg, levels }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlignConfig {
        &self.cfg
    }

    /// Align one subject: run at 8-bit, escalate on saturation.
    pub fn align(&self, subject: &Sequence, scratch: &mut Swps3Scratch) -> Swps3Result {
        self.try_align(subject, scratch)
            .expect("subject validated against the same alphabet")
    }

    /// Fallible variant of [`Self::align`].
    pub fn try_align(
        &self,
        subject: &Sequence,
        scratch: &mut Swps3Scratch,
    ) -> Result<Swps3Result, AlignError> {
        let mut last = Swps3Result {
            score: 0,
            bits_used: 8,
        };
        for (bits, aligner, prepared) in &self.levels {
            let out = aligner.align_prepared(prepared, subject, &mut scratch.inner)?;
            last = Swps3Result {
                score: out.score,
                bits_used: *bits,
            };
            if !out.saturated {
                break;
            }
        }
        Ok(last)
    }
}

/// Reusable per-thread scratch buffers.
#[derive(Debug, Default)]
pub struct Swps3Scratch {
    inner: AlignScratch,
}

impl Swps3Scratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
    use aalign_core::paradigm::paradigm_dp;

    #[test]
    fn scores_match_reference_across_similarities() {
        let mut rng = seeded_rng(2);
        let q = named_query(&mut rng, 100);
        let tool = Swps3Like::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        let mut scratch = Swps3Scratch::new();
        for spec in [
            PairSpec::new(Level::Hi, Level::Hi),
            PairSpec::new(Level::Md, Level::Md),
            PairSpec::new(Level::Lo, Level::Lo),
        ] {
            let s = spec.generate(&mut rng, &q).subject;
            let want = paradigm_dp(tool.config(), &q, &s).score;
            let got = tool.align(&s, &mut scratch);
            assert_eq!(got.score, want, "{}", spec.label());
        }
    }

    #[test]
    fn dissimilar_subjects_stay_in_8_bit() {
        let mut rng = seeded_rng(3);
        let q = named_query(&mut rng, 120);
        let s = named_query(&mut rng, 110); // unrelated → low score
        let tool = Swps3Like::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        let got = tool.align(&s, &mut Swps3Scratch::new());
        assert_eq!(got.bits_used, 8, "score {} fits i8", got.score);
    }

    #[test]
    fn similar_long_subjects_escalate() {
        let mut rng = seeded_rng(4);
        let q = named_query(&mut rng, 200);
        let tool = Swps3Like::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        // Identical sequence: score ≈ 5.2 per residue × 200 ≫ 127.
        let got = tool.align(&q, &mut Swps3Scratch::new());
        assert!(got.bits_used >= 16, "bits {}", got.bits_used);
        let want = paradigm_dp(tool.config(), &q, &q).score;
        assert_eq!(got.score, want);
    }

    #[test]
    fn escalation_reaches_32_bit_for_huge_scores() {
        // 8000 tryptophans self-aligned: 88_000 > i16::MAX.
        let text: Vec<u8> = std::iter::repeat_n(b'W', 8000).collect();
        let q = Sequence::protein("w8000", &text).unwrap();
        let tool = Swps3Like::new(&q, GapModel::affine(-10, -2), &BLOSUM62);
        let got = tool.align(&q, &mut Swps3Scratch::new());
        assert_eq!(got.bits_used, 32);
        assert_eq!(got.score, 8000 * 11);
    }

    #[test]
    fn linear_gap_system_supported() {
        let mut rng = seeded_rng(5);
        let q = named_query(&mut rng, 80);
        let s = named_query(&mut rng, 90);
        let tool = Swps3Like::new(&q, GapModel::linear(-4), &BLOSUM62);
        let want = paradigm_dp(tool.config(), &q, &s).score;
        assert_eq!(tool.align(&s, &mut Swps3Scratch::new()).score, want);
    }
}
