//! Textbook full-matrix scalar alignment.
//!
//! Deliberately unoptimized (three full `(n+1)×(m+1)` matrices,
//! allocated per call): the reference point that shows what the
//! optimized sequential baseline and the vector kernels improve on.

use aalign_bio::Sequence;
use aalign_core::config::{AlignConfig, AlignKind};
use aalign_core::paradigm::NEG_INF;

/// Align with full matrices; returns the score.
#[allow(clippy::needless_range_loop)] // textbook DP, indices intentional
pub fn naive_align(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> i32 {
    let t2 = cfg.table2();
    let q = query.indices();
    let s = subject.indices();
    let (m, n) = (q.len(), s.len());

    let mut t = vec![vec![0i32; m + 1]; n + 1];
    let mut u = vec![vec![NEG_INF; m + 1]; n + 1];
    let mut l = vec![vec![NEG_INF; m + 1]; n + 1];
    for (i, row) in t.iter_mut().enumerate() {
        row[0] = t2.init_t(i);
    }
    for j in 1..=m {
        t[0][j] = t2.init_col(j - 1);
    }

    let mut best = 0i32;
    for i in 1..=n {
        for j in 1..=m {
            u[i][j] = (u[i][j - 1] + t2.gap_up_ext).max(t[i][j - 1] + t2.gap_up);
            l[i][j] = (l[i - 1][j] + t2.gap_left_ext).max(t[i - 1][j] + t2.gap_left);
            let d = t[i - 1][j - 1] + cfg.matrix.score(s[i - 1], q[j - 1]);
            let mut v = d.max(u[i][j]).max(l[i][j]);
            if t2.local {
                v = v.max(0);
            }
            t[i][j] = v;
            best = best.max(v);
        }
    }
    match cfg.kind {
        AlignKind::Local => best.max(0),
        AlignKind::Global => t[n][m],
        AlignKind::SemiGlobal => (0..=n).map(|i| t[i][m]).max().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng};
    use aalign_core::config::GapModel;
    use aalign_core::paradigm::paradigm_dp;

    #[test]
    fn matches_paradigm_dp() {
        let mut rng = seeded_rng(17);
        let q = named_query(&mut rng, 60);
        let s = named_query(&mut rng, 45);
        for kind in [AlignKind::Local, AlignKind::Global] {
            for gap in [GapModel::affine(-10, -2), GapModel::linear(-4)] {
                let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
                assert_eq!(
                    naive_align(&cfg, &q, &s),
                    paradigm_dp(&cfg, &q, &s).score,
                    "{}",
                    cfg.label()
                );
            }
        }
    }
}
