//! # aalign-baselines — comparator implementations
//!
//! The paper's evaluation compares AAlign against an optimized
//! sequential baseline (Fig. 9), SWPS3 on CPU and SWAPHI on MIC
//! (Fig. 11). Neither tool is redistributable here, so this crate
//! reimplements their *algorithmic identity*:
//!
//! * [`naive`] — a textbook full-matrix scalar aligner (the
//!   unoptimized reference point);
//! * [`swps3_like`] — striped-iterate Smith-Waterman with **8-bit
//!   saturating buffers and lazy overflow fallback to 16-bit** (and
//!   32 as a last resort), SWPS3's distinguishing optimization and
//!   the cause of its Fig. 11a long-query behaviour;
//! * [`swaphi_like`] — intra-sequence 32-bit striped-iterate
//!   Smith-Waterman pinned to the 512-bit ("MIC") engine shape, the
//!   configuration the paper benchmarks SWAPHI in.

pub mod naive;
pub mod swaphi_like;
pub mod swps3_like;

pub use naive::naive_align;
pub use swaphi_like::SwaphiLike;
pub use swps3_like::Swps3Like;
