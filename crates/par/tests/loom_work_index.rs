//! Loom suite: the sharded work-index claim protocol.
//!
//! Exhaustively model-checks [`aalign_par::protocol::WorkIndex`] —
//! the paper's Sec. V-E dynamic work binding — under every
//! interleaving of two claimers: every slot is claimed exactly once
//! (no subject scored twice, none skipped), shard clamping included.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`.
#![cfg(loom)]

use aalign_par::protocol::WorkIndex;
use loom::sync::Arc;
use loom::thread;

/// Collect every slot a claimer saw, as a flat list of slot indices.
fn claim_all(idx: &WorkIndex, shard: usize, total: usize) -> Vec<usize> {
    let mut mine = Vec::new();
    while let Some((start, end)) = idx.claim(shard, total) {
        assert!(start < end && end <= total, "claim out of range");
        mine.extend(start..end);
    }
    mine
}

#[test]
fn every_slot_is_claimed_exactly_once() {
    loom::model(|| {
        const TOTAL: usize = 5;
        const SHARD: usize = 2;
        let idx = Arc::new(WorkIndex::new());
        let worker = {
            let idx = Arc::clone(&idx);
            thread::spawn(move || claim_all(&idx, SHARD, TOTAL))
        };
        let mut slots = claim_all(&idx, SHARD, TOTAL);
        slots.extend(worker.join().unwrap());
        slots.sort_unstable();
        assert_eq!(
            slots,
            (0..TOTAL).collect::<Vec<_>>(),
            "claims must partition the slot range under every schedule"
        );
    });
}

#[test]
fn zero_shard_still_partitions_under_contention() {
    loom::model(|| {
        const TOTAL: usize = 3;
        let idx = Arc::new(WorkIndex::new());
        let worker = {
            let idx = Arc::clone(&idx);
            thread::spawn(move || claim_all(&idx, 0, TOTAL))
        };
        let mut slots = claim_all(&idx, 0, TOTAL);
        slots.extend(worker.join().unwrap());
        slots.sort_unstable();
        assert_eq!(slots, (0..TOTAL).collect::<Vec<_>>());
    });
}

#[test]
fn exhausted_index_never_revives() {
    loom::model(|| {
        let idx = Arc::new(WorkIndex::new());
        let worker = {
            let idx = Arc::clone(&idx);
            thread::spawn(move || claim_all(&idx, 2, 2))
        };
        let mine = claim_all(&idx, 2, 2);
        let theirs = worker.join().unwrap();
        assert_eq!(mine.len() + theirs.len(), 2);
        assert_eq!(idx.claim(2, 2), None, "drained index must stay drained");
    });
}
