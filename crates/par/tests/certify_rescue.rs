//! Differential gate between the saturation-certificate prover
//! (`aalign_core::certify`) and the PR 5 rescue machinery: a granted
//! certificate claims the rescue ladder is dead weight, so searches
//! executed at a certified width must report `rescued == 0` — and a
//! denied certificate must not be vacuous, so its witness input must
//! actually saturate the denied width.

use rand::RngExt;

use aalign_bio::synth::{named_query, random_protein, seeded_rng, swissprot_like_db};
use aalign_bio::{matrices::BLOSUM62, SeqDatabase, Sequence, SubstMatrix};
use aalign_core::certify::{certify, kernel_headroom, lane_cap, CertificateStore};
use aalign_core::{AlignConfig, Aligner, GapModel, WidthPolicy};
use aalign_par::{search_database, SearchOptions};

fn random_dna<R: RngExt>(rng: &mut R, id: &str, len: usize) -> Sequence {
    let text: Vec<u8> = (0..len)
        .map(|_| b"ACGT"[rng.random_range(0..4usize)])
        .collect();
    Sequence::dna(id, &text).unwrap()
}

fn dna_db<R: RngExt>(rng: &mut R, count: usize, max_len: usize) -> SeqDatabase {
    let seqs = (0..count)
        .map(|i| {
            let len = rng.random_range(1..=max_len);
            random_dna(rng, &format!("s{i}"), len)
        })
        .collect();
    SeqDatabase::new(seqs)
}

/// Shipped config #1: short DNA reads, certified i8 — the headline
/// narrow path. Rescue stays on (the default) and must never fire.
#[test]
fn certified_i8_dna_search_never_rescues() {
    let cfg = AlignConfig::local(GapModel::affine(-5, -2), &SubstMatrix::dna(2, -3));
    let aligner = Aligner::new(cfg.clone()).with_certified_bounds(48, 1000);
    let plain = Aligner::new(cfg);
    let mut rng = seeded_rng(900);
    for round in 0..4 {
        let query = random_dna(&mut rng, &format!("q{round}"), 48);
        let db = dna_db(&mut rng, 24, 1000);
        let opts = || SearchOptions::new().threads(2);
        let report = search_database(&aligner, &query, &db, opts()).unwrap();
        assert_eq!(report.metrics.rescued, 0, "round {round}");
        assert!(report.metrics.rescue_widths.is_empty());
        assert_eq!(report.metrics.certified_width, 8, "round {round}");
        // Differential: the certified i8 sweep ranks identically to
        // the uncertified (i16-first) sweep.
        let want = search_database(&plain, &query, &db, opts()).unwrap();
        assert_eq!(report.hits, want.hits, "round {round}");
        assert_eq!(want.metrics.certified_width, 0, "no store installed");
    }
}

/// Shipped config #2: BLOSUM62 local search certified at i16 for
/// realistic protein lengths; i8 is denied there with a witness.
#[test]
fn certified_i16_protein_search_never_rescues() {
    let db = swissprot_like_db(901, 40);
    let max_len = db.stats().max_len;
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let mut rng = seeded_rng(902);
    let query = named_query(&mut rng, 200);
    let store = CertificateStore::compute(&cfg, query.len(), max_len);
    assert!(!store.grants(8, query.len(), max_len), "i8 must be denied");
    assert!(
        store.grants(16, query.len(), max_len),
        "i16 must be granted"
    );
    let aligner = Aligner::new(cfg).with_certificates(store);
    let report = search_database(&aligner, &query, &db, SearchOptions::new().threads(2)).unwrap();
    assert_eq!(report.metrics.rescued, 0);
    assert_eq!(report.metrics.certified_width, 16);
}

/// Soundness + non-vacuity over seeded random (matrix, gaps, bound)
/// tuples: every granted certificate is exercised by a search that
/// must not rescue; every witnessed denial is exercised by running
/// its witness pair at the denied width, which must saturate. The
/// seed set must produce at least one of each, or the test is not
/// testing anything.
#[test]
fn random_tuples_grant_implies_no_rescue_and_denials_are_witnessed() {
    let mut granted_checked = 0u32;
    let mut witnesses_checked = 0u32;
    for seed in 0..8u64 {
        let mut rng = seeded_rng(1000 + seed);
        let matrix = SubstMatrix::dna(rng.random_range(1..=8i32), -rng.random_range(1..=6i32));
        let gap = GapModel::affine(-rng.random_range(0..=10i32), -rng.random_range(1..=4i32));
        let cfg = AlignConfig::local(gap, &matrix);
        let max_query = rng.random_range(16..=96);
        let max_subject = rng.random_range(64..=512);
        let store = CertificateStore::compute(&cfg, max_query, max_subject);

        for cert in store.certificates() {
            if cert.lane_bits == 32 {
                continue;
            }
            if cert.granted {
                // Random search inside the certified bounds.
                let aligner = Aligner::new(cfg.clone())
                    .with_certificates(store.clone())
                    .with_width(match cert.lane_bits {
                        8 => WidthPolicy::Fixed8,
                        _ => WidthPolicy::Fixed16,
                    });
                let query = random_dna(&mut rng, "q", max_query);
                let db = dna_db(&mut rng, 8, max_subject);
                let report =
                    search_database(&aligner, &query, &db, SearchOptions::new().threads(1))
                        .unwrap();
                assert_eq!(
                    report.metrics.rescued, 0,
                    "seed {seed}: granted i{} rescued {:?}",
                    cert.lane_bits, cert
                );
                granted_checked += 1;
            } else if let Some(w) = cert.denial.as_ref().and_then(|d| d.witness) {
                // The witness must really saturate the denied width.
                let q = Sequence::dna("wq", &vec![w.query_letter; w.len]).unwrap();
                let s = Sequence::dna("ws", &vec![w.subject_letter; w.len]).unwrap();
                let fixed = Aligner::new(cfg.clone()).with_width(match cert.lane_bits {
                    8 => WidthPolicy::Fixed8,
                    _ => WidthPolicy::Fixed16,
                });
                let out = fixed.align(&q, &s).unwrap();
                assert!(
                    out.saturated,
                    "seed {seed}: witness for denied i{} did not saturate \
                     (score {}, predicted ≥ {})",
                    cert.lane_bits, out.score, w.min_score
                );
                witnesses_checked += 1;
            }
        }
    }
    assert!(granted_checked > 0, "seed set produced no granted certs");
    assert!(
        witnesses_checked > 0,
        "seed set produced no witnessed denials"
    );
}

/// The denial's reported "tightest length bound that would fix it"
/// really is tight: a search at that uniform bound does not rescue,
/// and the prover denies one residue past it.
#[test]
fn reported_max_safe_len_is_usable() {
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let denied = certify(&cfg, 400, 400, 8);
    assert!(!denied.granted);
    let safe = denied.denial.as_ref().unwrap().max_safe_len.unwrap();
    assert!(certify(&cfg, safe, safe, 8).granted);
    assert!(!certify(&cfg, safe + 1, safe + 1, 8).granted);

    // Searches inside the safe bound at Fixed8 do not rescue. The
    // bound is tiny for BLOSUM62 at i8, so build short proteins
    // rather than filtering a realistic database.
    let mut rng = seeded_rng(903);
    let query = random_protein(&mut rng, "q", safe);
    let db = SeqDatabase::new(
        (0..12)
            .map(|i| {
                let len = rng.random_range(1..=safe);
                random_protein(&mut rng, format!("p{i}"), len)
            })
            .collect(),
    );
    let aligner = Aligner::new(cfg.clone())
        .with_certified_bounds(safe, safe)
        .with_width(WidthPolicy::Fixed8);
    let report = search_database(&aligner, &query, &db, SearchOptions::new().threads(1)).unwrap();
    assert_eq!(report.metrics.rescued, 0);
    assert_eq!(report.metrics.certified_width, 8);

    // And the witness score lower bound is honest arithmetic: it must
    // sit at or above the i8 detection threshold (cap − headroom).
    let w = denied.denial.unwrap().witness.unwrap();
    assert!(
        w.min_score >= lane_cap(8) - kernel_headroom(&cfg),
        "witness score bound below the detection threshold"
    );
}
