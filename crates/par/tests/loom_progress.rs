//! Loom suite: progress-counter monotonicity.
//!
//! Exhaustively model-checks [`aalign_par::protocol::ProgressCounters`]:
//! each worker's successive published totals are strictly increasing
//! under every interleaving, no shard's contribution is ever lost,
//! and the post-join snapshot is exact.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`.
#![cfg(loom)]

use aalign_par::protocol::ProgressCounters;
use loom::sync::Arc;
use loom::thread;

/// Publish `shards` shards of `(1 subject, 10 residues)` each and
/// return the sequence of observed subject totals.
fn publish_shards(ctr: &ProgressCounters, shards: usize) -> Vec<usize> {
    (0..shards).map(|_| ctr.publish(1, 10).0).collect()
}

#[test]
fn per_worker_totals_are_strictly_increasing() {
    loom::model(|| {
        const SHARDS: usize = 2;
        let ctr = Arc::new(ProgressCounters::new());
        let worker = {
            let ctr = Arc::clone(&ctr);
            thread::spawn(move || publish_shards(&ctr, SHARDS))
        };
        let mine = publish_shards(&ctr, SHARDS);
        let theirs = worker.join().unwrap();

        for seen in [&mine, &theirs] {
            for pair in seen.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "a worker's observed totals must be strictly increasing: {seen:?}"
                );
            }
        }
        // Post-join the totals are exact: every shard counted once.
        assert_eq!(ctr.snapshot(), (2 * SHARDS, 2 * SHARDS * 10));
    });
}

#[test]
fn observed_totals_are_exactly_the_prefix_sums() {
    loom::model(|| {
        let ctr = Arc::new(ProgressCounters::new());
        let worker = {
            let ctr = Arc::clone(&ctr);
            thread::spawn(move || publish_shards(&ctr, 2))
        };
        let mut totals = publish_shards(&ctr, 2);
        totals.extend(worker.join().unwrap());
        totals.sort_unstable();
        // Four shards of one subject each: whatever the interleaving,
        // the returned totals are exactly {1, 2, 3, 4} — fetch_add
        // never hands two shards the same total.
        assert_eq!(totals, vec![1, 2, 3, 4]);
    });
}
