//! Wire-format contract tests: lossless round-trips plus pinned
//! schema bytes.
//!
//! The pinned strings below ARE the v1 wire schema shared by the CLI
//! (`--metrics-format json`, partial-result reporting) and the
//! `aalign-serve` front ends. If an assertion here fails, the format
//! changed: either restore the old shape or bump
//! `aalign_obs::wire::SCHEMA_VERSION` and update every consumer.

use std::time::Duration;

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_core::{AlignConfig, AlignError, Aligner, GapModel};
use aalign_obs::wire::JsonValue;
use aalign_par::wire::{
    error_to_wire, hit_to_wire, metrics_from_wire, metrics_to_wire, report_from_wire,
    report_to_wire,
};
use aalign_par::{search_database, SearchOptions};

#[test]
fn real_search_report_round_trips_losslessly() {
    let mut rng = seeded_rng(41);
    let query = named_query(&mut rng, 60);
    let db = swissprot_like_db(42, 30);
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    let report = search_database(
        &aligner,
        &query,
        &db,
        SearchOptions::new().threads(2).top_n(10),
    )
    .unwrap();

    let rendered = report_to_wire(&report).render();
    let back = report_from_wire(&JsonValue::parse(&rendered).unwrap()).unwrap();

    assert_eq!(back.hits, report.hits);
    assert_eq!(back.threads_used, report.threads_used);
    assert_eq!(back.subjects, report.subjects);
    assert_eq!(back.total_residues, report.total_residues);
    assert_eq!(back.partial, report.partial);
    assert_eq!(back.errors, report.errors);
    // Metrics: every counter and histogram bit-exact; durations are
    // lossless at microsecond resolution, which is what the wire
    // carries.
    let (m, b) = (&report.metrics, &back.metrics);
    assert_eq!(b.cells, m.cells);
    assert_eq!(b.gcups, m.gcups, "f64 must survive render/parse exactly");
    assert_eq!(b.kernel_stats, m.kernel_stats);
    assert_eq!(b.coalesced, m.coalesced);
    assert_eq!(b.latency, m.latency, "histogram buckets bit-exact");
    assert_eq!(b.worker_load, m.worker_load);
    assert_eq!(b.rescue_widths, m.rescue_widths);
    assert_eq!(b.certified_width, m.certified_width);
    assert_eq!(b.queue_wait, m.queue_wait);
    assert_eq!(b.batch_wait, m.batch_wait);
    assert_eq!(b.request_e2e, m.request_e2e);
    assert_eq!(b.per_worker.len(), m.per_worker.len());
    for (bw, mw) in b.per_worker.iter().zip(&m.per_worker) {
        assert_eq!(bw.worker_id, mw.worker_id);
        assert_eq!(bw.subjects, mw.subjects);
        assert_eq!(bw.residues, mw.residues);
        assert_eq!(bw.scratch_bytes, mw.scratch_bytes);
        assert_eq!(bw.queries_on_worker, mw.queries_on_worker);
        assert_eq!(bw.busy.as_micros(), mw.busy.as_micros());
    }
    assert_eq!(b.prepare.as_micros(), m.prepare.as_micros());
    assert_eq!(b.total.as_micros(), m.total.as_micros());
}

#[test]
fn metrics_to_json_is_exactly_the_wire_document() {
    let mut rng = seeded_rng(43);
    let query = named_query(&mut rng, 40);
    let db = swissprot_like_db(44, 10);
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    let report = search_database(&aligner, &query, &db, SearchOptions::new().threads(1)).unwrap();
    assert_eq!(
        report.metrics.to_json(),
        metrics_to_wire(&report.metrics).render(),
        "CLI --metrics-format json and the serve wire format must be one path"
    );
    // And it decodes back.
    let parsed = JsonValue::parse(&report.metrics.to_json()).unwrap();
    metrics_from_wire(&parsed).unwrap();
}

/// The exact v1 key skeleton of a metrics document. Pinning the full
/// rendered bytes of a deterministic metrics value freezes key
/// names, key order, and scalar encodings all at once.
#[test]
fn metrics_schema_v1_is_pinned() {
    let m = aalign_par::SearchMetrics::default();
    let expected = concat!(
        "{\"schema_version\":1,",
        "\"prepare_us\":0,\"sweep_us\":0,\"merge_us\":0,\"total_us\":0,",
        "\"cells\":0,\"gcups\":0,",
        "\"kernel\":{\"lazy_iters\":0,\"lazy_sweeps\":0,\"iterate_columns\":0,",
        "\"scan_columns\":0,\"switches_to_scan\":0,\"probes_stayed\":0},",
        "\"width_retries\":0,\"rescued\":0,",
        "\"rescue_width_bits\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"certified_width\":0,",
        "\"coalesced\":0,\"workers_respawned\":0,",
        "\"shards\":{\"ok\":0,\"failed\":0,\"retried\":0,\"timed_out\":0},",
        "\"peak_hits_buffered\":0,",
        "\"queue_wait_ns\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"batch_wait_ns\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"request_e2e_ns\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"latency_ns\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"worker_load_residues\":{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,",
        "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]},",
        "\"workers\":[]}",
    );
    assert_eq!(metrics_to_wire(&m).render(), expected);
}

#[test]
fn pre_stage_histogram_documents_still_decode() {
    // The stage-wait histograms (queue_wait_ns / batch_wait_ns /
    // request_e2e_ns) were added within schema v1: a document written
    // before they existed must still decode, with the new fields
    // coming back empty.
    let mut doc = metrics_to_wire(&aalign_par::SearchMetrics::default()).render();
    for key in ["queue_wait_ns", "batch_wait_ns", "request_e2e_ns"] {
        let needle = format!(
            "\"{key}\":{{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,\
             \"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"buckets\":[]}},"
        );
        assert!(doc.contains(&needle), "{key} not found in {doc}");
        doc = doc.replace(&needle, "");
    }
    let back = metrics_from_wire(&JsonValue::parse(&doc).unwrap()).unwrap();
    assert!(back.queue_wait.is_empty());
    assert!(back.batch_wait.is_empty());
    assert!(back.request_e2e.is_empty());
}

#[test]
fn pre_certified_width_documents_still_decode() {
    // `certified_width` was added within schema v1; absent decodes
    // as 0 (no certificate), same additive-field convention as the
    // stage-wait histograms.
    let mut doc = metrics_to_wire(&aalign_par::SearchMetrics::default()).render();
    doc = doc.replace("\"certified_width\":0,", "");
    let back = metrics_from_wire(&JsonValue::parse(&doc).unwrap()).unwrap();
    assert_eq!(back.certified_width, 0);
}

#[test]
fn pre_shard_outcome_documents_still_decode() {
    // The `shards` outcome object was added within schema v1 when the
    // shard supervisor landed; a pre-supervisor document (no `shards`
    // key) decodes with the all-zero default.
    let mut doc = metrics_to_wire(&aalign_par::SearchMetrics::default()).render();
    doc = doc.replace(
        "\"shards\":{\"ok\":0,\"failed\":0,\"retried\":0,\"timed_out\":0},",
        "",
    );
    assert!(!doc.contains("\"shards\""), "{doc}");
    let back = metrics_from_wire(&JsonValue::parse(&doc).unwrap()).unwrap();
    assert!(back.shards.is_unsharded());
}

#[test]
fn shard_outcome_and_shard_lost_round_trip() {
    let mut m = aalign_par::SearchMetrics::default();
    m.shards.ok = 3;
    m.shards.failed = 1;
    m.shards.retried = 2;
    m.shards.timed_out = 1;
    let back =
        metrics_from_wire(&JsonValue::parse(&metrics_to_wire(&m).render()).unwrap()).unwrap();
    assert_eq!(back.shards, m.shards);

    let e = AlignError::ShardLost {
        shard: 2,
        start: 500,
        end: 750,
    };
    assert_eq!(
        error_to_wire(&e).render(),
        "{\"code\":\"shard_lost\",\
         \"message\":\"shard 2 lost; database range [500, 750) is uncovered\",\
         \"shard\":2,\"start\":500,\"end\":750}"
    );
}

#[test]
fn report_schema_v1_is_pinned() {
    let report = aalign_par::SearchReport {
        hits: vec![aalign_par::Hit {
            db_index: 3,
            len: 120,
            score: -7,
        }],
        threads_used: 2,
        subjects: 5,
        total_residues: 600,
        metrics: aalign_par::SearchMetrics::default(),
        trace_events: Vec::new(),
        partial: true,
        errors: vec![AlignError::DeadlineExceeded],
    };
    let rendered = report_to_wire(&report).render();
    let prefix = concat!(
        "{\"schema_version\":1,\"partial\":true,\"threads_used\":2,",
        "\"subjects\":5,\"total_residues\":600,",
        "\"hits\":[{\"db_index\":3,\"len\":120,\"score\":-7}],",
        "\"errors\":[{\"code\":\"deadline_exceeded\",",
    );
    assert!(
        rendered.starts_with(prefix),
        "report schema drifted:\n{rendered}"
    );
    assert!(rendered.contains("\"metrics\":{\"schema_version\":1,"));
}

#[test]
fn error_objects_are_pinned() {
    assert_eq!(
        error_to_wire(&AlignError::WorkerLost {
            worker_id: 4,
            payload: "kill".into(),
        })
        .render(),
        "{\"code\":\"worker_lost\",\"message\":\"search worker 4 died mid-query: kill\",\
         \"worker_id\":4,\"payload\":\"kill\"}"
    );
    let cancelled = error_to_wire(&AlignError::Cancelled).render();
    assert!(cancelled.starts_with("{\"code\":\"cancelled\",\"message\":"));
}

#[test]
fn hit_wire_shape_is_pinned() {
    let h = aalign_par::Hit {
        db_index: 9,
        len: 33,
        score: 101,
    };
    assert_eq!(
        hit_to_wire(&h).render(),
        "{\"db_index\":9,\"len\":33,\"score\":101}"
    );
}

#[test]
fn future_schema_versions_are_rejected() {
    let mut doc = metrics_to_wire(&aalign_par::SearchMetrics::default()).render();
    doc = doc.replace("\"schema_version\":1", "\"schema_version\":2");
    let err = metrics_from_wire(&JsonValue::parse(&doc).unwrap()).unwrap_err();
    assert!(err.to_string().contains("schema_version"), "{err}");
}

#[test]
fn partial_deadline_report_renders_like_server_partial() {
    // The CLI's --timeout path and a server-side deadline produce the
    // same typed wire object: partial=true plus a deadline_exceeded
    // error entry.
    let mut rng = seeded_rng(45);
    let query = named_query(&mut rng, 50);
    let db = swissprot_like_db(46, 40);
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    let report = search_database(
        &aligner,
        &query,
        &db,
        SearchOptions::new().threads(1).deadline(Duration::ZERO),
    )
    .unwrap();
    assert!(report.partial);
    let wire = report_to_wire(&report);
    assert_eq!(wire.get("partial").and_then(JsonValue::as_bool), Some(true));
    let errors = wire.get("errors").unwrap().as_array().unwrap();
    assert!(errors
        .iter()
        .any(|e| e.get("code").and_then(|c| c.as_str()) == Some("deadline_exceeded")));
}
