//! Engine-level trace integrity.
//!
//! The kernel-level guarantees (see `aalign-core`'s `trace_events`
//! tests) must survive the trip through the multithreaded engine:
//!
//! 1. **Equivalence** — a traced sweep returns exactly the hits and
//!    kernel stats of an untraced one.
//! 2. **Framing** — the event stream is one well-formed query
//!    envelope: `QueryBegin` first, `QueryEnd` last, the three engine
//!    stages spanned in order.
//! 3. **Reconciliation** — despite per-worker buffering and dynamic
//!    binding, every subject's events arrive contiguously and the
//!    reconstructed timelines exactly explain the reported
//!    `RunStats`.

#![cfg(feature = "trace")]

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::{AlignConfig, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_obs::{TraceEvent, TraceReport};
use aalign_par::{search_pipeline, PipelineOptions, SearchEngine, SearchOptions};

fn cfg() -> AlignConfig {
    AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62)
}

fn aligner() -> Aligner {
    Aligner::new(cfg()).with_strategy(Strategy::Hybrid)
}

#[test]
fn traced_sweep_is_result_identical_to_untraced() {
    let mut rng = seeded_rng(3100);
    let q = named_query(&mut rng, 90);
    let db = swissprot_like_db(3101, 60);
    let a = aligner();
    let engine = SearchEngine::new(4);
    let plain = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
    let traced = engine
        .search(&a, &q, &db, &SearchOptions::new().trace(true))
        .unwrap();
    assert_eq!(traced.hits, plain.hits);
    assert_eq!(traced.metrics.kernel_stats, plain.metrics.kernel_stats);
    assert_eq!(traced.metrics.width_retries, plain.metrics.width_retries);
    assert!(
        plain.trace_events.is_empty(),
        "untraced sweeps collect nothing"
    );
    assert!(!traced.trace_events.is_empty());
}

#[test]
fn trace_stream_is_a_wellformed_query_envelope() {
    let mut rng = seeded_rng(3200);
    let q = named_query(&mut rng, 70);
    let db = swissprot_like_db(3201, 25);
    let engine = SearchEngine::new(3);
    let report = engine
        .search(&aligner(), &q, &db, &SearchOptions::new().trace(true))
        .unwrap();
    let events = &report.trace_events;
    assert!(
        matches!(&events[0], TraceEvent::QueryBegin { query, subjects }
            if query == q.id() && *subjects == db.len() as u64),
        "{:?}",
        events[0]
    );
    assert!(
        matches!(events.last().unwrap(), TraceEvent::QueryEnd { hits, .. }
            if *hits == report.hits.len() as u64),
        "{:?}",
        events.last()
    );
    // Stage spans appear in begin/end pairs, in stage order.
    let spans: Vec<(&str, bool)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::SpanBegin { span, .. } => Some((span.as_str(), true)),
            TraceEvent::SpanEnd { span, .. } => Some((span.as_str(), false)),
            _ => None,
        })
        .collect();
    assert_eq!(
        spans,
        [
            ("prepare", true),
            ("prepare", false),
            ("sweep", true),
            ("sweep", false),
            ("merge", true),
            ("merge", false),
        ]
    );
    // Worker batches land strictly inside the sweep span.
    let sweep_begin = events
        .iter()
        .position(|ev| matches!(ev, TraceEvent::SpanBegin { span, .. } if span == "sweep"))
        .unwrap();
    let sweep_end = events
        .iter()
        .position(|ev| matches!(ev, TraceEvent::SpanEnd { span, .. } if span == "sweep"))
        .unwrap();
    for (i, ev) in events.iter().enumerate() {
        if matches!(
            ev,
            TraceEvent::AlignBegin { .. } | TraceEvent::Hybrid(_) | TraceEvent::AlignEnd { .. }
        ) {
            assert!(
                sweep_begin < i && i < sweep_end,
                "event {i} outside sweep span"
            );
        }
    }
}

#[test]
fn timelines_reconcile_across_workers_and_shards() {
    let mut rng = seeded_rng(3300);
    let q = named_query(&mut rng, 110);
    let db = swissprot_like_db(3301, 80);
    let engine = SearchEngine::new(4);
    for shard in [1usize, 7] {
        let report = engine
            .search(
                &aligner(),
                &q,
                &db,
                &SearchOptions::new().trace(true).shard(shard),
            )
            .unwrap();
        let tr = TraceReport::from_events(&report.trace_events).unwrap();
        assert_eq!(tr.timelines.len(), db.len(), "shard={shard}");
        assert!(tr.reconciled(), "unreconciled: {:?}", tr.unreconciled());
        // The per-subject column totals partition the database.
        let cols: u64 = tr
            .timelines
            .iter()
            .map(|t| t.iterate_columns + t.scan_columns)
            .sum();
        assert_eq!(cols, report.total_residues as u64);
        // And agree with the aggregated kernel counters.
        let iterate: u64 = tr.timelines.iter().map(|t| t.iterate_columns).sum();
        assert_eq!(
            iterate, report.metrics.kernel_stats.iterate_columns as u64,
            "shard={shard}"
        );
        let sweeps: u64 = tr.timelines.iter().map(|t| t.lazy_sweeps).sum();
        assert_eq!(sweeps, report.metrics.kernel_stats.lazy_sweeps);
    }
}

#[test]
fn inter_sweep_traces_framing_only() {
    let mut rng = seeded_rng(3400);
    let q = named_query(&mut rng, 50);
    let db = swissprot_like_db(3401, 30);
    let engine = SearchEngine::new(2);
    let report = engine
        .search_inter(&cfg(), &q, &db, &SearchOptions::new().trace(true))
        .unwrap();
    assert!(!report.trace_events.is_empty());
    assert!(
        report
            .trace_events
            .iter()
            .all(|ev| !matches!(ev, TraceEvent::AlignBegin { .. } | TraceEvent::Hybrid(_))),
        "the inter kernel has no per-subject trace"
    );
    let tr = TraceReport::from_events(&report.trace_events).unwrap();
    assert!(tr.timelines.is_empty());
    assert!(
        tr.reconciled(),
        "an empty timeline set is trivially reconciled"
    );
}

#[test]
fn empty_database_still_frames_the_query() {
    let mut rng = seeded_rng(3500);
    let q = named_query(&mut rng, 40);
    let engine = SearchEngine::new(2);
    let report = engine
        .search(
            &aligner(),
            &q,
            &SeqDatabase::default(),
            &SearchOptions::new().trace(true),
        )
        .unwrap();
    assert_eq!(report.metrics.gcups, 0.0, "guarded: no cells, no GCUPS");
    let tr = TraceReport::from_events(&report.trace_events).unwrap();
    assert!(tr.timelines.is_empty());
    assert_eq!(tr.hits, 0);
}

#[test]
fn pipeline_forwards_the_sweep_trace() {
    let mut rng = seeded_rng(3600);
    let q = named_query(&mut rng, 80);
    let db = swissprot_like_db(3601, 20);
    let report = search_pipeline(
        &cfg(),
        &q,
        &db,
        PipelineOptions::new().max_evalue(1e9).trace(true),
    )
    .unwrap();
    assert!(!report.trace_events.is_empty());
    let tr = TraceReport::from_events(&report.trace_events).unwrap();
    assert_eq!(tr.timelines.len(), db.len());
    assert!(tr.reconciled());
    // Untraced pipelines stay silent.
    let silent = search_pipeline(&cfg(), &q, &db, PipelineOptions::new()).unwrap();
    assert!(silent.trace_events.is_empty());
}

#[test]
fn traced_round_trips_through_jsonl() {
    let mut rng = seeded_rng(3700);
    let q = named_query(&mut rng, 60);
    let db = swissprot_like_db(3701, 15);
    let engine = SearchEngine::new(2);
    let report = engine
        .search(&aligner(), &q, &db, &SearchOptions::new().trace(true))
        .unwrap();
    let mut buf = Vec::new();
    let mut w = aalign_obs::TraceWriter::new(&mut buf);
    w.write_all(&report.trace_events).unwrap();
    let _ = w.finish().unwrap();
    let parsed = aalign_obs::read_events(std::io::BufReader::new(buf.as_slice()))
        .map_err(|(line, e)| format!("line {line}: {e}"))
        .unwrap();
    assert_eq!(parsed, report.trace_events, "JSONL round trip is lossless");
}

/// A duplicate-heavy database with a mix of subject lengths makes the
/// traced and untraced top-k paths tie-break; both must agree.
#[test]
fn traced_topk_matches_untraced_topk() {
    let mut rng = seeded_rng(3800);
    let q = named_query(&mut rng, 64);
    let base = swissprot_like_db(3801, 10).sequences().to_vec();
    let mut seqs = base.clone();
    for (i, s) in base.iter().enumerate() {
        seqs.push(Sequence::from_indices(
            format!("dup_{i}"),
            s.alphabet(),
            s.indices().to_vec(),
        ));
    }
    let db = SeqDatabase::new(seqs);
    let engine = SearchEngine::new(3);
    let a = aligner();
    for top_n in [1usize, 6, 20] {
        let plain = engine
            .search(&a, &q, &db, &SearchOptions::new().top_n(top_n))
            .unwrap();
        let traced = engine
            .search(&a, &q, &db, &SearchOptions::new().top_n(top_n).trace(true))
            .unwrap();
        assert_eq!(plain.hits, traced.hits, "top_n={top_n}");
    }
}

/// When a lane-saturated subject is rescued at a wider width, the
/// traced sweep must (a) stay bit-identical to the untraced one, (b)
/// emit a `Rescue` marker inside the subject's envelope with the
/// discarded narrow run's columns dropped, and (c) still reconcile —
/// the timelines explain exactly the kept attempt's `RunStats`.
#[test]
fn rescued_sweep_traces_identically_and_reconciles() {
    // An all-W self-alignment saturates 8-bit lanes (W·W = 11 in
    // BLOSUM62), forcing an 8→16 rescue for that one subject.
    let w = Sequence::protein("w100", &[b'W'; 100]).unwrap();
    let mut seqs = swissprot_like_db(3901, 12).sequences().to_vec();
    seqs.push(w.clone());
    let db = SeqDatabase::new(seqs);
    let narrow = aligner().with_width(WidthPolicy::Fixed8);
    let engine = SearchEngine::new(2);
    let plain = engine
        .search(&narrow, &w, &db, &SearchOptions::new())
        .unwrap();
    let traced = engine
        .search(&narrow, &w, &db, &SearchOptions::new().trace(true))
        .unwrap();
    assert!(plain.metrics.rescued >= 1 && traced.metrics.rescued >= 1);
    assert_eq!(traced.hits, plain.hits, "rescue must not break equivalence");
    assert_eq!(traced.metrics.kernel_stats, plain.metrics.kernel_stats);
    assert_eq!(traced.metrics.rescued, plain.metrics.rescued);
    let w_subject = (db.len() - 1) as u64;
    let rescue = traced
        .trace_events
        .iter()
        .find_map(|ev| match ev {
            TraceEvent::Rescue {
                subject,
                from_bits,
                to_bits,
            } if *subject == w_subject => Some((*from_bits, *to_bits)),
            _ => None,
        })
        .expect("the saturating subject must carry a Rescue marker");
    assert_eq!(rescue, (8, 16), "one step up the ladder suffices");
    // The discarded narrow attempt's per-column events must not leak:
    // the stream still reconciles against the kept run's stats.
    let tr = TraceReport::from_events(&traced.trace_events).unwrap();
    assert!(tr.reconciled(), "{tr:?}");
    // And the rescue survives the JSONL round trip like any event.
    let mut buf = Vec::new();
    let mut w = aalign_obs::TraceWriter::new(&mut buf);
    w.write_all(&traced.trace_events).unwrap();
    let _ = w.finish().unwrap();
    let back = aalign_obs::read_events(std::io::BufReader::new(buf.as_slice()))
        .map_err(|(line, e)| format!("line {line}: {e}"))
        .unwrap();
    assert_eq!(back, traced.trace_events);
}
