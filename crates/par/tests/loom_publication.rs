//! Loom suite: trace-batch publication contiguity.
//!
//! Exhaustively model-checks [`aalign_par::protocol::SharedBatch`] —
//! the rendezvous the engine's traced sweeps publish through: because
//! a worker moves its whole buffered batch in under a single lock
//! acquisition, one worker's batch is never interleaved with
//! another's in the published stream, under any schedule.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`.
#![cfg(loom)]

use aalign_par::protocol::SharedBatch;
use loom::thread;

/// Tag item `i` of worker `w` as `w * 100 + i`.
fn tagged(worker: usize, len: usize) -> Vec<usize> {
    (0..len).map(|i| worker * 100 + i).collect()
}

#[test]
fn batches_are_never_interleaved() {
    loom::model(|| {
        const BATCH: usize = 2;
        let stream = SharedBatch::new();
        let worker = {
            let stream = stream.clone();
            thread::spawn(move || {
                let mut batch = tagged(1, BATCH);
                stream.publish(&mut batch);
                assert!(batch.is_empty(), "publish must surrender the batch");
            })
        };
        let mut batch = tagged(2, BATCH);
        stream.publish(&mut batch);
        worker.join().unwrap();

        let events = stream.drain();
        assert_eq!(events.len(), 2 * BATCH, "no event may be lost");
        // Whole batches only: the stream is some ordering of the two
        // batches, each internally contiguous and in order.
        for chunk in events.chunks(BATCH) {
            let w = chunk[0] / 100;
            assert_eq!(
                chunk,
                tagged(w, BATCH),
                "a worker's batch must stay contiguous: {events:?}"
            );
        }
    });
}

#[test]
fn drain_while_a_writer_races_sees_whole_batches() {
    loom::model(|| {
        const BATCH: usize = 3;
        let stream = SharedBatch::new();
        let worker = {
            let stream = stream.clone();
            thread::spawn(move || stream.publish(&mut tagged(1, BATCH)))
        };
        // Racing drain: sees nothing or the whole batch, never a cut.
        let early = stream.drain();
        assert!(
            early.is_empty() || early == tagged(1, BATCH),
            "a racing drain must never observe a torn batch: {early:?}"
        );
        worker.join().unwrap();
        let late = stream.drain();
        assert_eq!(early.len() + late.len(), BATCH, "exactly one copy total");
    });
}
