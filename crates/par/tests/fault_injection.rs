//! The deterministic fault-injection harness: drives every recovery
//! path of the engine's fault model (DESIGN.md §11) from ordinary
//! `cargo test` runs.
//!
//! Deadline and rescue tests run under any feature set; the scripted
//! faults (panics, kills, forced saturation, stalls) need
//! `--features fault-inject`.

use std::time::Duration;

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::{AlignConfig, AlignError, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_par::{SearchEngine, SearchOptions};

fn cfg() -> AlignConfig {
    AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62)
}

fn aligner() -> Aligner {
    Aligner::new(cfg()).with_strategy(Strategy::Hybrid)
}

/// Reference ranking: score every subject directly.
fn reference_scores(a: &Aligner, q: &Sequence, db: &SeqDatabase) -> Vec<i32> {
    (0..db.len())
        .map(|i| a.align(q, db.get(i)).unwrap().score)
        .collect()
}

#[test]
fn zero_deadline_returns_partial_with_no_incorrect_hits() {
    let mut rng = seeded_rng(7000);
    let q = named_query(&mut rng, 80);
    let db = swissprot_like_db(7001, 60);
    let a = aligner();
    let engine = SearchEngine::new(2);
    let report = engine
        .search(&a, &q, &db, &SearchOptions::new().deadline(Duration::ZERO))
        .unwrap();
    assert!(report.partial, "an expired deadline must mark the report");
    assert!(
        report
            .errors
            .iter()
            .any(|e| matches!(e, AlignError::DeadlineExceeded)),
        "{:?}",
        report.errors
    );
    assert!(report.subjects < db.len(), "the sweep must have stopped");
    // Whatever did complete is correct — a deadline never fabricates
    // or corrupts a score.
    let want = reference_scores(&a, &q, &db);
    for hit in &report.hits {
        assert_eq!(hit.score, want[hit.db_index], "subject {}", hit.db_index);
    }
}

#[test]
fn no_deadline_leaves_results_unchanged() {
    let mut rng = seeded_rng(7100);
    let q = named_query(&mut rng, 70);
    let db = swissprot_like_db(7101, 40);
    let a = aligner();
    let engine = SearchEngine::new(3);
    let plain = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
    let generous = engine
        .search(
            &a,
            &q,
            &db,
            &SearchOptions::new().deadline(Duration::from_secs(3600)),
        )
        .unwrap();
    assert!(!plain.partial && plain.errors.is_empty());
    assert!(!generous.partial && generous.errors.is_empty());
    assert_eq!(plain.hits, generous.hits, "an unmet deadline is free");
    assert_eq!(plain.subjects, db.len());
}

#[test]
fn saturating_fixed8_pair_is_rescued_bit_exactly() {
    // W·W scores 11 in BLOSUM62, so an all-W self-alignment blows
    // through the 8-bit lane ceiling (127) within a dozen residues.
    let w = Sequence::protein("w100", &[b'W'; 100]).unwrap();
    let mut seqs = swissprot_like_db(7201, 10).sequences().to_vec();
    seqs.push(w.clone());
    let db = SeqDatabase::new(seqs);
    let narrow = aligner().with_width(WidthPolicy::Fixed8);
    let engine = SearchEngine::new(2);
    let report = engine
        .search(&narrow, &w, &db, &SearchOptions::new())
        .unwrap();
    assert!(!report.partial, "a rescue is recovery, not failure");
    assert!(report.metrics.rescued >= 1, "the W subject must be rescued");
    assert!(report.metrics.rescue_widths.count() >= 1);
    // The rescued score is the exact wide-width score.
    let exact = aligner()
        .with_width(WidthPolicy::Fixed32)
        .align(&w, &w)
        .unwrap()
        .score;
    assert_eq!(exact, 100 * 11);
    let w_index = db.len() - 1;
    let hit = report.hits.iter().find(|h| h.db_index == w_index).unwrap();
    assert_eq!(hit.score, exact, "rescue must recover the exact score");
    // Rescue off: the saturated narrow score stays clamped below the
    // true value — proof the rescue path did the recovering.
    let unrescued = engine
        .search(&narrow, &w, &db, &SearchOptions::new().rescue(false))
        .unwrap();
    let clamped = unrescued
        .hits
        .iter()
        .find(|h| h.db_index == w_index)
        .unwrap();
    assert!(clamped.score < exact, "{} vs {exact}", clamped.score);
    assert_eq!(unrescued.metrics.rescued, 0);
}

#[cfg(feature = "fault-inject")]
mod scripted {
    use super::*;
    use aalign_par::FaultPlan;
    use std::sync::Arc;

    /// Silence the default panic hook's backtrace spam for tests that
    /// inject panics on worker threads.
    fn quiet_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let msg = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("");
                if !msg.starts_with("fault-inject:") {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn injected_panic_is_isolated_and_every_other_result_stays_valid() {
        quiet_panics();
        let mut rng = seeded_rng(7300);
        let q = named_query(&mut rng, 70);
        let db = swissprot_like_db(7301, 40);
        let a = aligner();
        let engine = SearchEngine::new(2);
        let plan = Arc::new(FaultPlan::new().panic_on_slot(3));
        let report = engine
            .search(&a, &q, &db, &SearchOptions::new().fault_plan(plan))
            .unwrap();
        assert!(report.partial);
        assert_eq!(report.subjects, db.len() - 1, "exactly one subject lost");
        let lost = report
            .errors
            .iter()
            .find_map(|e| match e {
                AlignError::WorkerPanicked { db_index, payload } => {
                    assert!(payload.contains("fault-inject"), "{payload}");
                    Some(*db_index)
                }
                _ => None,
            })
            .expect("a WorkerPanicked error must surface");
        // Every subject except the panicked one is present and exact.
        let want = reference_scores(&a, &q, &db);
        assert_eq!(report.hits.len(), db.len() - 1);
        for hit in &report.hits {
            assert_ne!(hit.db_index, lost);
            assert_eq!(hit.score, want[hit.db_index]);
        }
    }

    #[test]
    fn killed_worker_loses_only_its_sweep_and_the_pool_self_heals() {
        quiet_panics();
        let mut rng = seeded_rng(7400);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(7401, 50);
        let a = aligner();
        let engine = SearchEngine::new(2);
        let plan = Arc::new(FaultPlan::new().kill_worker(1));
        // The query with the scripted kill survives: no hang, no
        // abort, a structured WorkerLost error on the report.
        let report = engine
            .search(&a, &q, &db, &SearchOptions::new().fault_plan(plan))
            .unwrap();
        assert!(report.partial);
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, AlignError::WorkerLost { worker_id: 1, .. })),
            "{:?}",
            report.errors
        );
        // The survivor's hits are all exact.
        let want = reference_scores(&a, &q, &db);
        for hit in &report.hits {
            assert_eq!(hit.score, want[hit.db_index]);
        }
        // The next query runs on a healed pool at full strength.
        let healed = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
        assert!(!healed.partial && healed.errors.is_empty());
        assert_eq!(healed.hits.len(), db.len());
        assert_eq!(engine.workers_respawned(), 1);
        assert_eq!(healed.metrics.workers_respawned, 1);
        for hit in &healed.hits {
            assert_eq!(hit.score, want[hit.db_index]);
        }
    }

    #[test]
    fn forced_saturation_drives_the_rescue_ladder() {
        let mut rng = seeded_rng(7500);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(7501, 20);
        let a = aligner();
        let engine = SearchEngine::new(2);
        let plain = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
        let plan = Arc::new(FaultPlan::new().saturate_slot(2).saturate_slot(5));
        let report = engine
            .search(
                &a,
                &q,
                &db,
                &SearchOptions::new().fault_plan(Arc::clone(&plan)),
            )
            .unwrap();
        // Forced saturation on a healthy subject: the rescue re-aligns
        // wider and lands on the identical score.
        assert_eq!(report.hits, plain.hits, "rescue must not change results");
        assert_eq!(report.metrics.rescued, 2);
        assert!(!report.partial);
        // With rescue disabled the forced flag is simply ignored (no
        // ladder, no retries) and scores are unchanged too — the flag
        // only marks the output as saturated.
        let off = engine
            .search(
                &a,
                &q,
                &db,
                &SearchOptions::new().fault_plan(plan).rescue(false),
            )
            .unwrap();
        assert_eq!(off.metrics.rescued, 0);
        assert_eq!(off.hits, plain.hits);
    }

    #[test]
    fn stalled_slot_with_short_deadline_yields_partial_not_hang() {
        let mut rng = seeded_rng(7600);
        let q = named_query(&mut rng, 50);
        let db = swissprot_like_db(7601, 30);
        let a = aligner();
        let engine = SearchEngine::new(1);
        let plan = Arc::new(FaultPlan::new().stall_slot(0, Duration::from_millis(40)));
        let report = engine
            .search(
                &a,
                &q,
                &db,
                &SearchOptions::new()
                    .shard(1)
                    .fault_plan(plan)
                    .deadline(Duration::from_millis(5)),
            )
            .unwrap();
        assert!(report.partial, "the stall must trip the deadline");
        assert!(report.subjects < db.len());
        let want = reference_scores(&a, &q, &db);
        for hit in &report.hits {
            assert_eq!(hit.score, want[hit.db_index]);
        }
    }

    #[test]
    fn seeded_plans_replay_identically() {
        quiet_panics();
        let mut rng = seeded_rng(7700);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(7701, 30);
        let a = aligner();
        let run = || {
            let engine = SearchEngine::new(2);
            let plan = Arc::new(FaultPlan::seeded(99, db.len()));
            let report = engine
                .search(&a, &q, &db, &SearchOptions::new().fault_plan(plan))
                .unwrap();
            let mut panicked: Vec<usize> = report
                .errors
                .iter()
                .filter_map(|e| match e {
                    AlignError::WorkerPanicked { db_index, .. } => Some(*db_index),
                    _ => None,
                })
                .collect();
            panicked.sort_unstable();
            (report.hits.clone(), panicked, report.metrics.rescued)
        };
        let (hits_a, panicked_a, rescued_a) = run();
        let (hits_b, panicked_b, rescued_b) = run();
        assert_eq!(hits_a, hits_b, "same seed, same surviving results");
        assert_eq!(panicked_a, panicked_b, "same seed, same faults");
        assert_eq!(rescued_a, rescued_b);
        assert_eq!(panicked_a.len(), 1, "the seeded plan panics one slot");
    }

    #[test]
    fn parsed_cli_plan_matches_builder_plan() {
        quiet_panics();
        let mut rng = seeded_rng(7800);
        let q = named_query(&mut rng, 50);
        let db = swissprot_like_db(7801, 20);
        let a = aligner();
        let engine = SearchEngine::new(2);
        let parsed = Arc::new(FaultPlan::parse("panic@1").unwrap());
        let report = engine
            .search(&a, &q, &db, &SearchOptions::new().fault_plan(parsed))
            .unwrap();
        assert!(report.partial);
        assert_eq!(report.hits.len(), db.len() - 1);
    }
}
