//! Loom suite: the cancellation handoff.
//!
//! Exhaustively model-checks the [`CancelToken`] protocol as the
//! engine uses it: workers poll the token at every shard boundary and
//! publish a shard's buffered batch only when the poll comes back
//! clean, so **a cancelled sweep never publishes a partial shard**,
//! and a worker that observes cancellation also observes the
//! canceller's preceding writes (the reason payload).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`.
#![cfg(loom)]

use aalign_par::protocol::{SharedBatch, WorkIndex};
use aalign_par::CancelToken;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// One engine-shaped worker: claim a shard, buffer its items locally,
/// and publish the whole batch only if the token is still clean at
/// the shard boundary. Returns the number of shards published.
fn sweep_worker(
    idx: &WorkIndex,
    stream: &SharedBatch<usize>,
    token: &CancelToken,
    shard: usize,
    total: usize,
) -> usize {
    let mut published = 0;
    while let Some((start, end)) = idx.claim(shard, total) {
        let mut batch: Vec<usize> = (start..end).collect();
        if token.is_cancelled() {
            // Abandon the buffered batch: nothing partial escapes.
            return published;
        }
        stream.publish(&mut batch);
        published += 1;
    }
    published
}

#[test]
fn a_cancelled_sweep_never_publishes_a_partial_shard() {
    loom::model(|| {
        const TOTAL: usize = 4;
        const SHARD: usize = 2;
        let idx = Arc::new(WorkIndex::new());
        let stream = SharedBatch::new();
        let token = CancelToken::new();

        let worker = {
            let idx = Arc::clone(&idx);
            let stream = stream.clone();
            let token = token.clone();
            thread::spawn(move || sweep_worker(&idx, &stream, &token, SHARD, TOTAL))
        };
        token.cancel();
        let published = worker.join().unwrap();

        let events = stream.drain();
        assert_eq!(
            events.len(),
            published * SHARD,
            "published stream must hold whole shards only"
        );
        assert_eq!(
            events.len() % SHARD,
            0,
            "no partial shard may escape a cancelled sweep"
        );
    });
}

#[test]
fn observed_cancellation_carries_the_cancellers_writes() {
    loom::model(|| {
        let token = CancelToken::new();
        let reason = Arc::new(AtomicUsize::new(0));

        let canceller = {
            let token = token.clone();
            let reason = Arc::clone(&reason);
            thread::spawn(move || {
                // ORDER: Relaxed — the payload store itself; its
                // visibility is carried by cancel()'s Release store,
                // which happens after it on this thread.
                reason.store(42, Ordering::Relaxed);
                token.cancel();
            })
        };

        if token.is_cancelled() {
            // ORDER: Relaxed — the Acquire inside is_cancelled()
            // already ordered the canceller's store before this load.
            assert_eq!(
                reason.load(Ordering::Relaxed),
                42,
                "observing the flag must imply observing the reason"
            );
        }
        canceller.join().unwrap();
    });
}

#[test]
fn cancel_is_idempotent_under_racing_cancellers() {
    loom::model(|| {
        let token = CancelToken::new();
        let other = {
            let token = token.clone();
            thread::spawn(move || token.cancel())
        };
        token.cancel();
        other.join().unwrap();
        assert!(token.is_cancelled(), "either racer suffices");
    });
}
