//! Loom suite: the engine's job-drain protocol under worker death.
//!
//! `SearchEngine::run_on_pool` must never hang: the supervisor counts
//! one completion signal per dispatched job, and a worker that dies
//! mid-job can never send one. The protocol survives because every
//! dispatched job holds a clone of the signal sender, and *both* exit
//! paths release it — a finishing job signals then drops its clone, a
//! dying worker drops its job (and clone) unrun while unwinding. So
//! the supervisor's receive loop either gets a signal or, once every
//! clone is gone, a disconnect; blocking forever would require a
//! sender that is neither used nor dropped, which no schedule allows.
//!
//! These models check the counting argument itself, exhaustively over
//! interleavings: whenever the supervisor can observe "all senders
//! released" (the disconnect), every dispatched job is already
//! accounted for — signalled (`Done`/`Panicked` slot) or provably
//! dead (slot still `Pending`, mapped to `WorkerLost` on collection).
//! A mid-flight observation never over-counts, and each slot resolves
//! exactly once.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Slot states, mirroring `engine::JobSlot`.
const PENDING: usize = 0;
const DONE: usize = 1;
const PANICKED: usize = 2;

/// The drain-protocol state visible to the supervisor: per-job slots,
/// a completion-signal tally (the mpsc queue), a dead-job tally, and
/// the number of live sender clones (disconnect = zero).
struct Protocol {
    slots: Mutex<Vec<usize>>,
    signals: AtomicUsize,
    dead: AtomicUsize,
    senders: AtomicUsize,
}

impl Protocol {
    fn new(dispatched: usize) -> Self {
        Self {
            slots: Mutex::new(vec![PENDING; dispatched]),
            signals: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            senders: AtomicUsize::new(dispatched),
        }
    }

    /// A job that runs to completion: resolve the slot, signal, then
    /// release the sender clone — the same order as the engine (the
    /// `done_tx.send` precedes the job box drop).
    fn finish_job(&self, slot: usize, outcome: usize) {
        let mut slots = self.slots.lock().unwrap();
        assert_eq!(slots[slot], PENDING, "a slot must resolve exactly once");
        slots[slot] = outcome;
        drop(slots);
        self.signals.fetch_add(1, Ordering::SeqCst);
        self.senders.fetch_sub(1, Ordering::SeqCst);
    }

    /// A worker dying mid-job: no slot write, no signal — unwinding
    /// drops the job box, which accounts the death and releases the
    /// sender clone.
    fn die(&self) {
        self.dead.fetch_add(1, Ordering::SeqCst);
        self.senders.fetch_sub(1, Ordering::SeqCst);
    }

    /// What the supervisor may conclude at any instant. Loads senders
    /// *first*: if it reads zero, every job's signal-or-death update
    /// is already visible, so the tallies must cover every dispatched
    /// job — the disconnect can never strand one.
    fn check_observation(&self, dispatched: usize) {
        let alive = self.senders.load(Ordering::SeqCst);
        let accounted = self.signals.load(Ordering::SeqCst) + self.dead.load(Ordering::SeqCst);
        if alive == 0 {
            assert_eq!(
                accounted, dispatched,
                "disconnect with a stranded job: the drain would miscount"
            );
        } else {
            assert!(accounted <= dispatched, "a job was accounted twice");
        }
    }

    /// The supervisor's receive loop, replayed against the final
    /// state: consume buffered signals while any remain, exit on
    /// disconnect otherwise. Panics on the one state that would block
    /// a real `recv` forever — the property under test.
    fn drain(&self, dispatched: usize) -> usize {
        let mut remaining = dispatched;
        let mut received = 0;
        while remaining > 0 {
            if received < self.signals.load(Ordering::SeqCst) {
                received += 1;
                remaining -= 1;
            } else if self.senders.load(Ordering::SeqCst) == 0 {
                break; // recv() -> Err(Disconnected)
            } else {
                panic!("drain would block: no signal, yet senders remain");
            }
        }
        remaining
    }
}

#[test]
fn worker_death_disconnects_instead_of_stranding_the_drain() {
    loom::model(|| {
        let p = Arc::new(Protocol::new(2));
        let finisher = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.finish_job(0, DONE))
        };
        let dier = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.die())
        };
        // Supervisor races both workers: any observable state must
        // already satisfy the accounting invariant.
        p.check_observation(2);
        finisher.join().unwrap();
        dier.join().unwrap();
        // Quiescent: the receive loop terminates with exactly the
        // dead job unreceived, and collection maps its Pending slot
        // to WorkerLost.
        assert_eq!(p.drain(2), 1, "exactly the dead job goes unsignalled");
        let slots = p.slots.lock().unwrap();
        assert_eq!(*slots, vec![DONE, PENDING]);
    });
}

#[test]
fn job_boundary_panic_still_signals_and_resolves_its_slot_once() {
    loom::model(|| {
        let p = Arc::new(Protocol::new(2));
        let panicker = {
            let p = Arc::clone(&p);
            // A panic caught at the job boundary is a *completion*:
            // the slot records the payload and the signal still goes
            // out, so the sweep keeps running.
            thread::spawn(move || p.finish_job(1, PANICKED))
        };
        p.finish_job(0, DONE);
        panicker.join().unwrap();
        assert_eq!(p.drain(2), 0, "both jobs signalled despite the panic");
        let slots = p.slots.lock().unwrap();
        assert_eq!(*slots, vec![DONE, PANICKED]);
    });
}

#[test]
fn every_worker_dying_cannot_hang_the_supervisor() {
    loom::model(|| {
        let p = Arc::new(Protocol::new(2));
        let a = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.die())
        };
        let b = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.die())
        };
        p.check_observation(2);
        a.join().unwrap();
        b.join().unwrap();
        // Zero signals ever arrive; the drain must still exit (via
        // disconnect) with every job unreceived, not block.
        assert_eq!(p.drain(2), 2);
        let slots = p.slots.lock().unwrap();
        assert_eq!(*slots, vec![PENDING, PENDING]);
    });
}
