//! Versioned wire conversions for the search types: one stable JSON
//! shape for [`Hit`], [`SearchMetrics`], [`SearchReport`], and
//! [`AlignError`], shared verbatim by the CLI's `--metrics-format
//! json`, partial-result reporting on stderr, and the `aalign-serve`
//! HTTP / JSON-RPC front ends.
//!
//! Conventions (see [`aalign_obs::wire`]):
//!
//! * Top-level documents ([`metrics_to_wire`], [`report_to_wire`])
//!   carry `"schema_version": 1` as their first key and are rejected
//!   on re-read when the version differs.
//! * Errors are `{"code", "message", …detail}` objects with stable
//!   snake_case codes ([`error_to_wire`]); the `message` text carries
//!   no stability promise.
//! * Durations are serialized as integer microseconds (`*_us` keys),
//!   so round-trips are lossless at microsecond resolution.
//! * Histograms serialize their occupied log2 buckets and rebuild
//!   bit-identically ([`aalign_obs::wire::histogram_to_wire`]).
//! * [`SearchReport::trace_events`] is *not* part of the wire format
//!   — traces have their own JSONL format ([`aalign_obs::jsonl`]) —
//!   so a decoded report always has an empty trace.
//!
//! The exact rendered bytes are pinned by
//! `crates/par/tests/wire_roundtrip.rs`; changing any key is a
//! schema change and requires a [`SCHEMA_VERSION`] bump.

use std::time::Duration;

use aalign_core::{AlignError, RunStats};
pub use aalign_obs::wire::SCHEMA_VERSION;
use aalign_obs::wire::{
    array_field, bool_field, check_version, f64_field, field, histogram_from_wire,
    histogram_to_wire, obj, str_field, u64_field, versioned, JsonValue, WireError,
};

use crate::metrics::{SearchMetrics, ShardOutcome, WorkerMetrics};
use crate::search::{Hit, SearchReport};

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// `{"db_index":…,"len":…,"score":…}` — one database hit.
pub fn hit_to_wire(h: &Hit) -> JsonValue {
    obj(vec![
        ("db_index", h.db_index.into()),
        ("len", h.len.into()),
        ("score", (h.score as i64).into()),
    ])
}

/// Decode one hit object.
pub fn hit_from_wire(v: &JsonValue) -> Result<Hit, WireError> {
    Ok(Hit {
        db_index: u64_field(v, "db_index")? as usize,
        len: u64_field(v, "len")? as usize,
        score: i32::try_from(aalign_obs::wire::i64_field(v, "score")?)
            .map_err(|_| WireError::new("hit score out of i32 range"))?,
    })
}

/// Stable machine-readable code for an [`AlignError`] variant.
pub fn error_code(e: &AlignError) -> &'static str {
    match e {
        AlignError::EmptyQuery => "empty_query",
        AlignError::AlphabetMismatch { .. } => "alphabet_mismatch",
        AlignError::Cancelled => "cancelled",
        AlignError::DeadlineExceeded => "deadline_exceeded",
        AlignError::WorkerPanicked { .. } => "worker_panicked",
        AlignError::WorkerLost { .. } => "worker_lost",
        AlignError::ShardLost { .. } => "shard_lost",
        // `AlignError` is #[non_exhaustive]; future variants fall
        // back to a generic code until they are given one here.
        _ => "align_error",
    }
}

/// `{"code":…,"message":…,…detail}` — typed error object. Variant
/// payloads ride as extra fields (`id`, `db_index`, `worker_id`,
/// `payload`) so consumers never parse the human message.
pub fn error_to_wire(e: &AlignError) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("code", error_code(e).into()),
        ("message", e.to_string().into()),
    ];
    match e {
        AlignError::AlphabetMismatch { id } => {
            fields.push(("id", id.as_str().into()));
        }
        AlignError::WorkerPanicked { db_index, payload } => {
            fields.push(("db_index", (*db_index).into()));
            fields.push(("payload", payload.as_str().into()));
        }
        AlignError::WorkerLost { worker_id, payload } => {
            fields.push(("worker_id", (*worker_id).into()));
            fields.push(("payload", payload.as_str().into()));
        }
        AlignError::ShardLost { shard, start, end } => {
            fields.push(("shard", (*shard).into()));
            fields.push(("start", (*start).into()));
            fields.push(("end", (*end).into()));
        }
        _ => {}
    }
    obj(fields)
}

/// Decode an error object back to the typed variant (codes this
/// build does not know decode to an error).
pub fn error_from_wire(v: &JsonValue) -> Result<AlignError, WireError> {
    match str_field(v, "code")? {
        "empty_query" => Ok(AlignError::EmptyQuery),
        "alphabet_mismatch" => Ok(AlignError::AlphabetMismatch {
            id: str_field(v, "id")?.to_string(),
        }),
        "cancelled" => Ok(AlignError::Cancelled),
        "deadline_exceeded" => Ok(AlignError::DeadlineExceeded),
        "worker_panicked" => Ok(AlignError::WorkerPanicked {
            db_index: u64_field(v, "db_index")? as usize,
            payload: str_field(v, "payload")?.to_string(),
        }),
        "worker_lost" => Ok(AlignError::WorkerLost {
            worker_id: u64_field(v, "worker_id")? as usize,
            payload: str_field(v, "payload")?.to_string(),
        }),
        "shard_lost" => Ok(AlignError::ShardLost {
            shard: u64_field(v, "shard")? as usize,
            start: u64_field(v, "start")? as usize,
            end: u64_field(v, "end")? as usize,
        }),
        other => Err(WireError::new(format!("unknown error code {other:?}"))),
    }
}

/// Errors array for a report / response (`[{"code":…},…]`).
pub fn errors_to_wire(errors: &[AlignError]) -> JsonValue {
    JsonValue::Array(errors.iter().map(error_to_wire).collect())
}

fn kernel_to_wire(k: &RunStats) -> JsonValue {
    obj(vec![
        ("lazy_iters", k.lazy_iters.into()),
        ("lazy_sweeps", k.lazy_sweeps.into()),
        ("iterate_columns", k.iterate_columns.into()),
        ("scan_columns", k.scan_columns.into()),
        ("switches_to_scan", k.switches_to_scan.into()),
        ("probes_stayed", k.probes_stayed.into()),
    ])
}

fn kernel_from_wire(v: &JsonValue) -> Result<RunStats, WireError> {
    Ok(RunStats {
        lazy_iters: u64_field(v, "lazy_iters")?,
        lazy_sweeps: u64_field(v, "lazy_sweeps")?,
        iterate_columns: u64_field(v, "iterate_columns")? as usize,
        scan_columns: u64_field(v, "scan_columns")? as usize,
        switches_to_scan: u64_field(v, "switches_to_scan")? as usize,
        probes_stayed: u64_field(v, "probes_stayed")? as usize,
    })
}

fn worker_to_wire(w: &WorkerMetrics) -> JsonValue {
    obj(vec![
        ("id", w.worker_id.into()),
        ("subjects", w.subjects.into()),
        ("residues", w.residues.into()),
        ("busy_us", duration_us(w.busy).into()),
        ("scratch_bytes", w.scratch_bytes.into()),
        ("queries_on_worker", w.queries_on_worker.into()),
    ])
}

fn worker_from_wire(v: &JsonValue) -> Result<WorkerMetrics, WireError> {
    Ok(WorkerMetrics {
        worker_id: u64_field(v, "id")? as usize,
        subjects: u64_field(v, "subjects")? as usize,
        residues: u64_field(v, "residues")? as usize,
        busy: Duration::from_micros(u64_field(v, "busy_us")?),
        scratch_bytes: u64_field(v, "scratch_bytes")? as usize,
        queries_on_worker: u64_field(v, "queries_on_worker")?,
    })
}

/// Versioned metrics document — the single source of truth behind
/// [`SearchMetrics::to_json`] and the server's per-response metrics.
pub fn metrics_to_wire(m: &SearchMetrics) -> JsonValue {
    versioned(vec![
        ("prepare_us", duration_us(m.prepare).into()),
        ("sweep_us", duration_us(m.sweep).into()),
        ("merge_us", duration_us(m.merge).into()),
        ("total_us", duration_us(m.total).into()),
        ("cells", m.cells.into()),
        ("gcups", m.gcups.into()),
        ("kernel", kernel_to_wire(&m.kernel_stats)),
        ("width_retries", m.width_retries.into()),
        ("rescued", m.rescued.into()),
        ("rescue_width_bits", histogram_to_wire(&m.rescue_widths)),
        ("certified_width", m.certified_width.into()),
        ("coalesced", m.coalesced.into()),
        ("workers_respawned", m.workers_respawned.into()),
        (
            "shards",
            obj(vec![
                ("ok", m.shards.ok.into()),
                ("failed", m.shards.failed.into()),
                ("retried", m.shards.retried.into()),
                ("timed_out", m.shards.timed_out.into()),
            ]),
        ),
        ("peak_hits_buffered", m.peak_hits_buffered.into()),
        ("queue_wait_ns", histogram_to_wire(&m.queue_wait)),
        ("batch_wait_ns", histogram_to_wire(&m.batch_wait)),
        ("request_e2e_ns", histogram_to_wire(&m.request_e2e)),
        ("latency_ns", histogram_to_wire(&m.latency)),
        ("worker_load_residues", histogram_to_wire(&m.worker_load)),
        (
            "workers",
            JsonValue::Array(m.per_worker.iter().map(worker_to_wire).collect()),
        ),
    ])
}

/// Optional histogram field: absent decodes as empty, so documents
/// written before the field existed still parse within the same
/// schema version.
fn optional_histogram(v: &JsonValue, key: &str) -> Result<aalign_obs::Histogram, WireError> {
    match v.get(key) {
        Some(h) => histogram_from_wire(h),
        None => Ok(aalign_obs::Histogram::default()),
    }
}

/// Optional counter field: absent decodes as 0 (same additive-field
/// convention as [`optional_histogram`]).
fn optional_u64(v: &JsonValue, key: &str) -> Result<u64, WireError> {
    match v.get(key) {
        Some(_) => u64_field(v, key),
        None => Ok(0),
    }
}

/// Optional shard-outcome object: absent decodes as the all-zero
/// default, so pre-supervisor documents still parse within the same
/// schema version.
fn optional_shards(v: &JsonValue) -> Result<ShardOutcome, WireError> {
    match v.get("shards") {
        Some(s) => Ok(ShardOutcome {
            ok: u64_field(s, "ok")?,
            failed: u64_field(s, "failed")?,
            retried: u64_field(s, "retried")?,
            timed_out: u64_field(s, "timed_out")?,
        }),
        None => Ok(ShardOutcome::default()),
    }
}

/// Decode a metrics document (version-checked; lossless at
/// microsecond duration resolution).
pub fn metrics_from_wire(v: &JsonValue) -> Result<SearchMetrics, WireError> {
    check_version(v)?;
    Ok(SearchMetrics {
        prepare: Duration::from_micros(u64_field(v, "prepare_us")?),
        sweep: Duration::from_micros(u64_field(v, "sweep_us")?),
        merge: Duration::from_micros(u64_field(v, "merge_us")?),
        total: Duration::from_micros(u64_field(v, "total_us")?),
        cells: u64_field(v, "cells")?,
        gcups: f64_field(v, "gcups")?,
        kernel_stats: kernel_from_wire(field(v, "kernel")?)?,
        width_retries: u64_field(v, "width_retries")?,
        rescued: u64_field(v, "rescued")?,
        rescue_widths: histogram_from_wire(field(v, "rescue_width_bits")?)?,
        certified_width: optional_u64(v, "certified_width")? as u32,
        coalesced: u64_field(v, "coalesced")?,
        workers_respawned: u64_field(v, "workers_respawned")?,
        shards: optional_shards(v)?,
        peak_hits_buffered: u64_field(v, "peak_hits_buffered")? as usize,
        queue_wait: optional_histogram(v, "queue_wait_ns")?,
        batch_wait: optional_histogram(v, "batch_wait_ns")?,
        request_e2e: optional_histogram(v, "request_e2e_ns")?,
        latency: histogram_from_wire(field(v, "latency_ns")?)?,
        worker_load: histogram_from_wire(field(v, "worker_load_residues")?)?,
        per_worker: array_field(v, "workers")?
            .iter()
            .map(worker_from_wire)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Versioned report document: hits, counters, partial flag, typed
/// errors, and the full metrics block. Trace events are excluded by
/// design (they have their own JSONL format).
pub fn report_to_wire(r: &SearchReport) -> JsonValue {
    versioned(vec![
        ("partial", r.partial.into()),
        ("threads_used", r.threads_used.into()),
        ("subjects", r.subjects.into()),
        ("total_residues", r.total_residues.into()),
        (
            "hits",
            JsonValue::Array(r.hits.iter().map(hit_to_wire).collect()),
        ),
        ("errors", errors_to_wire(&r.errors)),
        ("metrics", metrics_to_wire(&r.metrics)),
    ])
}

/// Decode a report document (version-checked; `trace_events` comes
/// back empty).
pub fn report_from_wire(v: &JsonValue) -> Result<SearchReport, WireError> {
    check_version(v)?;
    Ok(SearchReport {
        partial: bool_field(v, "partial")?,
        threads_used: u64_field(v, "threads_used")? as usize,
        subjects: u64_field(v, "subjects")? as usize,
        total_residues: u64_field(v, "total_residues")? as usize,
        hits: array_field(v, "hits")?
            .iter()
            .map(hit_from_wire)
            .collect::<Result<Vec<_>, _>>()?,
        errors: array_field(v, "errors")?
            .iter()
            .map(error_from_wire)
            .collect::<Result<Vec<_>, _>>()?,
        metrics: metrics_from_wire(field(v, "metrics")?)?,
        trace_events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_stable_and_round_trip() {
        let samples = vec![
            AlignError::EmptyQuery,
            AlignError::AlphabetMismatch { id: "Q1".into() },
            AlignError::Cancelled,
            AlignError::DeadlineExceeded,
            AlignError::WorkerPanicked {
                db_index: 7,
                payload: "boom".into(),
            },
            AlignError::WorkerLost {
                worker_id: 2,
                payload: "killed".into(),
            },
            AlignError::ShardLost {
                shard: 1,
                start: 250,
                end: 500,
            },
        ];
        let codes: Vec<&str> = samples.iter().map(error_code).collect();
        assert_eq!(
            codes,
            vec![
                "empty_query",
                "alphabet_mismatch",
                "cancelled",
                "deadline_exceeded",
                "worker_panicked",
                "worker_lost",
                "shard_lost",
            ]
        );
        for e in samples {
            let wire = error_to_wire(&e);
            let back = error_from_wire(&JsonValue::parse(&wire.render()).unwrap()).unwrap();
            assert_eq!(back, e, "{}", wire.render());
        }
    }

    #[test]
    fn hit_round_trips_including_negative_scores() {
        for score in [i32::MIN, -3, 0, 7, i32::MAX] {
            let h = Hit {
                db_index: 42,
                len: 900,
                score,
            };
            let back =
                hit_from_wire(&JsonValue::parse(&hit_to_wire(&h).render()).unwrap()).unwrap();
            assert_eq!(back, h);
        }
    }

    #[test]
    fn unknown_error_code_is_rejected() {
        let v = JsonValue::parse(r#"{"code":"quantum_flux","message":"?"}"#).unwrap();
        assert!(error_from_wire(&v).is_err());
    }
}
