//! Synchronization shim: `std::sync` normally, `loom` under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! Every concurrency primitive the engine uses is imported through
//! this module, never from `std::sync` directly. A normal build gets
//! the real types with zero indirection; a `--cfg loom` build swaps
//! in the model checker's instrumented types, so the loom suites in
//! `tests/loom_*.rs` can exhaustively explore the interleavings of
//! [`crate::protocol`] and [`crate::metrics::CancelToken`]. Outside a
//! `loom::model` the instrumented types degrade to `std` behavior,
//! which is why the ordinary test suite also passes under `--cfg
//! loom`.

#[cfg(loom)]
pub(crate) use loom::sync::atomic;
#[cfg(loom)]
pub(crate) use loom::sync::{Arc, Mutex};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic;
#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Mutex};
