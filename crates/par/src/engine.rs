//! The persistent search engine: a long-lived worker pool behind the
//! paper's Sec. V-E database sweep.
//!
//! The one-shot drivers ([`search_database`](crate::search_database)
//! and friends) spawn a fresh `thread::scope` per query — fine for
//! figure replication, wasteful for sustained query traffic. A
//! [`SearchEngine`] instead spawns its workers **once**; each worker
//! permanently owns an [`AlignScratch`], so after the first query the
//! hot loop of every subsequent query touches no allocator and no
//! thread-creation syscall. Queries are fed to the pool through the
//! same dynamic binding the paper uses: an atomic work index over the
//! length-sorted database, pulled in configurable shards.
//!
//! Three engine-grade facilities ride on top:
//!
//! * **Streaming top-k** — when [`SearchOptions::top_n`] is set, each
//!   worker keeps a bounded min-heap of its best `top_n` hits instead
//!   of collecting every hit, so peak hit storage is
//!   `O(workers × top_n)` rather than `O(db)`; the per-worker heaps
//!   are merged and ranked at the end. Results are bit-identical to
//!   collect-then-sort (the heap order is the final rank order).
//! * **Cancellation + progress** — a [`CancelToken`] is polled at
//!   every shard boundary (the query returns
//!   [`AlignError::Cancelled`]), and an optional progress callback
//!   receives completion snapshots as shards finish.
//! * **Metrics** — every query produces [`SearchMetrics`]: stage wall
//!   times, GCUPS, aggregated kernel [`RunStats`], width retries, and
//!   per-worker load (see [`crate::metrics`]).
//!
//! And the fault model (see `DESIGN.md` §11) rides through every
//! sweep:
//!
//! * **Panic isolation** — a panic while scoring one subject is
//!   caught at the slot boundary; the sweep continues and the report
//!   carries [`AlignError::WorkerPanicked`] alongside every other
//!   subject's valid result.
//! * **Pool self-healing** — a worker thread that dies outright is
//!   detected, joined, and respawned before the next query
//!   dispatches; its lost sweep surfaces as
//!   [`AlignError::WorkerLost`] and the supervisor's drain protocol
//!   (modeled in `tests/loom_worker_death.rs`) never hangs on the
//!   missing completion signal.
//! * **Deadlines** — [`SearchOptions::deadline`] bounds the query's
//!   wall clock; on expiry the report comes back `partial` with a
//!   verified ranking of the subjects that completed.
//! * **Overflow rescue** — a fixed-width kernel run that saturates
//!   its lanes is transparently re-aligned at the next wider element
//!   width ([`SearchOptions::rescue`]).

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::{
    AlignConfig, AlignError, AlignScratch, Aligner, PreparedQuery, RunStats, WidthPolicy,
};
use aalign_obs::{CollectorSink, Histogram, TraceEvent};

use crate::metrics::{
    CancelToken, ProgressFn, SearchMetrics, SearchProgress, ShardOutcome, WorkerMetrics,
};
use crate::protocol::{ProgressCounters, SharedBatch, WorkIndex};
use crate::search::{Hit, SearchOptions, SearchReport};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// Subjects per inter-sequence batch (one vector's worth; the
/// length-sorted order keeps batches dense).
pub(crate) const INTER_BATCH: usize = 16;

/// Microseconds elapsed since `t0`, saturating into `u64`.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Microseconds in `d`, saturating into `u64`.
fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Resolve a requested thread count (`0` = available parallelism).
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        requested
    }
    .max(1)
}

/// State owned by one pool thread for its whole lifetime.
struct WorkerState {
    /// Stable pool-local id (0-based).
    id: usize,
    /// Queries served by this thread so far.
    queries: u64,
    /// Alignment buffers, retained across queries.
    scratch: AlignScratch,
}

/// A unit of work shipped to a pool thread.
type Job = Box<dyn FnOnce(&mut WorkerState) + Send + 'static>;

/// Erase a job's borrow lifetime so it can cross the pool's
/// `'static` channel.
///
/// SAFETY: every erased job is dispatched by [`SearchEngine::run_on_pool`],
/// which blocks until the job has signalled completion over its done
/// channel before returning. The borrows captured by the job are all
/// owned by `run_on_pool`'s caller frame, which therefore strictly
/// outlives every access the job performs; after the completion
/// signal the job body has returned and performs no further access.
fn erase_job<'env>(job: Box<dyn FnOnce(&mut WorkerState) + Send + 'env>) -> Job {
    unsafe { std::mem::transmute::<Box<dyn FnOnce(&mut WorkerState) + Send + 'env>, Job>(job) }
}

/// Render a panic payload for the structured error variants.
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's result slot in a [`SearchEngine::run_on_pool`] call.
enum JobSlot<O> {
    /// Not yet written — after the drain, the worker died before its
    /// job ran (or mid-job without reaching the catch).
    Pending,
    /// The job completed.
    Done(O),
    /// The job panicked past the sweep's own slot-level isolation
    /// (carrying the stringified payload); the worker thread itself
    /// survived.
    Panicked(String),
}

/// Job-boundary fault hooks for [`SearchEngine::run_on_pool`]
/// (compiled to a no-op without the `fault-inject` feature).
#[derive(Clone, Copy, Default)]
struct JobFaults<'a> {
    #[cfg(feature = "fault-inject")]
    plan: Option<&'a crate::fault::FaultPlan>,
    _lt: std::marker::PhantomData<&'a ()>,
}

impl<'a> JobFaults<'a> {
    fn from_options(opts: &'a SearchOptions) -> Self {
        let _ = opts;
        Self {
            #[cfg(feature = "fault-inject")]
            plan: opts.fault_plan.as_deref(),
            _lt: std::marker::PhantomData,
        }
    }

    /// Scripted worker kill: fires *outside* the job-boundary catch,
    /// so the unwind escapes through the worker's receive loop and
    /// the thread genuinely dies — exercising the supervisor's
    /// disconnect drain and the pool's respawn path.
    fn maybe_kill(&self, worker_slot: usize) {
        let _ = worker_slot;
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = self.plan {
            plan.maybe_kill(worker_slot);
        }
    }
}

/// Sticky wall-clock deadline shared by one query's workers.
///
/// The first worker to observe expiry trips the internal token, so
/// every later poll (on any worker) is a cheap atomic load instead of
/// a clock read, and expiry is monotone — it can never un-expire.
struct DeadlineGuard {
    at: Instant,
    tripped: CancelToken,
}

impl DeadlineGuard {
    /// `None` when `budget` overflows the clock (treated as "no
    /// deadline" — such a budget can never elapse anyway).
    fn new(from: Instant, budget: Duration) -> Option<Self> {
        from.checked_add(budget).map(|at| Self {
            at,
            tripped: CancelToken::new(),
        })
    }

    /// Polled at shard boundaries, like cancellation.
    fn expired(&self) -> bool {
        if self.tripped.is_cancelled() {
            return true;
        }
        if Instant::now() >= self.at {
            self.tripped.cancel();
            return true;
        }
        false
    }
}

struct Worker {
    sender: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

fn spawn_worker(id: usize) -> Worker {
    let (sender, receiver) = mpsc::channel::<Job>();
    let handle = std::thread::Builder::new()
        .name(format!("aalign-search-{id}"))
        .spawn(move || {
            let mut state = WorkerState {
                id,
                queries: 0,
                scratch: AlignScratch::new(),
            };
            while let Ok(job) = receiver.recv() {
                job(&mut state);
            }
        })
        .expect("failed to spawn search worker thread");
    Worker {
        sender,
        handle: Some(handle),
    }
}

/// A persistent, reusable database-search engine.
///
/// Construction spawns the worker pool; every
/// [`search`](SearchEngine::search) /
/// [`search_inter`](SearchEngine::search_inter) /
/// [`pipeline`](SearchEngine::pipeline) call reuses it. Dropping the
/// engine shuts the workers down.
///
/// ```
/// use aalign_core::{AlignConfig, Aligner, GapModel};
/// use aalign_bio::matrices::BLOSUM62;
/// use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
/// use aalign_par::{SearchEngine, SearchOptions};
///
/// let mut rng = seeded_rng(1);
/// let db = swissprot_like_db(2, 30);
/// let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
/// let engine = SearchEngine::new(2);
/// let opts = SearchOptions::new().top_n(5);
///
/// // Back-to-back queries share the same two threads and scratch.
/// for seed in 0..3u64 {
///     let query = named_query(&mut rng, 60 + seed as usize);
///     let report = engine.search(&aligner, &query, &db, &opts).unwrap();
///     assert_eq!(report.hits.len(), 5);
///     assert!(report.metrics.gcups > 0.0);
/// }
/// assert_eq!(engine.queries_served(), 3);
/// ```
pub struct SearchEngine {
    /// The pool, behind a mutex so [`heal_and_senders`] can swap dead
    /// workers out before a query dispatches.
    ///
    /// [`heal_and_senders`]: SearchEngine::heal_and_senders
    pool: Mutex<Vec<Worker>>,
    /// Pool size, fixed at construction.
    threads: usize,
    queries_served: AtomicU64,
    /// Workers respawned after dying mid-job (pool self-healing).
    workers_respawned: AtomicU64,
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("threads", &self.threads)
            .field("queries_served", &self.queries_served)
            .field("workers_respawned", &self.workers_respawned)
            .finish()
    }
}

/// Everything a sweep shares across workers, independent of the
/// vectorization axis.
struct SweepShared<'a> {
    /// Next work slot (subject index for intra, batch index for
    /// inter) — the paper's dynamic binding
    /// ([`WorkIndex`], loom-checked in `tests/loom_work_index.rs`).
    index: &'a WorkIndex,
    /// Subjects/residues completed across all workers
    /// ([`ProgressCounters`], loom-checked in
    /// `tests/loom_progress.rs`).
    completed: &'a ProgressCounters,
    /// Number of work slots.
    total_slots: usize,
    /// Subjects in the whole sweep (for progress snapshots).
    subjects_total: usize,
    /// Slots grabbed per atomic fetch.
    shard: usize,
    top_n: usize,
    cancel: Option<&'a CancelToken>,
    progress: Option<&'a ProgressFn>,
    /// Destination for trace events when the query runs traced.
    /// Workers move whole per-subject batches in at shard boundaries,
    /// keeping every subject's events contiguous in the final stream
    /// ([`SharedBatch`], loom-checked in `tests/loom_publication.rs`
    /// and `tests/loom_cancel.rs`).
    trace: Option<&'a SharedBatch<TraceEvent>>,
    /// Wall-clock deadline, polled at shard boundaries alongside
    /// cancellation.
    deadline: Option<&'a DeadlineGuard>,
    /// Maps a work slot to the database index reported in
    /// [`AlignError::WorkerPanicked`] (identity-ish for the intra
    /// sweep's sorted order; first-of-batch for the inter sweep).
    db_index_of: &'a (dyn Fn(usize) -> usize + Sync),
    /// Scripted slot-level faults (stalls, panics), when a plan is
    /// attached.
    #[cfg(feature = "fault-inject")]
    fault: Option<&'a crate::fault::FaultPlan>,
}

/// Per-worker result of one sweep.
struct SweepOut {
    hits: Vec<Hit>,
    peak_buffered: usize,
    stats: RunStats,
    width_retries: u64,
    rescued: u64,
    rescue_widths: Histogram,
    latency: Histogram,
    /// Sweep-stopping error (cancellation, deadline, or a concrete
    /// alignment failure).
    err: Option<AlignError>,
    /// Per-subject failures the sweep survived
    /// ([`AlignError::WorkerPanicked`]); the sweep kept going.
    soft: Vec<AlignError>,
    worker: WorkerMetrics,
}

/// Counters a slot-scoring closure feeds during the sweep.
#[derive(Default)]
struct Tallies {
    stats: RunStats,
    width_retries: u64,
    /// Subjects re-aligned at a wider width after lane saturation.
    rescued: u64,
    /// One sample per rescue attempt, keyed by the width (bits) that
    /// saturated.
    rescue_widths: Histogram,
    /// Pool-local id of the worker running this sweep, stamped by
    /// [`run_sweep_worker`] so slot closures can tag trace events.
    worker_id: usize,
    /// Per-worker trace buffer: slot closures append complete
    /// `AlignBegin` … `AlignEnd` batches; the sweep loop drains it
    /// into the shared collector once per shard.
    sink: CollectorSink,
}

/// Max-heap wrapper whose maximum is the *worst* kept hit under the
/// final rank order (score desc, then db index asc), so `peek`/`pop`
/// evict correctly for a bounded top-k.
#[derive(PartialEq, Eq)]
struct WorstFirst(Hit);

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .score
            .cmp(&self.0.score)
            .then(self.0.db_index.cmp(&other.0.db_index))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// True when `a` ranks strictly ahead of `b` in the final order.
fn ranks_ahead(a: &Hit, b: &Hit) -> bool {
    a.score > b.score || (a.score == b.score && a.db_index < b.db_index)
}

/// Sort hits into the final rank order (score desc, db index asc).
///
/// This is *the* rank order: every engine path and the shard
/// supervisor's cross-process merge (`aalign-shard`) use it, which is
/// what makes an N-shard merge bit-identical to a single-process
/// sweep — equal scores always tie-break on the (rebased) database
/// index.
pub fn rank_hits(hits: &mut [Hit]) {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
}

/// Per-worker hit collector: unbounded when every hit is requested,
/// a bounded min-heap otherwise.
enum Collector {
    All(Vec<Hit>),
    Top {
        heap: BinaryHeap<WorstFirst>,
        cap: usize,
    },
}

impl Collector {
    fn new(top_n: usize) -> Self {
        if top_n == 0 {
            Collector::All(Vec::new())
        } else {
            Collector::Top {
                heap: BinaryHeap::with_capacity(top_n + 1),
                cap: top_n,
            }
        }
    }

    fn offer(&mut self, hit: Hit) {
        match self {
            Collector::All(v) => v.push(hit),
            Collector::Top { heap, cap } => {
                if heap.len() < *cap {
                    heap.push(WorstFirst(hit));
                } else if ranks_ahead(&hit, &heap.peek().expect("cap > 0").0) {
                    heap.pop();
                    heap.push(WorstFirst(hit));
                }
            }
        }
    }

    /// Current (== peak: the buffer never shrinks) number of hits held.
    fn len(&self) -> usize {
        match self {
            Collector::All(v) => v.len(),
            Collector::Top { heap, .. } => heap.len(),
        }
    }

    fn into_hits(self) -> Vec<Hit> {
        match self {
            Collector::All(v) => v,
            Collector::Top { heap, .. } => heap.into_iter().map(|w| w.0).collect(),
        }
    }
}

/// Scores one work slot into the collector, returning the
/// `(subjects, residues)` it completed.
type SlotFn<'a> = dyn Fn(&mut AlignScratch, usize, &mut Collector, &mut Tallies) -> Result<(usize, usize), AlignError>
    + Sync
    + 'a;

/// The dispatch loop every worker runs for one query: pull shards off
/// the atomic index, score each slot via `score_slot`, publish
/// progress, honor cancellation.
fn run_sweep_worker(
    shared: &SweepShared<'_>,
    state: &mut WorkerState,
    score_slot: &SlotFn<'_>,
) -> SweepOut {
    let t0 = Instant::now();
    state.queries += 1;
    let mut collector = Collector::new(shared.top_n);
    let mut tallies = Tallies {
        worker_id: state.id,
        ..Tallies::default()
    };
    let mut latency = Histogram::new();
    let mut subjects = 0usize;
    let mut residues = 0usize;
    let mut err = None;
    let mut soft: Vec<AlignError> = Vec::new();

    'sweep: loop {
        if let Some(c) = shared.cancel {
            if c.is_cancelled() {
                err = Some(AlignError::Cancelled);
                break;
            }
        }
        if let Some(d) = shared.deadline {
            if d.expired() {
                err = Some(AlignError::DeadlineExceeded);
                break;
            }
        }
        let Some((start, end)) = shared.index.claim(shared.shard, shared.total_slots) else {
            break;
        };
        let mut shard_subjects = 0usize;
        let mut shard_residues = 0usize;
        for slot in start..end {
            let t_slot = Instant::now();
            let batch_mark = tallies.sink.events.len();
            // AssertUnwindSafe: the catch's recovery below discards
            // everything the panicked slot may have half-written —
            // fresh scratch, trace batch truncated to the last
            // complete envelope; the collector and counters only ever
            // receive finished-subject values.
            let scored = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = shared.fault {
                    if let Some(pause) = plan.stall_for(slot) {
                        std::thread::sleep(pause);
                    }
                    if plan.should_panic(slot) {
                        panic!("fault-inject: panic scoring slot {slot}");
                    }
                }
                score_slot(&mut state.scratch, slot, &mut collector, &mut tallies)
            }));
            match scored {
                Ok(Ok((s, r))) => {
                    latency.record(u64::try_from(t_slot.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    shard_subjects += s;
                    shard_residues += r;
                }
                Ok(Err(e)) => {
                    err = Some(e);
                    break 'sweep;
                }
                Err(payload) => {
                    // Panic isolation: quarantine the scratch, drop
                    // the subject's partial trace batch, record the
                    // failure, keep sweeping. The subject is *not*
                    // counted as completed.
                    state.scratch = AlignScratch::new();
                    tallies.sink.events.truncate(batch_mark);
                    soft.push(AlignError::WorkerPanicked {
                        db_index: (shared.db_index_of)(slot),
                        payload: payload_string(payload),
                    });
                }
            }
        }
        // Publish this shard's completed trace batches in one lock
        // acquisition (a failed shard never publishes its partial
        // batch — the query errors out and the trace is discarded).
        if let Some(trace) = shared.trace {
            trace.publish(&mut tallies.sink.events);
        }
        subjects += shard_subjects;
        residues += shard_residues;
        let (done, residues_done) = shared.completed.publish(shard_subjects, shard_residues);
        if let Some(progress) = shared.progress {
            progress(&SearchProgress {
                subjects_done: done,
                subjects_total: shared.subjects_total,
                residues_done,
            });
        }
    }

    SweepOut {
        peak_buffered: collector.len(),
        hits: collector.into_hits(),
        stats: tallies.stats,
        width_retries: tallies.width_retries,
        rescued: tallies.rescued,
        rescue_widths: tallies.rescue_widths,
        latency,
        err,
        soft,
        worker: WorkerMetrics {
            worker_id: state.id,
            queries_on_worker: state.queries,
            subjects,
            residues,
            busy: t0.elapsed(),
            scratch_bytes: state.scratch.reserved_bytes(),
        },
    }
}

/// A wider-width aligner plus its prepared profiles, built lazily on
/// the first rescue that needs it.
struct RescueKit {
    aligner: Aligner,
    prepared: PreparedQuery,
}

/// Lazily-built wider-width retry path for saturated fixed-width
/// runs (the classic widen-and-retry idiom, lifted from the kernel's
/// Auto ladder up to the engine so even pinned-width sweeps recover).
///
/// Kits are built at most once per query, under a mutex, and shared
/// across workers via `Arc` — the non-saturating hot path never
/// touches this type beyond one `Option` check.
struct RescueLadder<'a> {
    base: &'a Aligner,
    query: &'a Sequence,
    w16: Mutex<Option<Arc<RescueKit>>>,
    w32: Mutex<Option<Arc<RescueKit>>>,
}

impl<'a> RescueLadder<'a> {
    fn new(base: &'a Aligner, query: &'a Sequence) -> Self {
        Self {
            base,
            query,
            w16: Mutex::new(None),
            w32: Mutex::new(None),
        }
    }

    /// Widths to retry at, in order, after a `bits`-wide run
    /// saturated. 32-bit lanes are the widest the kernels have.
    fn widths_above(bits: u32) -> &'static [u32] {
        match bits {
            8 => &[16, 32],
            16 => &[32],
            _ => &[],
        }
    }

    /// The kit for `bits`-wide retries, building it on first use.
    fn kit(&self, bits: u32) -> Result<Arc<RescueKit>, AlignError> {
        let (slot, width) = if bits == 16 {
            (&self.w16, WidthPolicy::Fixed16)
        } else {
            (&self.w32, WidthPolicy::Fixed32)
        };
        let mut guard = slot.lock().expect("rescue ladder mutex");
        if let Some(kit) = guard.as_ref() {
            return Ok(Arc::clone(kit));
        }
        let aligner = self.base.clone().with_width(width);
        let prepared = aligner.prepare(self.query)?;
        let kit = Arc::new(RescueKit { aligner, prepared });
        *guard = Some(Arc::clone(&kit));
        Ok(kit)
    }
}

impl SearchEngine {
    /// Spawn the worker pool. `threads == 0` uses the host's
    /// available parallelism. This is the only point at which the
    /// engine creates threads — queries reuse them.
    pub fn new(threads: usize) -> Self {
        let n = resolve_threads(threads);
        Self {
            pool: Mutex::new((0..n).map(spawn_worker).collect()),
            threads: n,
            queries_served: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
        }
    }

    /// Number of pooled worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queries this engine has served since construction.
    pub fn queries_served(&self) -> u64 {
        // ORDER: Relaxed — a monitoring counter read; the count is
        // not used to justify reading any other memory.
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Worker threads respawned after dying mid-job, over the
    /// engine's lifetime. Zero on a healthy engine.
    pub fn workers_respawned(&self) -> u64 {
        // ORDER: Relaxed — monitoring counter; respawn correctness is
        // carried by the pool mutex, not this atomic.
        self.workers_respawned.load(Ordering::Relaxed)
    }

    /// Quarantine-and-respawn any worker whose thread has died, then
    /// hand back senders for the first `active` (healthy) workers.
    ///
    /// Runs under the pool mutex before every dispatch, so a worker
    /// killed during query N is replaced — with the same stable id —
    /// before query N+1 binds work to it.
    fn heal_and_senders(&self, active: usize) -> Vec<mpsc::Sender<Job>> {
        let mut pool = self.pool.lock().expect("pool mutex");
        for (id, worker) in pool.iter_mut().enumerate() {
            let dead = worker.handle.as_ref().is_none_or(JoinHandle::is_finished);
            if dead {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
                *worker = spawn_worker(id);
                // ORDER: Relaxed — monitoring counter; respawn
                // correctness is carried by the pool mutex.
                self.workers_respawned.fetch_add(1, Ordering::Relaxed);
            }
        }
        pool.iter().take(active).map(|w| w.sender.clone()).collect()
    }

    /// Run `work` on the first `active` pool workers and collect
    /// their results in worker order, blocking until every dispatched
    /// job has completed, panicked past its catch, or provably died
    /// with its worker.
    ///
    /// Per-worker outcomes: `Ok(out)` on success, or
    /// [`AlignError::WorkerLost`] when the job panicked at the job
    /// boundary or its worker thread died before resolving the slot.
    fn run_on_pool<'env, O: Send + 'env>(
        &self,
        active: usize,
        faults: JobFaults<'_>,
        work: impl Fn(&mut WorkerState) -> O + Sync + 'env,
    ) -> Vec<Result<O, AlignError>> {
        debug_assert!(active >= 1 && active <= self.threads);
        let senders = self.heal_and_senders(active);
        let work = &work;
        let results: Mutex<Vec<JobSlot<O>>> =
            Mutex::new((0..active).map(|_| JobSlot::Pending).collect());
        let results = &results;
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let mut dispatched = 0usize;
        for (slot, sender) in senders.iter().enumerate() {
            let done_tx = done_tx.clone();
            let job: Box<dyn FnOnce(&mut WorkerState) + Send + '_> = Box::new(move |state| {
                faults.maybe_kill(slot);
                // AssertUnwindSafe: on panic the slot records
                // `Panicked` and the worker's scratch — the only
                // state a half-finished sweep could corrupt — is
                // quarantined below; nothing partially-written is
                // read again.
                let out = catch_unwind(AssertUnwindSafe(|| work(state)));
                let mut slots = results.lock().expect("results mutex");
                match out {
                    Ok(out) => slots[slot] = JobSlot::Done(out),
                    Err(payload) => {
                        state.scratch = AlignScratch::new();
                        slots[slot] = JobSlot::Panicked(payload_string(payload));
                    }
                }
                drop(slots);
                let _ = done_tx.send(());
            });
            // A failed send means the worker died between healing and
            // dispatch: the job box — and the done_tx clone inside it
            // — is dropped unrun, so it must not get a drain slot.
            if sender.send(erase_job(job)).is_ok() {
                dispatched += 1;
            }
        }
        drop(done_tx);
        // Drain protocol (modeled in `tests/loom_worker_death.rs`):
        // expect one signal per *dispatched* job, and treat channel
        // disconnection as "every outstanding sender is gone". A
        // worker that dies mid-job unwinds through its recv loop,
        // dropping its job's `done_tx` clone; once every clone is
        // dropped — each job either signalled or was destroyed — recv
        // returns Err and the loop exits. This can never hang, and it
        // upholds the lifetime-erasure SAFETY contract above: no job
        // can still touch the caller's borrows after the drain.
        let mut remaining = dispatched;
        while remaining > 0 {
            match done_rx.recv() {
                Ok(()) => remaining -= 1,
                Err(_) => break,
            }
        }
        let mut slots = results.lock().expect("results mutex");
        slots
            .iter_mut()
            .enumerate()
            .map(
                |(worker_id, slot)| match std::mem::replace(slot, JobSlot::Pending) {
                    JobSlot::Done(out) => Ok(out),
                    JobSlot::Panicked(payload) => {
                        Err(AlignError::WorkerLost { worker_id, payload })
                    }
                    JobSlot::Pending => Err(AlignError::WorkerLost {
                        worker_id,
                        payload: "worker thread died before finishing its job".to_string(),
                    }),
                },
            )
            .collect()
    }

    /// How many workers a sweep with `slots` work items engages.
    fn active_for(&self, slots: usize) -> usize {
        self.threads.min(slots.max(1))
    }

    /// Align `query` against every subject of `db` using the pooled
    /// workers and the intra-sequence (striped) kernels.
    ///
    /// `opts.threads` is ignored here — the pool size, fixed at
    /// construction, governs; the one-shot wrappers consult it when
    /// sizing their transient engine.
    pub fn search(
        &self,
        aligner: &Aligner,
        query: &Sequence,
        db: &SeqDatabase,
        opts: &SearchOptions,
    ) -> Result<SearchReport, AlignError> {
        let t_total = Instant::now();
        let trace = opts.trace.then(SharedBatch::<TraceEvent>::new);
        if let Some(tc) = &trace {
            tc.push(TraceEvent::QueryBegin {
                query: query.id().to_string(),
                subjects: db.len() as u64,
            });
            tc.push(TraceEvent::SpanBegin {
                span: "prepare".to_string(),
                at_us: 0,
            });
        }
        let prepared = aligner.prepare(query)?;
        let prepare = t_total.elapsed();
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanEnd {
                span: "prepare".to_string(),
                at_us: elapsed_us(t_total),
                dur_us: dur_us(prepare),
            });
        }

        let order = db.sorted_by_length_desc();
        let deadline = opts
            .deadline
            .and_then(|budget| DeadlineGuard::new(t_total, budget));
        let shared_ctx = (WorkIndex::new(), ProgressCounters::new());
        let order_ref = &order;
        let db_index_of = move |slot: usize| order_ref[slot];
        let shared = SweepShared {
            index: &shared_ctx.0,
            completed: &shared_ctx.1,
            total_slots: order.len(),
            subjects_total: order.len(),
            shard: opts.shard.max(1),
            top_n: opts.top_n,
            cancel: opts.cancel.as_ref(),
            progress: opts.progress.as_ref(),
            trace: trace.as_ref(),
            deadline: deadline.as_ref(),
            db_index_of: &db_index_of,
            #[cfg(feature = "fault-inject")]
            fault: opts.fault_plan.as_deref(),
        };
        let order = &order;
        let prepared = &prepared;
        let tracing = trace.is_some();
        let ladder = opts.rescue.then(|| RescueLadder::new(aligner, query));
        let ladder = ladder.as_ref();
        #[cfg(feature = "fault-inject")]
        let fault = opts.fault_plan.as_deref();
        let score_slot = move |scratch: &mut AlignScratch,
                               slot: usize,
                               collector: &mut Collector,
                               tallies: &mut Tallies|
              -> Result<(usize, usize), AlignError> {
            let db_index = order[slot];
            let subject = db.get(db_index);
            let t_align = Instant::now();
            // `col_mark` tracks where the current kernel run's column
            // events start, so a rescue can drop the discarded run's
            // columns while keeping the subject's envelope open.
            let mut col_mark = tallies.sink.events.len();
            if tracing {
                // One contiguous batch per subject: envelope plus the
                // kernel's per-column events, buffered worker-locally.
                tallies.sink.events.push(TraceEvent::AlignBegin {
                    subject: db_index as u64,
                    len: subject.len() as u64,
                    worker: tallies.worker_id as u64,
                });
                col_mark = tallies.sink.events.len();
            }
            let mut out = if tracing {
                aligner.align_prepared_sink(prepared, subject, scratch, &mut tallies.sink)?
            } else {
                aligner.align_prepared(prepared, subject, scratch)?
            };
            #[cfg(feature = "fault-inject")]
            if let Some(plan) = fault {
                if plan.should_saturate(slot) {
                    out.saturated = true;
                }
            }
            if out.saturated {
                // Overflow rescue: the fixed-width run's lanes
                // saturated (sticky influence test in the kernel);
                // re-align at each wider width until one holds the
                // score exactly. The rescued run's result replaces
                // the saturated one wholesale — stats, trace columns,
                // and score all describe the kept run.
                if let Some(ladder) = ladder {
                    for &to_bits in RescueLadder::widths_above(out.elem_bits) {
                        let from_bits = out.elem_bits;
                        let kit = ladder.kit(to_bits)?;
                        tallies.rescue_widths.record(u64::from(from_bits));
                        if tracing {
                            tallies.sink.events.truncate(col_mark);
                            tallies.sink.events.push(TraceEvent::Rescue {
                                subject: db_index as u64,
                                from_bits: u64::from(from_bits),
                                to_bits: u64::from(to_bits),
                            });
                            col_mark = tallies.sink.events.len();
                            out = kit.aligner.align_prepared_sink(
                                &kit.prepared,
                                subject,
                                scratch,
                                &mut tallies.sink,
                            )?;
                        } else {
                            out = kit
                                .aligner
                                .align_prepared(&kit.prepared, subject, scratch)?;
                        }
                        if !out.saturated {
                            tallies.rescued += 1;
                            break;
                        }
                    }
                }
            }
            if tracing {
                tallies.sink.events.push(TraceEvent::AlignEnd {
                    subject: db_index as u64,
                    score: i64::from(out.score),
                    iterate_columns: out.stats.iterate_columns as u64,
                    scan_columns: out.stats.scan_columns as u64,
                    dur_us: elapsed_us(t_align),
                });
            }
            tallies.stats.merge(&out.stats);
            tallies.width_retries += u64::from(out.width_retries);
            collector.offer(Hit {
                db_index,
                len: subject.len(),
                score: out.score,
            });
            Ok((1, subject.len()))
        };

        let active = self.active_for(order.len());
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanBegin {
                span: "sweep".to_string(),
                at_us: elapsed_us(t_total),
            });
        }
        let t_sweep = Instant::now();
        let outs = self.run_on_pool(active, JobFaults::from_options(opts), |state| {
            run_sweep_worker(&shared, state, &score_slot)
        });
        let sweep = t_sweep.elapsed();
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanEnd {
                span: "sweep".to_string(),
                at_us: elapsed_us(t_total),
                dur_us: dur_us(sweep),
            });
        }

        // Widest-claim stamp: the narrowest width a certificate on
        // the aligner proves rescue-free for this query against the
        // *longest* database subject (every shorter subject is then
        // covered too). 0 when no certificate applies.
        let max_subject = db.sequences().iter().map(Sequence::len).max().unwrap_or(0);
        let certified_width = aligner.certified_width(query.len(), max_subject);
        self.finish(
            query.len(),
            active,
            outs,
            opts.top_n,
            StageTimes {
                started: t_total,
                prepare,
                sweep,
            },
            certified_width,
            trace,
        )
    }

    /// Inter-sequence variant: batches of 16 subjects
    /// aligned simultaneously, one vector lane each. Hit-identical to
    /// [`search`](SearchEngine::search); only the vectorization axis
    /// differs.
    pub fn search_inter(
        &self,
        cfg: &AlignConfig,
        query: &Sequence,
        db: &SeqDatabase,
        opts: &SearchOptions,
    ) -> Result<SearchReport, AlignError> {
        let t_total = Instant::now();
        // The inter-sequence kernel scores 16 subjects per vector and
        // has no per-column hybrid decisions to report, so a traced
        // inter sweep carries the query/span framing only.
        let trace = opts.trace.then(SharedBatch::<TraceEvent>::new);
        if let Some(tc) = &trace {
            tc.push(TraceEvent::QueryBegin {
                query: query.id().to_string(),
                subjects: db.len() as u64,
            });
            tc.push(TraceEvent::SpanBegin {
                span: "prepare".to_string(),
                at_us: 0,
            });
        }
        if query.is_empty() {
            return Err(AlignError::EmptyQuery);
        }
        cfg.check_seq(query)?;
        for s in db.sequences() {
            cfg.check_seq(s)?;
        }
        let prepare = t_total.elapsed();
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanEnd {
                span: "prepare".to_string(),
                at_us: elapsed_us(t_total),
                dur_us: dur_us(prepare),
            });
        }

        let t2 = cfg.table2();
        let order = db.sorted_by_length_desc();
        let batches: Vec<&[usize]> = order.chunks(INTER_BATCH).collect();
        let deadline = opts
            .deadline
            .and_then(|budget| DeadlineGuard::new(t_total, budget));
        let shared_ctx = (WorkIndex::new(), ProgressCounters::new());
        let batches_ref = &batches;
        // A panicked inter slot reports its batch's first subject.
        let db_index_of = move |slot: usize| batches_ref[slot].first().copied().unwrap_or(0);
        let shared = SweepShared {
            index: &shared_ctx.0,
            completed: &shared_ctx.1,
            total_slots: batches.len(),
            subjects_total: order.len(),
            shard: opts.shard.max(1),
            top_n: opts.top_n,
            cancel: opts.cancel.as_ref(),
            progress: opts.progress.as_ref(),
            trace: trace.as_ref(),
            deadline: deadline.as_ref(),
            db_index_of: &db_index_of,
            #[cfg(feature = "fault-inject")]
            fault: opts.fault_plan.as_deref(),
        };
        let batches = &batches;
        let score_slot = |_scratch: &mut AlignScratch,
                          slot: usize,
                          collector: &mut Collector,
                          _tallies: &mut Tallies|
         -> Result<(usize, usize), AlignError> {
            let batch = batches[slot];
            let subjects: Vec<&Sequence> = batch.iter().map(|&i| db.get(i)).collect();
            let scores = aalign_core::inter_align_all(t2, &cfg.matrix, query, &subjects);
            let mut residues = 0usize;
            for (&db_index, score) in batch.iter().zip(scores) {
                let len = db.get(db_index).len();
                residues += len;
                collector.offer(Hit {
                    db_index,
                    len,
                    score,
                });
            }
            Ok((batch.len(), residues))
        };

        let active = self.active_for(batches.len());
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanBegin {
                span: "sweep".to_string(),
                at_us: elapsed_us(t_total),
            });
        }
        let t_sweep = Instant::now();
        let outs = self.run_on_pool(active, JobFaults::from_options(opts), |state| {
            run_sweep_worker(&shared, state, &score_slot)
        });
        let sweep = t_sweep.elapsed();
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanEnd {
                span: "sweep".to_string(),
                at_us: elapsed_us(t_total),
                dur_us: dur_us(sweep),
            });
        }

        self.finish(
            query.len(),
            active,
            outs,
            opts.top_n,
            StageTimes {
                started: t_total,
                prepare,
                sweep,
            },
            // The inter path takes a bare config (no aligner), so no
            // certificate store is in scope to consult.
            0,
            trace,
        )
    }

    /// Merge per-worker sweeps into a ranked report with metrics.
    ///
    /// Error precedence: a concrete alignment failure fails the whole
    /// query (as does cancellation); everything survivable — lost
    /// workers, per-subject panics, an expired deadline — lands in
    /// [`SearchReport::errors`] with `partial` set, alongside the
    /// valid results of every subject that completed.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        query_len: usize,
        active: usize,
        outs: Vec<Result<SweepOut, AlignError>>,
        top_n: usize,
        times: StageTimes,
        certified_width: u32,
        trace: Option<SharedBatch<TraceEvent>>,
    ) -> Result<SearchReport, AlignError> {
        let mut errors: Vec<AlignError> = Vec::new();
        let mut results: Vec<SweepOut> = Vec::with_capacity(outs.len());
        for out in outs {
            match out {
                Ok(out) => results.push(out),
                // WorkerLost: that worker's sweep output is gone, but
                // the query survives on the other workers' results.
                Err(lost) => errors.push(lost),
            }
        }
        // A concrete failure (bad subject alphabet, …) outranks the
        // cancellations it may have triggered in sibling workers.
        let mut cancelled = false;
        let mut deadline_hit = false;
        for out in &results {
            match &out.err {
                Some(AlignError::Cancelled) => cancelled = true,
                Some(AlignError::DeadlineExceeded) => deadline_hit = true,
                Some(other) => return Err(other.clone()),
                None => {}
            }
        }
        if cancelled {
            return Err(AlignError::Cancelled);
        }
        if deadline_hit {
            errors.push(AlignError::DeadlineExceeded);
        }

        let t_merge = Instant::now();
        if let Some(tc) = &trace {
            tc.push(TraceEvent::SpanBegin {
                span: "merge".to_string(),
                at_us: elapsed_us(times.started),
            });
        }
        let mut kernel_stats = RunStats::default();
        let mut width_retries = 0u64;
        let mut rescued = 0u64;
        let mut rescue_widths = Histogram::new();
        let mut peak_hits_buffered = 0usize;
        let mut latency = Histogram::new();
        let mut worker_load = Histogram::new();
        let mut per_worker = Vec::with_capacity(results.len());
        let mut subjects = 0usize;
        let mut total_residues = 0usize;
        let mut hits: Vec<Hit> = Vec::with_capacity(results.iter().map(|o| o.hits.len()).sum());
        for mut out in results {
            kernel_stats.merge(&out.stats);
            width_retries += out.width_retries;
            rescued += out.rescued;
            rescue_widths.merge(&out.rescue_widths);
            peak_hits_buffered += out.peak_buffered;
            latency.merge(&out.latency);
            worker_load.record(out.worker.residues as u64);
            subjects += out.worker.subjects;
            total_residues += out.worker.residues;
            errors.append(&mut out.soft);
            per_worker.push(out.worker);
            hits.extend(out.hits);
        }
        rank_hits(&mut hits);
        if top_n > 0 {
            hits.truncate(top_n);
        }
        let merge = t_merge.elapsed();
        let partial = !errors.is_empty();

        // ORDER: Relaxed — counting only; query results travel
        // through run_on_pool's completion channel, not this counter.
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        let cells = query_len as u64 * total_residues as u64;
        let trace_events = match trace {
            Some(tc) => {
                tc.push(TraceEvent::SpanEnd {
                    span: "merge".to_string(),
                    at_us: elapsed_us(times.started),
                    dur_us: dur_us(merge),
                });
                tc.push(TraceEvent::QueryEnd {
                    at_us: elapsed_us(times.started),
                    hits: hits.len() as u64,
                });
                tc.drain()
            }
            None => Vec::new(),
        };
        Ok(SearchReport {
            hits,
            threads_used: active,
            subjects,
            total_residues,
            metrics: SearchMetrics {
                prepare: times.prepare,
                sweep: times.sweep,
                merge,
                total: times.started.elapsed(),
                cells,
                gcups: SearchMetrics::derive_gcups(cells, times.sweep),
                kernel_stats,
                width_retries,
                rescued,
                rescue_widths,
                certified_width,
                // Batching and admission happen above the engine: a
                // serving dispatcher stamps the follower count and
                // the stage-wait histograms post-hoc.
                coalesced: 0,
                queue_wait: Histogram::new(),
                batch_wait: Histogram::new(),
                request_e2e: Histogram::new(),
                workers_respawned: self.workers_respawned(),
                // Sharding happens above the engine too: the shard
                // supervisor stamps the per-shard outcome on merged
                // reports.
                shards: ShardOutcome::default(),
                peak_hits_buffered,
                latency,
                worker_load,
                per_worker,
            },
            trace_events,
            partial,
            errors,
        })
    }
}

/// Stage timestamps threaded from a sweep into [`SearchEngine::finish`].
struct StageTimes {
    started: Instant,
    prepare: Duration,
    sweep: Duration,
}

impl Drop for SearchEngine {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *self.pool.lock().expect("pool mutex"));
        for worker in workers {
            let Worker { sender, handle } = worker;
            // Disconnecting the channel ends the worker's recv loop.
            drop(sender);
            if let Some(handle) = handle {
                // A worker killed mid-job joins with its panic
                // payload; shutdown ignores it either way.
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
    use aalign_core::{AlignKind, GapModel, Strategy};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn aligner(kind: AlignKind) -> Aligner {
        Aligner::new(AlignConfig::new(kind, GapModel::affine(-10, -2), &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
    }

    /// Reference: score every subject directly, sort, truncate — the
    /// pre-engine collect-then-sort semantics.
    fn reference_hits(a: &Aligner, q: &Sequence, db: &SeqDatabase, top_n: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = (0..db.len())
            .map(|i| Hit {
                db_index: i,
                len: db.get(i).len(),
                score: a.align(q, db.get(i)).unwrap().score,
            })
            .collect();
        rank_hits(&mut hits);
        if top_n > 0 {
            hits.truncate(top_n);
        }
        hits
    }

    #[test]
    fn engine_matches_oneshot_reference_across_kinds_threads_topn() {
        let mut rng = seeded_rng(9100);
        let q = named_query(&mut rng, 70);
        let db = swissprot_like_db(9101, 40);
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            let a = aligner(kind);
            for threads in [1usize, 4] {
                let engine = SearchEngine::new(threads);
                for top_n in [0usize, 5] {
                    let want = reference_hits(&a, &q, &db, top_n);
                    let got = engine
                        .search(&a, &q, &db, &SearchOptions::new().top_n(top_n))
                        .unwrap();
                    assert_eq!(got.hits, want, "{kind:?} threads={threads} top_n={top_n}");
                }
            }
        }
    }

    #[test]
    fn pool_reused_across_queries_spawns_threads_exactly_once() {
        let mut rng = seeded_rng(9200);
        let db = swissprot_like_db(9201, 30);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(3);
        assert_eq!(engine.threads(), 3);
        let opts = SearchOptions::new().top_n(3);
        for query_no in 1..=3u64 {
            let q = named_query(&mut rng, 50 + query_no as usize * 10);
            let report = engine.search(&a, &q, &db, &opts).unwrap();
            assert_eq!(report.metrics.workers(), 3);
            for w in &report.metrics.per_worker {
                assert!(w.worker_id < 3, "no new threads may appear: {w:?}");
                assert_eq!(
                    w.queries_on_worker, query_no,
                    "every query must be served by the same pooled thread"
                );
            }
        }
        assert_eq!(engine.queries_served(), 3);
    }

    #[test]
    fn streaming_topk_bounds_hit_storage() {
        let mut rng = seeded_rng(9300);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(9301, 200);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(4);
        let top_n = 5;
        let report = engine
            .search(&a, &q, &db, &SearchOptions::new().top_n(top_n))
            .unwrap();
        assert_eq!(report.hits.len(), top_n);
        assert!(
            report.metrics.peak_hits_buffered <= engine.threads() * top_n,
            "peak {} exceeds workers×top_n = {}",
            report.metrics.peak_hits_buffered,
            engine.threads() * top_n
        );
        // And the unbounded path really is O(db).
        let full = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
        assert_eq!(full.metrics.peak_hits_buffered, db.len());
    }

    #[test]
    fn topk_merge_equals_full_sort_truncate_on_ties() {
        // Duplicate subjects give exactly tied scores; the streaming
        // heaps must resolve them identically to sort-then-truncate
        // (ascending db index among ties).
        let mut rng = seeded_rng(9400);
        let q = named_query(&mut rng, 50);
        let base = swissprot_like_db(9401, 12).sequences().to_vec();
        let mut seqs = base.clone();
        for (i, s) in base.iter().enumerate() {
            seqs.push(Sequence::from_indices(
                format!("dup_{i}"),
                s.alphabet(),
                s.indices().to_vec(),
            ));
        }
        let db = SeqDatabase::new(seqs);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(3);
        for top_n in [1usize, 4, 13, 24] {
            let want = reference_hits(&a, &q, &db, top_n);
            let got = engine
                .search(&a, &q, &db, &SearchOptions::new().top_n(top_n))
                .unwrap();
            assert_eq!(got.hits, want, "top_n={top_n}");
        }
    }

    #[test]
    fn cancellation_stops_the_sweep_early() {
        let mut rng = seeded_rng(9500);
        let q = named_query(&mut rng, 80);
        let db = swissprot_like_db(9501, 120);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(1);
        let token = CancelToken::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let opts = {
            let token = token.clone();
            let seen = Arc::clone(&seen);
            SearchOptions::new()
                .shard(1)
                .cancel(token.clone())
                .on_progress(move |p| {
                    seen.store(p.subjects_done, Ordering::Relaxed);
                    if p.subjects_done >= 3 {
                        token.cancel();
                    }
                })
        };
        let err = engine.search(&a, &q, &db, &opts).unwrap_err();
        assert_eq!(err, AlignError::Cancelled);
        let scored = seen.load(Ordering::Relaxed);
        assert!(
            scored >= 3 && scored < db.len(),
            "sweep must stop early: scored {scored} of {}",
            db.len()
        );
    }

    #[test]
    fn pre_cancelled_token_fails_fast() {
        let mut rng = seeded_rng(9600);
        let q = named_query(&mut rng, 40);
        let db = swissprot_like_db(9601, 10);
        let engine = SearchEngine::new(2);
        let token = CancelToken::new();
        token.cancel();
        let err = engine
            .search(
                &aligner(AlignKind::Local),
                &q,
                &db,
                &SearchOptions::new().cancel(token),
            )
            .unwrap_err();
        assert_eq!(err, AlignError::Cancelled);
    }

    #[test]
    fn metrics_account_for_the_whole_sweep() {
        let mut rng = seeded_rng(9700);
        let q = named_query(&mut rng, 90);
        let db = swissprot_like_db(9701, 50);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(2);
        let report = engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
        let m = &report.metrics;
        let db_residues: usize = db.sequences().iter().map(Sequence::len).sum();
        assert_eq!(report.total_residues, db_residues);
        assert_eq!(m.cells, q.len() as u64 * db_residues as u64);
        assert!(m.gcups > 0.0);
        assert_eq!(
            m.per_worker.iter().map(|w| w.subjects).sum::<usize>(),
            db.len()
        );
        assert_eq!(
            m.per_worker.iter().map(|w| w.residues).sum::<usize>(),
            db_residues
        );
        // Every subject's columns show up in the kernel mix.
        assert_eq!(
            m.kernel_stats.iterate_columns + m.kernel_stats.scan_columns,
            db_residues
        );
        assert!(m.total >= m.sweep);
        for w in &m.per_worker {
            assert!(w.scratch_bytes > 0, "warm worker must hold scratch");
        }
        // One latency sample per subject, one load sample per worker.
        assert_eq!(m.latency.count(), db.len() as u64);
        assert_eq!(m.worker_load.count(), m.workers() as u64);
        assert_eq!(
            m.worker_load.sum(),
            db_residues as u64,
            "worker-load samples partition the database residues"
        );
        // Derived GCUPS agrees with the guarded helper.
        assert_eq!(m.gcups, SearchMetrics::derive_gcups(m.cells, m.sweep));
    }

    #[test]
    fn scratch_stops_growing_after_warmup() {
        // Zero-allocation reuse: the scratch footprint after query 2
        // equals the footprint after query 3 (same database).
        let mut rng = seeded_rng(9800);
        let db = swissprot_like_db(9801, 25);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(2);
        let q = named_query(&mut rng, 100);
        let footprint = |r: &SearchReport| -> Vec<usize> {
            r.metrics
                .per_worker
                .iter()
                .map(|w| w.scratch_bytes)
                .collect()
        };
        engine.search(&a, &q, &db, &SearchOptions::new()).unwrap();
        let warm = footprint(&engine.search(&a, &q, &db, &SearchOptions::new()).unwrap());
        let again = footprint(&engine.search(&a, &q, &db, &SearchOptions::new()).unwrap());
        assert_eq!(warm, again, "buffers must be retained, not reallocated");
    }

    #[test]
    fn inter_engine_matches_intra_engine() {
        let mut rng = seeded_rng(9900);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(9901, 45);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let engine = SearchEngine::new(2);
        let a = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
        for top_n in [0usize, 7] {
            let opts = SearchOptions::new().top_n(top_n);
            let intra = engine.search(&a, &q, &db, &opts).unwrap();
            let inter = engine.search_inter(&cfg, &q, &db, &opts).unwrap();
            assert_eq!(intra.hits, inter.hits, "top_n={top_n}");
        }
    }

    #[test]
    fn sharded_binding_is_result_invariant() {
        let mut rng = seeded_rng(9950);
        let q = named_query(&mut rng, 70);
        let db = swissprot_like_db(9951, 60);
        let a = aligner(AlignKind::Local);
        let engine = SearchEngine::new(4);
        let want = engine
            .search(&a, &q, &db, &SearchOptions::new().top_n(10))
            .unwrap();
        for shard in [2usize, 7, 64] {
            let got = engine
                .search(&a, &q, &db, &SearchOptions::new().top_n(10).shard(shard))
                .unwrap();
            assert_eq!(got.hits, want.hits, "shard={shard}");
        }
    }
}
