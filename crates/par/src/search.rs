//! The dynamic-binding database search.

use std::sync::atomic::{AtomicUsize, Ordering};

use aalign_bio::SeqDatabase;
use aalign_bio::Sequence;
use aalign_core::{AlignError, AlignScratch, Aligner};

/// One database hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Index of the subject in the database.
    pub db_index: usize,
    /// Subject id.
    pub id: String,
    /// Subject length.
    pub len: usize,
    /// Alignment score.
    pub score: i32,
}

/// Search tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions {
    /// Worker thread count (0 = available parallelism).
    pub threads: usize,
    /// Keep only the best `top_n` hits (0 = keep every hit).
    pub top_n: usize,
}

/// Search result: ranked hits plus counters.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Hits sorted by descending score (ties: ascending db index).
    pub hits: Vec<Hit>,
    /// Threads actually used.
    pub threads_used: usize,
    /// Total subjects aligned.
    pub subjects: usize,
    /// Total residues aligned (cell count / query length).
    pub total_residues: usize,
}

/// Align `query` against every subject in `db` with `aligner`'s
/// configuration and strategy.
///
/// ```
/// use aalign_par::{search_database, SearchOptions};
/// use aalign_core::{AlignConfig, Aligner, GapModel};
/// use aalign_bio::matrices::BLOSUM62;
/// use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
///
/// let mut rng = seeded_rng(1);
/// let query = named_query(&mut rng, 60);
/// let db = swissprot_like_db(2, 20);
/// let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
/// let report = search_database(&aligner, &query, &db,
///     SearchOptions { threads: 2, top_n: 5 }).unwrap();
/// assert_eq!(report.hits.len(), 5);
/// ```
///
/// The query profile is built once ([`Aligner::prepare`]) and shared;
/// subjects are processed longest-first via an atomic work index
/// (the paper's dynamic binding); each worker owns one scratch
/// buffer set, so the hot loop does not allocate.
pub fn search_database(
    aligner: &Aligner,
    query: &Sequence,
    db: &SeqDatabase,
    opts: SearchOptions,
) -> Result<SearchReport, AlignError> {
    let prepared = aligner.prepare(query)?;
    let order = db.sorted_by_length_desc();
    let next = AtomicUsize::new(0);

    let threads_used = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .max(1)
    .min(order.len().max(1));

    let mut all_hits: Vec<Hit> = Vec::with_capacity(db.len());
    let mut total_residues = 0usize;

    std::thread::scope(|scope| -> Result<(), AlignError> {
        let mut handles = Vec::with_capacity(threads_used);
        for _ in 0..threads_used {
            let next = &next;
            let order = &order;
            let prepared = &prepared;
            handles.push(scope.spawn(move || {
                let mut scratch = AlignScratch::new();
                let mut hits = Vec::new();
                let mut residues = 0usize;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= order.len() {
                        break;
                    }
                    let db_index = order[slot];
                    let subject = db.get(db_index);
                    let out = aligner.align_prepared(prepared, subject, &mut scratch)?;
                    residues += subject.len();
                    hits.push(Hit {
                        db_index,
                        id: subject.id().to_string(),
                        len: subject.len(),
                        score: out.score,
                    });
                }
                Ok::<(Vec<Hit>, usize), AlignError>((hits, residues))
            }));
        }
        for h in handles {
            let (hits, residues) = h.join().expect("worker panicked")?;
            all_hits.extend(hits);
            total_residues += residues;
        }
        Ok(())
    })?;

    all_hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    if opts.top_n > 0 {
        all_hits.truncate(opts.top_n);
    }
    Ok(SearchReport {
        subjects: db.len(),
        threads_used,
        total_residues,
        hits: all_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db, Level, PairSpec};
    use aalign_core::{AlignConfig, GapModel, Strategy};

    fn aligner() -> Aligner {
        Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
    }

    #[test]
    fn multithreaded_equals_single_threaded() {
        let mut rng = seeded_rng(50);
        let q = named_query(&mut rng, 80);
        let db = swissprot_like_db(51, 60);
        let a = aligner();
        let one = search_database(
            &a,
            &q,
            &db,
            SearchOptions {
                threads: 1,
                top_n: 0,
            },
        )
        .unwrap();
        let four = search_database(
            &a,
            &q,
            &db,
            SearchOptions {
                threads: 4,
                top_n: 0,
            },
        )
        .unwrap();
        assert_eq!(one.hits, four.hits, "thread count must not change results");
        assert_eq!(one.subjects, 60);
        assert_eq!(four.threads_used, 4);
    }

    #[test]
    fn planted_similar_subject_ranks_first() {
        let mut rng = seeded_rng(60);
        let q = named_query(&mut rng, 120);
        let mut seqs = swissprot_like_db(61, 40).sequences().to_vec();
        let planted = PairSpec::new(Level::Hi, Level::Hi)
            .generate(&mut rng, &q)
            .subject;
        let planted_id = planted.id().to_string();
        seqs.push(planted);
        let db = SeqDatabase::new(seqs);
        let report = search_database(
            &aligner(),
            &q,
            &db,
            SearchOptions {
                threads: 2,
                top_n: 5,
            },
        )
        .unwrap();
        assert_eq!(report.hits.len(), 5);
        assert_eq!(report.hits[0].id, planted_id, "planted hit must win");
        assert!(report.hits[0].score > report.hits[1].score);
    }

    #[test]
    fn top_n_zero_keeps_everything() {
        let mut rng = seeded_rng(70);
        let q = named_query(&mut rng, 50);
        let db = swissprot_like_db(71, 25);
        let report = search_database(&aligner(), &q, &db, SearchOptions::default()).unwrap();
        assert_eq!(report.hits.len(), 25);
        // Sorted by score descending.
        for w in report.hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn scores_match_direct_alignment() {
        let mut rng = seeded_rng(80);
        let q = named_query(&mut rng, 64);
        let db = swissprot_like_db(81, 10);
        let a = aligner();
        let report = search_database(
            &a,
            &q,
            &db,
            SearchOptions {
                threads: 3,
                top_n: 0,
            },
        )
        .unwrap();
        for hit in &report.hits {
            let direct = a.align(&q, db.get(hit.db_index)).unwrap();
            assert_eq!(hit.score, direct.score, "{}", hit.id);
        }
    }

    #[test]
    fn empty_query_propagates_error() {
        let q = Sequence::protein("e", b"").unwrap();
        let db = swissprot_like_db(91, 5);
        let err = search_database(&aligner(), &q, &db, SearchOptions::default()).unwrap_err();
        assert_eq!(err, AlignError::EmptyQuery);
    }

    #[test]
    fn empty_database_gives_empty_report() {
        let mut rng = seeded_rng(100);
        let q = named_query(&mut rng, 30);
        let db = SeqDatabase::default();
        let report = search_database(&aligner(), &q, &db, SearchOptions::default()).unwrap();
        assert!(report.hits.is_empty());
        assert_eq!(report.subjects, 0);
    }
}

/// Inter-sequence database search (extension): batches of
/// `LANES` subjects aligned simultaneously, one lane each — the mode
/// that wins for databases of short sequences. Results are identical
/// to [`search_database`]; only the vectorization axis differs.
pub fn search_database_inter(
    cfg: &aalign_core::AlignConfig,
    query: &Sequence,
    db: &SeqDatabase,
    opts: SearchOptions,
) -> Result<SearchReport, AlignError> {
    if query.is_empty() {
        return Err(AlignError::EmptyQuery);
    }
    let check = |s: &Sequence| -> Result<(), AlignError> {
        if core::ptr::eq(s.alphabet(), cfg.matrix.alphabet()) {
            Ok(())
        } else {
            Err(AlignError::AlphabetMismatch {
                id: s.id().to_string(),
            })
        }
    };
    check(query)?;
    for s in db.sequences() {
        check(s)?;
    }

    let t2 = cfg.table2();
    let order = db.sorted_by_length_desc();
    // Batch size: one vector's worth of subjects; length-sorted order
    // keeps batches dense (idle-lane waste is bounded by the length
    // spread inside a batch).
    const BATCH: usize = 16;
    let batches: Vec<&[usize]> = order.chunks(BATCH).collect();
    let next = AtomicUsize::new(0);

    let threads_used = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .max(1)
    .min(batches.len().max(1));

    let mut all_hits: Vec<Hit> = Vec::with_capacity(db.len());
    let mut total_residues = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads_used);
        for _ in 0..threads_used {
            let next = &next;
            let batches = &batches;
            handles.push(scope.spawn(move || {
                let mut hits = Vec::new();
                let mut residues = 0usize;
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= batches.len() {
                        break;
                    }
                    let batch = batches[b];
                    let subjects: Vec<&Sequence> = batch.iter().map(|&i| db.get(i)).collect();
                    let scores = aalign_core::inter_align_all(t2, &cfg.matrix, query, &subjects);
                    for (&db_index, score) in batch.iter().zip(scores) {
                        let subject = db.get(db_index);
                        residues += subject.len();
                        hits.push(Hit {
                            db_index,
                            id: subject.id().to_string(),
                            len: subject.len(),
                            score,
                        });
                    }
                }
                (hits, residues)
            }));
        }
        for h in handles {
            let (hits, residues) = h.join().expect("worker panicked");
            all_hits.extend(hits);
            total_residues += residues;
        }
    });

    all_hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    if opts.top_n > 0 {
        all_hits.truncate(opts.top_n);
    }
    Ok(SearchReport {
        subjects: db.len(),
        threads_used,
        total_residues,
        hits: all_hits,
    })
}

#[cfg(test)]
mod inter_tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
    use aalign_core::{AlignConfig, AlignKind, GapModel, Strategy};

    #[test]
    fn inter_search_equals_intra_search() {
        let mut rng = seeded_rng(600);
        let q = named_query(&mut rng, 70);
        let db = swissprot_like_db(601, 50);
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            let cfg = AlignConfig::new(kind, GapModel::affine(-10, -2), &BLOSUM62);
            let intra = search_database(
                &Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid),
                &q,
                &db,
                SearchOptions {
                    threads: 2,
                    top_n: 0,
                },
            )
            .unwrap();
            let inter = search_database_inter(
                &cfg,
                &q,
                &db,
                SearchOptions {
                    threads: 2,
                    top_n: 0,
                },
            )
            .unwrap();
            assert_eq!(intra.hits, inter.hits, "{:?}", kind);
        }
    }

    #[test]
    fn inter_search_empty_db() {
        let mut rng = seeded_rng(602);
        let q = named_query(&mut rng, 30);
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let report =
            search_database_inter(&cfg, &q, &SeqDatabase::default(), SearchOptions::default())
                .unwrap();
        assert!(report.hits.is_empty());
    }
}
