//! The dynamic-binding database search: options, reports, and the
//! one-shot drivers (thin wrappers over [`SearchEngine`](crate::SearchEngine)).

use aalign_bio::SeqDatabase;
use aalign_bio::Sequence;
use aalign_core::{AlignError, Aligner};
use aalign_obs::TraceEvent;

use crate::handle::EngineHandle;
use crate::metrics::{CancelToken, ProgressFn, SearchMetrics, SearchProgress};

/// One database hit.
///
/// Stores only plain numbers — no per-hit `String` is allocated in
/// the sweep's hot loop. Resolve the subject id lazily through the
/// database: [`SeqDatabase::id`]`(hit.db_index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the subject in the database.
    pub db_index: usize,
    /// Subject length.
    pub len: usize,
    /// Alignment score.
    pub score: i32,
}

/// Search tuning, built fluently:
///
/// ```
/// use aalign_par::SearchOptions;
/// let opts = SearchOptions::new().threads(4).top_n(10);
/// assert_eq!(opts.threads, 4);
/// assert_eq!(opts.top_n, 10);
/// ```
///
/// `#[non_exhaustive]`: construct through [`SearchOptions::new`] so
/// the engine can grow fields (cancellation, progress, and shard size
/// were added this way) without breaking callers.
#[derive(Clone)]
#[non_exhaustive]
pub struct SearchOptions {
    /// Worker thread count for the one-shot drivers
    /// (0 = available parallelism). A persistent [`SearchEngine`](crate::SearchEngine)
    /// uses its own pool size instead.
    pub threads: usize,
    /// Keep only the best `top_n` hits (0 = keep every hit). When
    /// set, workers stream hits through bounded heaps: peak hit
    /// storage is `O(threads × top_n)` instead of `O(db)`.
    pub top_n: usize,
    /// Work-items grabbed per atomic fetch (0 or 1 = one at a time,
    /// the paper's per-subject dynamic binding). Larger shards trade
    /// scheduling traffic for tail balance; results are identical.
    pub shard: usize,
    /// Cooperative cancellation token, polled at shard boundaries.
    pub cancel: Option<CancelToken>,
    /// Progress callback, invoked (on worker threads) as shards
    /// complete.
    pub progress: Option<ProgressFn>,
    /// Collect a structured trace of the query: engine span framing,
    /// one `AlignBegin`/`AlignEnd` envelope per subject, and (on the
    /// intra sweep, with the `trace` feature on) the kernel's
    /// per-column hybrid decisions. Events surface on
    /// [`SearchReport::trace_events`]; off by default — untraced
    /// sweeps route the kernels through their no-op-sink
    /// monomorphization.
    pub trace: bool,
    /// Automatically re-align a subject whose fixed-width kernel run
    /// saturated its lanes at the next wider element width (on by
    /// default). Each rescue is counted in
    /// [`SearchMetrics::rescued`] and, when tracing, surfaces as a
    /// `rescue` event inside the subject's align envelope. Costs one
    /// branch per subject on the non-saturating path.
    ///
    /// [`SearchMetrics::rescued`]: crate::SearchMetrics::rescued
    pub rescue: bool,
    /// Wall-clock budget for the query, measured from entry into the
    /// search call. When it expires mid-sweep the engine stops
    /// binding new subjects and returns a [`SearchReport`] with
    /// [`partial`](SearchReport::partial) set: the hits are a correct
    /// ranking of the subjects that *did* complete, never a wrong
    /// score. `None` (the default) never times out.
    pub deadline: Option<std::time::Duration>,
    /// Scripted faults for this query (`fault-inject` feature only;
    /// see [`FaultPlan`](crate::FaultPlan)).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            top_n: 0,
            shard: 0,
            cancel: None,
            progress: None,
            trace: false,
            rescue: true,
            deadline: None,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }
}

impl SearchOptions {
    /// Default options: all cores, every hit, per-subject binding,
    /// saturation rescue on, no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Keep only the best `top_n` hits (0 = keep every hit).
    pub fn top_n(mut self, top_n: usize) -> Self {
        self.top_n = top_n;
        self
    }

    /// Set the dynamic-binding shard size.
    pub fn shard(mut self, shard: usize) -> Self {
        self.shard = shard;
        self
    }

    /// Attach a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a progress callback (runs on worker threads).
    pub fn on_progress(
        mut self,
        callback: impl Fn(&SearchProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(std::sync::Arc::new(callback));
        self
    }

    /// Collect a structured trace of the query (see
    /// [`SearchReport::trace_events`]).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable or disable automatic saturation rescue (on by default).
    pub fn rescue(mut self, on: bool) -> Self {
        self.rescue = on;
        self
    }

    /// Give the query a wall-clock budget; on expiry the report comes
    /// back [`partial`](SearchReport::partial) instead of erroring.
    pub fn deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attach a scripted fault plan (`fault-inject` feature only).
    #[cfg(feature = "fault-inject")]
    pub fn fault_plan(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl std::fmt::Debug for SearchOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchOptions")
            .field("threads", &self.threads)
            .field("top_n", &self.top_n)
            .field("shard", &self.shard)
            .field("cancel", &self.cancel.is_some())
            .field("progress", &self.progress.is_some())
            .field("trace", &self.trace)
            .field("rescue", &self.rescue)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// Search result: ranked hits plus counters and per-query metrics.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Hits sorted by descending score (ties: ascending db index).
    pub hits: Vec<Hit>,
    /// Threads actually used.
    pub threads_used: usize,
    /// Total subjects aligned.
    pub subjects: usize,
    /// Total residues aligned (cell count / query length).
    pub total_residues: usize,
    /// Per-query observability: stage times, GCUPS, kernel counters,
    /// per-worker load.
    pub metrics: SearchMetrics,
    /// The structured trace, in stream order, when
    /// [`SearchOptions::trace`] was set (empty otherwise). Feed it to
    /// `aalign_obs::TraceWriter` to persist as JSONL, or to
    /// `aalign_obs::TraceReport::from_events` to reconstruct the
    /// hybrid decision timeline.
    pub trace_events: Vec<TraceEvent>,
    /// True when the sweep did not cover the whole database — a
    /// deadline expired, a worker panicked on a subject, or a worker
    /// thread died. The hits are still a correct ranking of every
    /// subject that completed; [`errors`](SearchReport::errors) says
    /// what was lost.
    pub partial: bool,
    /// Structured per-subject/per-worker failures the sweep survived
    /// (e.g. [`AlignError::WorkerPanicked`],
    /// [`AlignError::WorkerLost`], [`AlignError::DeadlineExceeded`]).
    /// Empty on a clean, complete sweep.
    ///
    /// [`AlignError::WorkerPanicked`]: aalign_core::AlignError::WorkerPanicked
    /// [`AlignError::WorkerLost`]: aalign_core::AlignError::WorkerLost
    /// [`AlignError::DeadlineExceeded`]: aalign_core::AlignError::DeadlineExceeded
    pub errors: Vec<AlignError>,
}

/// Align `query` against every subject in `db` with `aligner`'s
/// configuration and strategy.
///
/// ```
/// use aalign_par::{search_database, SearchOptions};
/// use aalign_core::{AlignConfig, Aligner, GapModel};
/// use aalign_bio::matrices::BLOSUM62;
/// use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
///
/// let mut rng = seeded_rng(1);
/// let query = named_query(&mut rng, 60);
/// let db = swissprot_like_db(2, 20);
/// let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
/// let report = search_database(&aligner, &query, &db,
///     SearchOptions::new().threads(2).top_n(5)).unwrap();
/// assert_eq!(report.hits.len(), 5);
/// println!("{}", db.id(report.hits[0].db_index));
/// ```
///
/// The query profile is built once ([`Aligner::prepare`]) and shared;
/// subjects are processed longest-first via an atomic work index
/// (the paper's dynamic binding); each worker owns one scratch
/// buffer set, so the hot loop does not allocate.
///
/// This is a one-shot convenience over [`SearchEngine`](crate::SearchEngine): it spins a
/// transient pool up and down per call. To serve many queries, hold a
/// [`SearchEngine`](crate::SearchEngine) and call [`SearchEngine::search`](crate::SearchEngine::search) — same results,
/// zero per-query thread and allocation setup.
pub fn search_database(
    aligner: &Aligner,
    query: &Sequence,
    db: &SeqDatabase,
    opts: SearchOptions,
) -> Result<SearchReport, AlignError> {
    EngineHandle::transient(opts.threads, db.len()).search(aligner, query, db, &opts)
}

/// Inter-sequence database search (extension): batches of 16
/// subjects aligned simultaneously, one lane each — the mode that
/// wins for databases of short sequences. Results are identical to
/// [`search_database`]; only the vectorization axis differs.
///
/// One-shot wrapper over [`SearchEngine::search_inter`](crate::SearchEngine::search_inter).
pub fn search_database_inter(
    cfg: &aalign_core::AlignConfig,
    query: &Sequence,
    db: &SeqDatabase,
    opts: SearchOptions,
) -> Result<SearchReport, AlignError> {
    EngineHandle::transient_inter(opts.threads, db.len()).search_inter(cfg, query, db, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db, Level, PairSpec};
    use aalign_core::{AlignConfig, GapModel, Strategy};

    fn aligner() -> Aligner {
        Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
    }

    #[test]
    fn multithreaded_equals_single_threaded() {
        let mut rng = seeded_rng(50);
        let q = named_query(&mut rng, 80);
        let db = swissprot_like_db(51, 60);
        let a = aligner();
        let one = search_database(&a, &q, &db, SearchOptions::new().threads(1)).unwrap();
        let four = search_database(&a, &q, &db, SearchOptions::new().threads(4)).unwrap();
        assert_eq!(one.hits, four.hits, "thread count must not change results");
        assert_eq!(one.subjects, 60);
        assert_eq!(four.threads_used, 4);
    }

    #[test]
    fn planted_similar_subject_ranks_first() {
        let mut rng = seeded_rng(60);
        let q = named_query(&mut rng, 120);
        let mut seqs = swissprot_like_db(61, 40).sequences().to_vec();
        let planted = PairSpec::new(Level::Hi, Level::Hi)
            .generate(&mut rng, &q)
            .subject;
        let planted_id = planted.id().to_string();
        seqs.push(planted);
        let db = SeqDatabase::new(seqs);
        let report = search_database(
            &aligner(),
            &q,
            &db,
            SearchOptions::new().threads(2).top_n(5),
        )
        .unwrap();
        assert_eq!(report.hits.len(), 5);
        assert_eq!(
            db.id(report.hits[0].db_index),
            planted_id,
            "planted hit must win"
        );
        assert!(report.hits[0].score > report.hits[1].score);
    }

    #[test]
    fn top_n_zero_keeps_everything() {
        let mut rng = seeded_rng(70);
        let q = named_query(&mut rng, 50);
        let db = swissprot_like_db(71, 25);
        let report = search_database(&aligner(), &q, &db, SearchOptions::new()).unwrap();
        assert_eq!(report.hits.len(), 25);
        // Sorted by score descending.
        for w in report.hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn scores_match_direct_alignment() {
        let mut rng = seeded_rng(80);
        let q = named_query(&mut rng, 64);
        let db = swissprot_like_db(81, 10);
        let a = aligner();
        let report = search_database(&a, &q, &db, SearchOptions::new().threads(3)).unwrap();
        for hit in &report.hits {
            let direct = a.align(&q, db.get(hit.db_index)).unwrap();
            assert_eq!(hit.score, direct.score, "{}", db.id(hit.db_index));
        }
    }

    #[test]
    fn empty_query_propagates_error() {
        let q = Sequence::protein("e", b"").unwrap();
        let db = swissprot_like_db(91, 5);
        let err = search_database(&aligner(), &q, &db, SearchOptions::new()).unwrap_err();
        assert_eq!(err, AlignError::EmptyQuery);
    }

    #[test]
    fn empty_database_gives_empty_report() {
        let mut rng = seeded_rng(100);
        let q = named_query(&mut rng, 30);
        let db = SeqDatabase::default();
        let report = search_database(&aligner(), &q, &db, SearchOptions::new()).unwrap();
        assert!(report.hits.is_empty());
        assert_eq!(report.subjects, 0);
    }

    #[test]
    fn options_builder_round_trips() {
        let token = CancelToken::new();
        let opts = SearchOptions::new()
            .threads(8)
            .top_n(20)
            .shard(4)
            .cancel(token)
            .on_progress(|_| {})
            .trace(true)
            .rescue(false)
            .deadline(std::time::Duration::from_millis(250));
        assert_eq!(opts.threads, 8);
        assert_eq!(opts.top_n, 20);
        assert_eq!(opts.shard, 4);
        assert!(opts.cancel.is_some());
        assert!(opts.progress.is_some());
        assert!(opts.trace);
        assert!(!opts.rescue);
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(250)));
        let dbg = format!("{opts:?}");
        assert!(dbg.contains("threads: 8"), "{dbg}");
        assert!(dbg.contains("rescue: false"), "{dbg}");
        // Rescue is on unless explicitly turned off.
        assert!(SearchOptions::new().rescue);
        assert_eq!(SearchOptions::new().deadline, None);
    }
}

#[cfg(test)]
mod inter_tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
    use aalign_core::{AlignConfig, AlignKind, GapModel, Strategy};

    #[test]
    fn inter_search_equals_intra_search() {
        let mut rng = seeded_rng(600);
        let q = named_query(&mut rng, 70);
        let db = swissprot_like_db(601, 50);
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            let cfg = AlignConfig::new(kind, GapModel::affine(-10, -2), &BLOSUM62);
            let intra = search_database(
                &Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid),
                &q,
                &db,
                SearchOptions::new().threads(2),
            )
            .unwrap();
            let inter =
                search_database_inter(&cfg, &q, &db, SearchOptions::new().threads(2)).unwrap();
            assert_eq!(intra.hits, inter.hits, "{:?}", kind);
        }
    }

    #[test]
    fn inter_search_empty_db() {
        let mut rng = seeded_rng(602);
        let q = named_query(&mut rng, 30);
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let report =
            search_database_inter(&cfg, &q, &SeqDatabase::default(), SearchOptions::new()).unwrap();
        assert!(report.hits.is_empty());
    }

    #[test]
    fn inter_search_rejects_alphabet_mismatch() {
        let q = Sequence::dna("d", b"ACGT").unwrap();
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let db = swissprot_like_db(603, 4);
        let err = search_database_inter(&cfg, &q, &db, SearchOptions::new()).unwrap_err();
        assert!(matches!(err, AlignError::AlphabetMismatch { .. }));
    }
}
