//! Observability for the search engine: cancellation tokens,
//! progress reporting, and per-query metrics.
//!
//! Everything here is engine-produced, caller-consumed: the sweep
//! stamps stage wall times, aggregates the kernels' [`RunStats`]
//! across workers, and records per-worker load so dynamic-binding
//! balance (paper Sec. V-E) is visible per query instead of only in
//! offline benchmarks.

use std::sync::Arc;
use std::time::Duration;

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc as SyncArc;

use aalign_core::RunStats;
use aalign_obs::Histogram;

/// Cooperative cancellation handle for an in-flight search.
///
/// Clone it, hand one clone to [`SearchOptions::cancel`] and keep the
/// other; calling [`cancel`](CancelToken::cancel) from any thread
/// makes every worker stop at its next work-item boundary, and the
/// query returns [`AlignError::Cancelled`].
///
/// [`SearchOptions::cancel`]: crate::SearchOptions::cancel
/// [`AlignError::Cancelled`]: aalign_core::AlignError::Cancelled
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: SyncArc<AtomicBool>,
}

impl CancelToken {
    /// Fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token; idempotent.
    pub fn cancel(&self) {
        // ORDER: Release — the canceller's writes before cancel()
        // (e.g. recording *why* it cancelled) must be visible to any
        // worker whose Acquire load observes the flag, so the
        // cancellation handoff carries a happens-before edge (the loom
        // cancel suite checks the protocol shape exhaustively).
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    ///
    /// A `true` return additionally orders the canceller's preceding
    /// writes before everything after this call.
    pub fn is_cancelled(&self) -> bool {
        // ORDER: Acquire — pairs with the Release store in cancel();
        // a worker that observes the flag also observes the
        // canceller's preceding writes before it abandons the sweep.
        self.flag.load(Ordering::Acquire)
    }
}

/// Snapshot delivered to a progress callback after each completed
/// work shard. Callbacks run on worker threads, so they must be
/// `Send + Sync` and should be cheap.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SearchProgress {
    /// Subjects fully scored so far (across all workers).
    pub subjects_done: usize,
    /// Total subjects in this query's sweep.
    pub subjects_total: usize,
    /// Residues of the completed subjects.
    pub residues_done: usize,
}

impl SearchProgress {
    /// Completed fraction in `[0, 1]` (1 for an empty sweep).
    pub fn fraction(&self) -> f64 {
        if self.subjects_total == 0 {
            1.0
        } else {
            self.subjects_done as f64 / self.subjects_total as f64
        }
    }
}

/// Shared progress callback (see [`SearchProgress`]).
pub type ProgressFn = Arc<dyn Fn(&SearchProgress) + Send + Sync>;

/// Per-worker accounting for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkerMetrics {
    /// Stable pool-local worker id (0-based). Ids never exceed the
    /// pool size: a reused engine serves every query with the same
    /// threads.
    pub worker_id: usize,
    /// Queries this worker thread has served over its lifetime —
    /// equal across workers and increasing per query exactly when the
    /// pool is being reused rather than respawned.
    pub queries_on_worker: u64,
    /// Subjects this worker scored in this query.
    pub subjects: usize,
    /// Residues this worker scored in this query.
    pub residues: usize,
    /// Wall time this worker spent inside the sweep.
    pub busy: Duration,
    /// Bytes of alignment scratch the worker holds after the query
    /// (stops growing once warm — the zero-allocation-reuse signal).
    pub scratch_bytes: usize,
}

/// Per-shard outcome accounting for one query routed through a shard
/// supervisor (`aalign-shard`). All-zero (the [`Default`]) for
/// single-process searches; a supervisor stamps it on the merged
/// report so degraded answers are distinguishable from complete ones
/// without diffing hit lists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardOutcome {
    /// Shards that answered this query (possibly after a retry).
    pub ok: u64,
    /// Shards that produced no answer — crashed and exhausted the
    /// retry, or already circuit-broken. Each failed shard also
    /// contributes an `AlignError::ShardLost` naming its uncovered
    /// range.
    pub failed: u64,
    /// Shards whose request was re-sent once on a respawned child.
    /// A retried shard still counts under `ok` or `failed`.
    pub retried: u64,
    /// Shards (a subset of `failed`) that missed the query deadline
    /// rather than dying.
    pub timed_out: u64,
}

impl ShardOutcome {
    /// Shards this query was fanned out to.
    pub fn total(&self) -> u64 {
        self.ok + self.failed
    }

    /// True when no supervisor touched this report (the default).
    pub fn is_unsharded(&self) -> bool {
        *self == ShardOutcome::default()
    }
}

/// Per-query metrics attached to every [`SearchReport`] /
/// [`PipelineReport`].
///
/// [`SearchReport`]: crate::SearchReport
/// [`PipelineReport`]: crate::PipelineReport
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SearchMetrics {
    /// Profile construction ([`Aligner::prepare`]) wall time.
    ///
    /// [`Aligner::prepare`]: aalign_core::Aligner::prepare
    pub prepare: Duration,
    /// Multithreaded sweep wall time.
    pub sweep: Duration,
    /// Result merge + rank wall time.
    pub merge: Duration,
    /// End-to-end wall time of the query.
    pub total: Duration,
    /// Dynamic-programming cells computed (`query_len × residues`).
    pub cells: u64,
    /// Billions of cell updates per second over the sweep stage.
    pub gcups: f64,
    /// Kernel counters aggregated across every alignment of the sweep
    /// (lazy iters/sweeps, iterate/scan column mix, hybrid switches).
    pub kernel_stats: RunStats,
    /// Total i16→i32 width escalations taken during the sweep.
    pub width_retries: u64,
    /// Subjects whose fixed-width kernel run saturated and were
    /// transparently re-aligned at a wider element width (see
    /// [`SearchOptions::rescue`]).
    ///
    /// [`SearchOptions::rescue`]: crate::SearchOptions::rescue
    pub rescued: u64,
    /// Histogram of the element widths (in bits) that saturated and
    /// triggered a rescue — one sample per rescue attempt, keyed by
    /// the width that overflowed, so `8` dominating means the 8-bit
    /// lane budget is too tight for this database.
    pub rescue_widths: Histogram,
    /// Narrowest lane width (in bits) a saturation certificate proved
    /// rescue-free for this query against every subject in the
    /// database, or `0` when the engine's aligner has no covering
    /// certificate installed (see `aalign_core::certify`). Non-zero
    /// means the rescue ladder is provably idle at that width —
    /// `rescued` must be 0 whenever the sweep ran at it.
    pub certified_width: u32,
    /// Other requests that coalesced onto this query's prepared
    /// profile instead of running their own sweep. Always `0` for
    /// direct engine calls; a serving dispatcher
    /// (`aalign-serve`) stamps the follower count here before fanning
    /// the shared report out, so batching is observable per response.
    pub coalesced: u64,
    /// Worker threads the engine has respawned over its lifetime
    /// after a death mid-job (pool self-healing). Zero on a healthy
    /// engine.
    pub workers_respawned: u64,
    /// Shard-supervisor outcome accounting for this query. All-zero
    /// for single-process searches; stamped by `aalign-shard` on
    /// merged reports (`shards_ok/failed/retried/timed_out` on the
    /// wire).
    pub shards: ShardOutcome,
    /// Peak number of hits buffered across all workers — bounded by
    /// `workers × top_n` when `top_n > 0` (streaming top-k), `O(db)`
    /// only when every hit was requested.
    pub peak_hits_buffered: usize,
    /// Log2 histogram (nanoseconds) of time this request spent in a
    /// serving dispatcher's bounded admission queue before the sweep
    /// started. Always empty for direct engine calls; `aalign-serve`
    /// stamps the leader's wait here before fanning the report out.
    pub queue_wait: Histogram,
    /// Log2 histogram (nanoseconds) of time coalesced follower
    /// requests spent waiting on this query's sweep. Always empty
    /// for direct engine calls; stamped by a serving dispatcher.
    pub batch_wait: Histogram,
    /// Log2 histogram (nanoseconds) of dispatcher-side end-to-end
    /// request latency (admission through report publication).
    /// Always empty for direct engine calls; stamped by a serving
    /// dispatcher.
    pub request_e2e: Histogram,
    /// Log2 histogram of per-work-item sweep latency in nanoseconds
    /// (one sample per subject on the intra sweep, per batch on the
    /// inter sweep), merged across workers.
    pub latency: Histogram,
    /// Log2 histogram of per-worker residue load: one sample per
    /// participating worker. A tight spread is the dynamic-binding
    /// balance signal (paper Sec. V-E) made visible per query.
    pub worker_load: Histogram,
    /// One entry per participating worker, ordered by `worker_id`.
    pub per_worker: Vec<WorkerMetrics>,
}

impl SearchMetrics {
    /// Number of workers that participated in the sweep.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Billions of DP cell updates per second, guarded: an empty
    /// database (`cells == 0`) or a zero/degenerate elapsed time
    /// yields `0.0` — never NaN or infinity.
    pub fn derive_gcups(cells: u64, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if cells == 0 || secs <= 0.0 || !secs.is_finite() {
            return 0.0;
        }
        cells as f64 / secs / 1e9
    }

    /// Render a compact multi-line summary (the CLI's `--stats`
    /// block).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let _ = writeln!(
            s,
            "stats: prepare {:.2}ms  sweep {:.2}ms  merge {:.2}ms  total {:.2}ms  {:.2} GCUPS",
            ms(self.prepare),
            ms(self.sweep),
            ms(self.merge),
            ms(self.total),
            self.gcups,
        );
        let k = &self.kernel_stats;
        let _ = writeln!(
            s,
            "kernel: {} iterate / {} scan columns, {} switches, \
             {} lazy iters, {} lazy sweeps, {} width retries, {} rescued, peak {} hits buffered",
            k.iterate_columns,
            k.scan_columns,
            k.switches_to_scan,
            k.lazy_iters,
            k.lazy_sweeps,
            self.width_retries,
            self.rescued,
            self.peak_hits_buffered,
        );
        if self.certified_width > 0 {
            let _ = writeln!(
                s,
                "certified: i{} proven rescue-free for this query/database",
                self.certified_width
            );
        }
        if self.workers_respawned > 0 {
            let _ = writeln!(s, "pool: {} workers respawned", self.workers_respawned);
        }
        if self.coalesced > 0 {
            let _ = writeln!(
                s,
                "batching: {} request(s) coalesced onto this query profile",
                self.coalesced
            );
        }
        if !self.shards.is_unsharded() {
            let _ = writeln!(
                s,
                "shards: {} ok, {} failed ({} timed out), {} retried",
                self.shards.ok, self.shards.failed, self.shards.timed_out, self.shards.retried,
            );
        }
        if !self.latency.is_empty() {
            let us = |ns: u64| ns as f64 / 1e3;
            let _ = writeln!(
                s,
                "latency: p50 {:.1}µs  p90 {:.1}µs  p99 {:.1}µs  max {:.1}µs  ({} work items)",
                us(self.latency.quantile(0.50)),
                us(self.latency.quantile(0.90)),
                us(self.latency.quantile(0.99)),
                us(self.latency.max_value()),
                self.latency.count(),
            );
        }
        for w in &self.per_worker {
            let _ = writeln!(
                s,
                "worker {:>3}: {:>7} subjects  {:>10} residues  busy {:>8.2}ms  \
                 scratch {:>8} B  (query #{} on this thread)",
                w.worker_id,
                w.subjects,
                w.residues,
                ms(w.busy),
                w.scratch_bytes,
                w.queries_on_worker,
            );
        }
        s
    }

    /// Render as a single versioned JSON object (durations in
    /// microseconds, histograms with lossless bucket detail).
    /// Machine-readable counterpart of
    /// [`summary`](SearchMetrics::summary); the CLI's
    /// `--metrics-format json`. This is exactly
    /// [`wire::metrics_to_wire`](crate::wire::metrics_to_wire)
    /// rendered — the same document the `aalign-serve` front ends
    /// return — and it decodes back via
    /// [`wire::metrics_from_wire`](crate::wire::metrics_from_wire).
    pub fn to_json(&self) -> String {
        crate::wire::metrics_to_wire(self).render()
    }

    /// Render in the Prometheus text exposition format (gauges for
    /// the scalar counters, cumulative `_bucket` series for the
    /// histograms). The CLI's `--metrics-format prom`.
    pub fn to_prometheus(&self) -> String {
        fn gauge_into(s: &mut String, name: &str, help: &str, value: f64) {
            use std::fmt::Write as _;
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} gauge");
            let _ = writeln!(s, "{name} {value}");
        }
        let mut s = String::new();
        let mut gauge = |name: &str, help: &str, value: f64| gauge_into(&mut s, name, help, value);
        gauge(
            "aalign_prepare_seconds",
            "Query profile construction wall time.",
            self.prepare.as_secs_f64(),
        );
        gauge(
            "aalign_sweep_seconds",
            "Multithreaded sweep wall time.",
            self.sweep.as_secs_f64(),
        );
        gauge(
            "aalign_merge_seconds",
            "Result merge and rank wall time.",
            self.merge.as_secs_f64(),
        );
        gauge(
            "aalign_total_seconds",
            "End-to-end query wall time.",
            self.total.as_secs_f64(),
        );
        gauge(
            "aalign_cells_total",
            "Dynamic-programming cells computed.",
            self.cells as f64,
        );
        gauge(
            "aalign_gcups",
            "Billions of cell updates per second over the sweep.",
            self.gcups,
        );
        let k = &self.kernel_stats;
        gauge(
            "aalign_kernel_iterate_columns_total",
            "Columns processed by striped-iterate.",
            k.iterate_columns as f64,
        );
        gauge(
            "aalign_kernel_scan_columns_total",
            "Columns processed by striped-scan.",
            k.scan_columns as f64,
        );
        gauge(
            "aalign_kernel_switches_to_scan_total",
            "Hybrid iterate-to-scan switches.",
            k.switches_to_scan as f64,
        );
        gauge(
            "aalign_kernel_probes_stayed_total",
            "Hybrid probes that stayed in iterate.",
            k.probes_stayed as f64,
        );
        gauge(
            "aalign_kernel_lazy_sweeps_total",
            "Lazy-loop whole-column sweeps.",
            k.lazy_sweeps as f64,
        );
        gauge(
            "aalign_width_retries_total",
            "i16-to-i32 width escalations.",
            self.width_retries as f64,
        );
        gauge(
            "aalign_rescued_total",
            "Subjects re-aligned at a wider width after lane saturation.",
            self.rescued as f64,
        );
        gauge(
            "aalign_certified_width_bits",
            "Narrowest lane width proven rescue-free (0 = no certificate).",
            self.certified_width as f64,
        );
        gauge(
            "aalign_coalesced_total",
            "Requests coalesced onto this query's prepared profile.",
            self.coalesced as f64,
        );
        gauge(
            "aalign_workers_respawned_total",
            "Worker threads respawned after dying mid-job.",
            self.workers_respawned as f64,
        );
        gauge(
            "aalign_peak_hits_buffered",
            "Peak hits buffered across workers.",
            self.peak_hits_buffered as f64,
        );
        gauge(
            "aalign_shards_ok",
            "Shards that answered this query (0 = unsharded).",
            self.shards.ok as f64,
        );
        gauge(
            "aalign_shards_failed",
            "Shards that produced no answer for this query.",
            self.shards.failed as f64,
        );
        gauge(
            "aalign_shards_retried",
            "Shards retried once on a respawned child.",
            self.shards.retried as f64,
        );
        gauge(
            "aalign_shards_timed_out",
            "Failed shards that missed the query deadline.",
            self.shards.timed_out as f64,
        );
        s.push_str(
            &self
                .queue_wait
                .prom_lines("aalign_queue_wait_seconds", 1e-9),
        );
        s.push_str(
            &self
                .batch_wait
                .prom_lines("aalign_batch_wait_seconds", 1e-9),
        );
        s.push_str(
            &self
                .request_e2e
                .prom_lines("aalign_request_e2e_seconds", 1e-9),
        );
        s.push_str(&self.latency.prom_lines("aalign_work_item_seconds", 1e-9));
        s.push_str(
            &self
                .worker_load
                .prom_lines("aalign_worker_load_residues", 1.0),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share one flag");
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn progress_fraction_handles_empty_sweep() {
        let p = SearchProgress {
            subjects_done: 0,
            subjects_total: 0,
            residues_done: 0,
        };
        assert_eq!(p.fraction(), 1.0);
        let p = SearchProgress {
            subjects_done: 25,
            subjects_total: 100,
            residues_done: 9000,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shard_outcome_summary_line_is_conditional() {
        let quiet = SearchMetrics::default().summary();
        assert!(!quiet.contains("shards:"), "{quiet}");
        let m = populated();
        let s = m.summary();
        assert!(
            s.contains("shards: 3 ok, 1 failed (0 timed out), 1 retried"),
            "{s}"
        );
        assert_eq!(m.shards.total(), 4);
        assert!(!m.shards.is_unsharded());
        assert!(SearchMetrics::default().shards.is_unsharded());
    }

    #[test]
    fn summary_mentions_every_stage() {
        let m = SearchMetrics {
            per_worker: vec![WorkerMetrics::default()],
            ..SearchMetrics::default()
        };
        let s = m.summary();
        for needle in ["prepare", "sweep", "merge", "GCUPS", "worker"] {
            assert!(s.contains(needle), "{needle} missing from {s}");
        }
    }

    #[test]
    fn derive_gcups_is_guarded_against_degenerate_inputs() {
        // Empty database: zero cells regardless of elapsed time.
        assert_eq!(SearchMetrics::derive_gcups(0, Duration::from_secs(1)), 0.0);
        // Sub-resolution sweep: zero elapsed must not divide.
        assert_eq!(SearchMetrics::derive_gcups(1_000_000, Duration::ZERO), 0.0);
        assert_eq!(SearchMetrics::derive_gcups(0, Duration::ZERO), 0.0);
        // The honest case: 2e9 cells over 2 seconds is 1 GCUPS.
        let g = SearchMetrics::derive_gcups(2_000_000_000, Duration::from_secs(2));
        assert!((g - 1.0).abs() < 1e-12, "{g}");
        assert!(g.is_finite());
    }

    fn populated() -> SearchMetrics {
        let mut m = SearchMetrics {
            prepare: Duration::from_micros(120),
            sweep: Duration::from_millis(3),
            merge: Duration::from_micros(45),
            total: Duration::from_millis(4),
            cells: 1_000_000,
            certified_width: 8,
            shards: ShardOutcome {
                ok: 3,
                failed: 1,
                retried: 1,
                timed_out: 0,
            },
            per_worker: vec![
                WorkerMetrics {
                    worker_id: 0,
                    queries_on_worker: 1,
                    subjects: 7,
                    residues: 2100,
                    busy: Duration::from_millis(2),
                    scratch_bytes: 4096,
                },
                WorkerMetrics {
                    worker_id: 1,
                    queries_on_worker: 1,
                    subjects: 5,
                    residues: 1500,
                    busy: Duration::from_millis(2),
                    scratch_bytes: 4096,
                },
            ],
            ..SearchMetrics::default()
        };
        m.gcups = SearchMetrics::derive_gcups(m.cells, m.sweep);
        for ns in [900, 1_800, 3_600, 250_000] {
            m.latency.record(ns);
        }
        m.worker_load.record(2100);
        m.worker_load.record(1500);
        m
    }

    #[test]
    fn json_export_is_wellformed_and_finite() {
        let j = populated().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        for key in [
            "\"schema_version\"",
            "\"coalesced\"",
            "\"prepare_us\"",
            "\"sweep_us\"",
            "\"merge_us\"",
            "\"total_us\"",
            "\"cells\"",
            "\"gcups\"",
            "\"kernel\"",
            "\"rescued\"",
            "\"rescue_width_bits\"",
            "\"certified_width\"",
            "\"workers_respawned\"",
            "\"shards\"",
            "\"timed_out\"",
            "\"queue_wait_ns\"",
            "\"batch_wait_ns\"",
            "\"request_e2e_ns\"",
            "\"latency_ns\"",
            "\"worker_load_residues\"",
            "\"workers\"",
        ] {
            assert!(j.contains(key), "{key} missing from {j}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"), "{j}");
        // Two worker objects, comma-separated.
        assert_eq!(j.matches("\"id\":").count(), 2);
    }

    #[test]
    fn prometheus_export_has_gauges_and_histograms() {
        let p = populated().to_prometheus();
        for series in [
            "aalign_sweep_seconds",
            "aalign_gcups",
            "aalign_rescued_total",
            "aalign_certified_width_bits 8",
            "aalign_coalesced_total",
            "aalign_workers_respawned_total",
            "aalign_shards_ok 3",
            "aalign_shards_failed 1",
            "aalign_shards_retried 1",
            "aalign_shards_timed_out 0",
            "aalign_kernel_iterate_columns_total",
            "aalign_work_item_seconds_bucket",
            "aalign_work_item_seconds_count 4",
            "aalign_worker_load_residues_count 2",
            "aalign_queue_wait_seconds_count",
            "aalign_batch_wait_seconds_count",
            "aalign_request_e2e_seconds_count",
            "le=\"+Inf\"",
        ] {
            assert!(p.contains(series), "{series} missing from:\n{p}");
        }
        // Every exposed family is typed.
        assert!(p.contains("# TYPE aalign_work_item_seconds histogram"));
    }
}
