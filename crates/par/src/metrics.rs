//! Observability for the search engine: cancellation tokens,
//! progress reporting, and per-query metrics.
//!
//! Everything here is engine-produced, caller-consumed: the sweep
//! stamps stage wall times, aggregates the kernels' [`RunStats`]
//! across workers, and records per-worker load so dynamic-binding
//! balance (paper Sec. V-E) is visible per query instead of only in
//! offline benchmarks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aalign_core::RunStats;

/// Cooperative cancellation handle for an in-flight search.
///
/// Clone it, hand one clone to [`SearchOptions::cancel`] and keep the
/// other; calling [`cancel`](CancelToken::cancel) from any thread
/// makes every worker stop at its next work-item boundary, and the
/// query returns [`AlignError::Cancelled`].
///
/// [`SearchOptions::cancel`]: crate::SearchOptions::cancel
/// [`AlignError::Cancelled`]: aalign_core::AlignError::Cancelled
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Snapshot delivered to a progress callback after each completed
/// work shard. Callbacks run on worker threads, so they must be
/// `Send + Sync` and should be cheap.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SearchProgress {
    /// Subjects fully scored so far (across all workers).
    pub subjects_done: usize,
    /// Total subjects in this query's sweep.
    pub subjects_total: usize,
    /// Residues of the completed subjects.
    pub residues_done: usize,
}

impl SearchProgress {
    /// Completed fraction in `[0, 1]` (1 for an empty sweep).
    pub fn fraction(&self) -> f64 {
        if self.subjects_total == 0 {
            1.0
        } else {
            self.subjects_done as f64 / self.subjects_total as f64
        }
    }
}

/// Shared progress callback (see [`SearchProgress`]).
pub type ProgressFn = Arc<dyn Fn(&SearchProgress) + Send + Sync>;

/// Per-worker accounting for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct WorkerMetrics {
    /// Stable pool-local worker id (0-based). Ids never exceed the
    /// pool size: a reused engine serves every query with the same
    /// threads.
    pub worker_id: usize,
    /// Queries this worker thread has served over its lifetime —
    /// equal across workers and increasing per query exactly when the
    /// pool is being reused rather than respawned.
    pub queries_on_worker: u64,
    /// Subjects this worker scored in this query.
    pub subjects: usize,
    /// Residues this worker scored in this query.
    pub residues: usize,
    /// Wall time this worker spent inside the sweep.
    pub busy: Duration,
    /// Bytes of alignment scratch the worker holds after the query
    /// (stops growing once warm — the zero-allocation-reuse signal).
    pub scratch_bytes: usize,
}

/// Per-query metrics attached to every [`SearchReport`] /
/// [`PipelineReport`].
///
/// [`SearchReport`]: crate::SearchReport
/// [`PipelineReport`]: crate::PipelineReport
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SearchMetrics {
    /// Profile construction ([`Aligner::prepare`]) wall time.
    ///
    /// [`Aligner::prepare`]: aalign_core::Aligner::prepare
    pub prepare: Duration,
    /// Multithreaded sweep wall time.
    pub sweep: Duration,
    /// Result merge + rank wall time.
    pub merge: Duration,
    /// End-to-end wall time of the query.
    pub total: Duration,
    /// Dynamic-programming cells computed (`query_len × residues`).
    pub cells: u64,
    /// Billions of cell updates per second over the sweep stage.
    pub gcups: f64,
    /// Kernel counters aggregated across every alignment of the sweep
    /// (lazy iters/sweeps, iterate/scan column mix, hybrid switches).
    pub kernel_stats: RunStats,
    /// Total i16→i32 width escalations taken during the sweep.
    pub width_retries: u64,
    /// Peak number of hits buffered across all workers — bounded by
    /// `workers × top_n` when `top_n > 0` (streaming top-k), `O(db)`
    /// only when every hit was requested.
    pub peak_hits_buffered: usize,
    /// One entry per participating worker, ordered by `worker_id`.
    pub per_worker: Vec<WorkerMetrics>,
}

impl SearchMetrics {
    /// Number of workers that participated in the sweep.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Render a compact multi-line summary (the CLI's `--stats`
    /// block).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let _ = writeln!(
            s,
            "stats: prepare {:.2}ms  sweep {:.2}ms  merge {:.2}ms  total {:.2}ms  {:.2} GCUPS",
            ms(self.prepare),
            ms(self.sweep),
            ms(self.merge),
            ms(self.total),
            self.gcups,
        );
        let k = &self.kernel_stats;
        let _ = writeln!(
            s,
            "kernel: {} iterate / {} scan columns, {} switches, \
             {} lazy iters, {} lazy sweeps, {} width retries, peak {} hits buffered",
            k.iterate_columns,
            k.scan_columns,
            k.switches_to_scan,
            k.lazy_iters,
            k.lazy_sweeps,
            self.width_retries,
            self.peak_hits_buffered,
        );
        for w in &self.per_worker {
            let _ = writeln!(
                s,
                "worker {:>3}: {:>7} subjects  {:>10} residues  busy {:>8.2}ms  \
                 scratch {:>8} B  (query #{} on this thread)",
                w.worker_id,
                w.subjects,
                w.residues,
                ms(w.busy),
                w.scratch_bytes,
                w.queries_on_worker,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share one flag");
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn progress_fraction_handles_empty_sweep() {
        let p = SearchProgress {
            subjects_done: 0,
            subjects_total: 0,
            residues_done: 0,
        };
        assert_eq!(p.fraction(), 1.0);
        let p = SearchProgress {
            subjects_done: 25,
            subjects_total: 100,
            residues_done: 9000,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_every_stage() {
        let m = SearchMetrics {
            per_worker: vec![WorkerMetrics::default()],
            ..SearchMetrics::default()
        };
        let s = m.summary();
        for needle in ["prepare", "sweep", "merge", "GCUPS", "worker"] {
            assert!(s.contains(needle), "{needle} missing from {s}");
        }
    }
}
