//! Deterministic fault injection for the search engine
//! (`fault-inject` feature, default off).
//!
//! A [`FaultPlan`] scripts where the sweep misbehaves — a panic while
//! scoring a given slot, a forced lane saturation, a scheduling
//! stall, a worker-thread kill — so the recovery paths (panic
//! isolation, overflow rescue, deadline partial results, pool
//! self-healing) are exercised by ordinary `cargo test` runs instead
//! of waiting for production entropy. Plans are plain data: the same
//! plan replays the same faults on every run, which is what makes
//! the fault tests deterministic.
//!
//! Nothing in this module is compiled into release builds unless the
//! feature is explicitly enabled, and even then a query without a
//! plan attached pays only an `Option` check per slot.

use std::fmt;
use std::time::Duration;

use crate::sync::atomic::{AtomicBool, Ordering};

/// A scripted set of faults for one search call.
///
/// Attach with [`SearchOptions::fault_plan`]; build fluently or parse
/// from the CLI's compact `--fault-plan` spec:
///
/// ```
/// use aalign_par::FaultPlan;
/// let plan = FaultPlan::parse("panic@3,saturate@5,stall@2:50ms,kill@1").unwrap();
/// assert!(format!("{plan:?}").contains("panic_slots"));
/// ```
///
/// [`SearchOptions::fault_plan`]: crate::SearchOptions::fault_plan
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Sweep slots whose scoring closure panics.
    panic_slots: Vec<usize>,
    /// Sweep slots whose kernel result is forced to report lane
    /// saturation (driving the rescue ladder without needing a
    /// genuinely overflowing subject).
    saturate_slots: Vec<usize>,
    /// Sleep `pause` before scoring `slot` — lets tests widen race
    /// windows (deadline expiry mid-sweep) deterministically.
    stall: Option<(usize, Duration)>,
    /// Kill the worker occupying this pool slot: the fault unwinds
    /// *outside* the job-boundary catch, so the thread genuinely dies
    /// and the supervisor's disconnect path runs.
    kill_worker: Option<usize>,
    /// One-shot arm for `kill_worker` — the kill fires on the first
    /// job the victim receives, then never again, so the respawned
    /// worker survives.
    kill_armed: AtomicBool,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        Self {
            panic_slots: self.panic_slots.clone(),
            saturate_slots: self.saturate_slots.clone(),
            stall: self.stall,
            kill_worker: self.kill_worker,
            // ORDER: Relaxed — test-only trigger state; the flag
            // carries no other data, it only decides whether the
            // scripted kill still fires.
            kill_armed: AtomicBool::new(self.kill_armed.load(Ordering::Relaxed)),
        }
    }
}

impl FaultPlan {
    /// Empty plan: injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic while scoring sweep slot `slot`.
    pub fn panic_on_slot(mut self, slot: usize) -> Self {
        self.panic_slots.push(slot);
        self
    }

    /// Force the kernel result for sweep slot `slot` to report lane
    /// saturation.
    pub fn saturate_slot(mut self, slot: usize) -> Self {
        self.saturate_slots.push(slot);
        self
    }

    /// Sleep `pause` before scoring sweep slot `slot`.
    pub fn stall_slot(mut self, slot: usize, pause: Duration) -> Self {
        self.stall = Some((slot, pause));
        self
    }

    /// Kill the worker thread occupying pool slot `worker` on its
    /// first job (one-shot).
    pub fn kill_worker(mut self, worker: usize) -> Self {
        self.kill_worker = Some(worker);
        // ORDER: Relaxed — builder runs before the plan is shared.
        self.kill_armed.store(true, Ordering::Relaxed);
        self
    }

    /// Derive a reproducible plan from a seed: picks a panic slot and
    /// a saturate slot out of `slots` via splitmix64. Same seed, same
    /// plan — the harness's property-style entry point.
    pub fn seeded(seed: u64, slots: usize) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut state = seed;
        let n = slots.max(1) as u64;
        let panic_at = (splitmix64(&mut state) % n) as usize;
        let mut saturate_at = (splitmix64(&mut state) % n) as usize;
        if saturate_at == panic_at && slots > 1 {
            saturate_at = (saturate_at + 1) % slots;
        }
        Self::new()
            .panic_on_slot(panic_at)
            .saturate_slot(saturate_at)
    }

    /// Parse the CLI spec: comma-separated directives out of
    /// `panic@N`, `saturate@N`, `stall@N:DURms`, `kill@N`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (verb, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault directive `{part}` is missing `@`"))?;
            match verb {
                "panic" => plan = plan.panic_on_slot(parse_index(rest, part)?),
                "saturate" => plan = plan.saturate_slot(parse_index(rest, part)?),
                "kill" => plan = plan.kill_worker(parse_index(rest, part)?),
                "stall" => {
                    let (slot, dur) = rest.split_once(':').ok_or_else(|| {
                        format!("stall directive `{part}` needs `stall@SLOT:MILLISms`")
                    })?;
                    let ms: u64 = dur
                        .strip_suffix("ms")
                        .ok_or_else(|| format!("stall duration `{dur}` must end in `ms`"))?
                        .parse()
                        .map_err(|_| format!("stall duration `{dur}` is not a number"))?;
                    plan = plan.stall_slot(parse_index(slot, part)?, Duration::from_millis(ms));
                }
                other => return Err(format!("unknown fault verb `{other}` in `{part}`")),
            }
        }
        Ok(plan)
    }

    /// Should scoring this sweep slot panic?
    pub(crate) fn should_panic(&self, slot: usize) -> bool {
        self.panic_slots.contains(&slot)
    }

    /// Should this sweep slot's kernel result be forced saturated?
    pub(crate) fn should_saturate(&self, slot: usize) -> bool {
        self.saturate_slots.contains(&slot)
    }

    /// Pause to inject before scoring this sweep slot, if any.
    pub(crate) fn stall_for(&self, slot: usize) -> Option<Duration> {
        match self.stall {
            Some((s, pause)) if s == slot => Some(pause),
            _ => None,
        }
    }

    /// Kill hook, called by the worker *outside* its job-boundary
    /// catch: panics (killing the thread) at most once, on the
    /// matching pool slot.
    pub(crate) fn maybe_kill(&self, worker_slot: usize) {
        if self.kill_worker == Some(worker_slot)
            // ORDER: Relaxed — one-shot test trigger; the swap's
            // atomicity (not its ordering) guarantees a single fire.
            && self.kill_armed.swap(false, Ordering::Relaxed)
        {
            panic!("fault-inject: killing worker {worker_slot}");
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        parts.extend(self.panic_slots.iter().map(|s| format!("panic@{s}")));
        parts.extend(self.saturate_slots.iter().map(|s| format!("saturate@{s}")));
        if let Some((slot, pause)) = self.stall {
            parts.push(format!("stall@{slot}:{}ms", pause.as_millis()));
        }
        if let Some(w) = self.kill_worker {
            parts.push(format!("kill@{w}"));
        }
        f.write_str(&parts.join(","))
    }
}

fn parse_index(s: &str, ctx: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("fault directive `{ctx}`: `{s}` is not a slot index"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let spec = "panic@3,saturate@5,stall@2:50ms,kill@1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_string(), spec);
        assert!(plan.should_panic(3) && !plan.should_panic(4));
        assert!(plan.should_saturate(5) && !plan.should_saturate(3));
        assert_eq!(plan.stall_for(2), Some(Duration::from_millis(50)));
        assert_eq!(plan.stall_for(3), None);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["panic", "panic@x", "stall@1", "stall@1:50", "explode@2"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must not parse");
        }
        // Empty spec and stray commas are fine: an empty plan.
        let empty = FaultPlan::parse(" , ").unwrap();
        assert!(!empty.should_panic(0));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(42, 100);
        let b = FaultPlan::seeded(42, 100);
        assert_eq!(a.to_string(), b.to_string(), "same seed, same plan");
        let c = FaultPlan::seeded(43, 100);
        // Different seeds usually differ; at minimum both stay valid.
        assert!(c.panic_slots[0] < 100 && c.saturate_slots[0] < 100);
        assert_ne!(
            a.panic_slots[0], a.saturate_slots[0],
            "seeded faults target distinct slots"
        );
    }

    #[test]
    fn kill_fires_exactly_once_and_clones_rearm_independently() {
        let plan = FaultPlan::new().kill_worker(2);
        plan.maybe_kill(0); // wrong slot: no fire, stays armed
        let clone = plan.clone(); // snapshot of the armed state
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.maybe_kill(2)));
        assert!(hit.is_err(), "armed kill on the right slot must fire");
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.maybe_kill(2)));
        assert!(again.is_ok(), "kill is one-shot");
        let fresh = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clone.maybe_kill(2)));
        assert!(fresh.is_err(), "the clone carries its own armed flag");
    }
}
