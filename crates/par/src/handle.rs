//! Engine-sharing façade: a cheaply clonable, thread-safe handle to
//! one [`SearchEngine`].
//!
//! The CLI, the batch pipeline, and the `aalign-serve` dispatcher all
//! construct their engine through this one type, so there is a single
//! code path from "requested thread count" to "running pool" — the
//! per-call-site plumbing the one-shot helpers used to duplicate.
//!
//! [`EngineHandle`] is `Clone + Send + Sync` (an `Arc` around the
//! engine, which is itself `Sync`), so a server can hand one clone to
//! every connection thread while they all share the same worker pool,
//! scratch buffers, and lifetime counters. It derefs to
//! [`SearchEngine`], so every engine method is available directly:
//!
//! ```
//! use aalign_par::{EngineHandle, SearchOptions};
//! use aalign_core::{AlignConfig, Aligner, GapModel};
//! use aalign_bio::matrices::BLOSUM62;
//! use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
//!
//! let engine = EngineHandle::new(2);
//! let worker = engine.clone(); // shares the same pool
//! let mut rng = seeded_rng(1);
//! let query = named_query(&mut rng, 40);
//! let db = swissprot_like_db(2, 8);
//! let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
//! let report = worker.search(&aligner, &query, &db, &SearchOptions::new()).unwrap();
//! assert_eq!(report.hits.len(), 8);
//! ```

use std::ops::Deref;
use std::sync::Arc;

use crate::engine::{resolve_threads, SearchEngine, INTER_BATCH};

/// Clonable, `Send + Sync` handle to a shared [`SearchEngine`].
///
/// All clones drive the same worker pool; the pool shuts down when
/// the last clone drops. See the [module docs](self) for the sharing
/// model.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    inner: Arc<SearchEngine>,
}

impl EngineHandle {
    /// Spin up a pool of `threads` workers (0 = available
    /// parallelism) and wrap it in a shared handle.
    pub fn new(threads: usize) -> Self {
        Self::from(SearchEngine::new(resolve_threads(threads)))
    }

    /// Handle sized for a single run over `work_items` work items:
    /// `threads` is resolved (0 = available parallelism) and then
    /// capped at `work_items`, so a one-shot search over a tiny
    /// database never spawns idle workers. This is the construction
    /// path the one-shot helpers ([`search_database`],
    /// [`search_pipeline`], …) and the CLI share.
    ///
    /// [`search_database`]: crate::search_database
    /// [`search_pipeline`]: crate::search_pipeline
    pub fn transient(threads: usize, work_items: usize) -> Self {
        Self::from(SearchEngine::new(
            resolve_threads(threads).min(work_items.max(1)),
        ))
    }

    /// Handle sized for a one-shot *inter-sequence* sweep over a
    /// database of `subjects`: work items are the engine's 16-subject
    /// lane batches, so the pool is capped at the batch count rather
    /// than the subject count.
    pub fn transient_inter(threads: usize, subjects: usize) -> Self {
        Self::transient(threads, subjects.div_ceil(INTER_BATCH))
    }

    /// Borrow the underlying engine (equivalent to deref).
    pub fn engine(&self) -> &SearchEngine {
        &self.inner
    }
}

impl From<SearchEngine> for EngineHandle {
    fn from(engine: SearchEngine) -> Self {
        Self {
            inner: Arc::new(engine),
        }
    }
}

impl Deref for EngineHandle {
    type Target = SearchEngine;

    fn deref(&self) -> &SearchEngine {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_send_sync_and_clonable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<EngineHandle>();
    }

    #[test]
    fn transient_caps_pool_at_work_items() {
        assert_eq!(EngineHandle::transient(8, 3).threads(), 3);
        assert_eq!(EngineHandle::transient(2, 100).threads(), 2);
        // Empty work still gets one worker (errors must surface).
        assert_eq!(EngineHandle::transient(4, 0).threads(), 1);
        // Inter mode counts lane batches, not subjects.
        assert_eq!(
            EngineHandle::transient_inter(8, INTER_BATCH * 2).threads(),
            2
        );
    }

    #[test]
    fn clones_share_one_pool() {
        let a = EngineHandle::new(2);
        let b = a.clone();
        assert!(std::ptr::eq(a.engine(), b.engine()));
    }
}
