//! The engine's concurrency protocol kernel, model-checked by loom.
//!
//! Everything that makes the multithreaded sweep *correct* — the
//! sharded dynamic work binding, the cross-worker progress counters,
//! and the per-worker trace-batch publication — lives here as three
//! small types built on `crate::sync`. The engine composes them in
//! `run_sweep_worker`; the loom suites (`tests/loom_*.rs`, run with
//! `RUSTFLAGS="--cfg loom" cargo test -p aalign-par`) compose them
//! the same way and exhaustively explore the interleavings, checking:
//!
//! * **work-index claim** — every slot is claimed exactly once: no
//!   subject scored twice, none skipped, under any schedule;
//! * **cancellation handoff** — a cancelled sweep never publishes a
//!   partial shard, and a worker that observes cancellation also
//!   observes the canceller's preceding writes;
//! * **progress monotonicity** — per-worker published totals are
//!   strictly increasing and the final totals are exact;
//! * **batch contiguity** — one worker's shard batch is never
//!   interleaved with another's in the published stream.
//!
//! Each atomic operation carries an `// ORDER:` justification; the
//! `aalign-analyzer concurrency` pass enforces the convention and
//! pins the full atomics inventory to a checked-in baseline.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};

/// The paper's dynamic work binding (Sec. V-E): a single atomic
/// cursor over the length-sorted work list, pulled in shards.
///
/// Claims partition `0..total` exactly: for any interleaving of
/// concurrent claimers, every slot is handed out once and only once
/// (the loom work-index suite checks this exhaustively).
#[derive(Debug, Default)]
pub struct WorkIndex {
    next: AtomicUsize,
}

impl WorkIndex {
    /// Fresh index with no slots claimed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim the next `shard` slots of `0..total`. Returns the
    /// half-open claimed range, or `None` once the list is exhausted.
    ///
    /// `shard == 0` is treated as 1 — a zero-width claim would spin
    /// forever without advancing the cursor.
    pub fn claim(&self, shard: usize, total: usize) -> Option<(usize, usize)> {
        // ORDER: Relaxed — a pure ticket counter. The claimed range
        // is derived from the returned value alone; no other memory
        // is read through this atomic, and the sweep's results are
        // synchronized by the pool's join, not by this counter.
        let start = self.next.fetch_add(shard.max(1), Ordering::Relaxed);
        (start < total).then(|| (start, (start + shard.max(1)).min(total)))
    }
}

/// Cross-worker completion counters for one sweep: subjects and
/// residues finished so far. Workers publish at shard boundaries;
/// the returned totals drive progress callbacks.
#[derive(Debug, Default)]
pub struct ProgressCounters {
    subjects: AtomicUsize,
    residues: AtomicUsize,
}

impl ProgressCounters {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one shard's completed `(subjects, residues)` and return
    /// the sweep-wide totals *including* this shard.
    ///
    /// Each worker's successive returns are strictly increasing (its
    /// own contribution is part of the total), and the set of
    /// returned subject totals across all workers is exactly the set
    /// of prefix sums — the loom progress suite checks both. The two
    /// counters are updated by separate atomics, so a concurrently
    /// published pair may transiently disagree; only the final
    /// (post-join) totals are exact together.
    pub fn publish(&self, subjects: usize, residues: usize) -> (usize, usize) {
        // ORDER: Relaxed — counting only. The returned totals derive
        // from the fetch_add return values on the calling thread; no
        // payload is read through these atomics.
        let done = self.subjects.fetch_add(subjects, Ordering::Relaxed) + subjects;
        // ORDER: Relaxed — same as above.
        let residues_done = self.residues.fetch_add(residues, Ordering::Relaxed) + residues;
        (done, residues_done)
    }

    /// Current `(subjects, residues)` totals. Exact once every worker
    /// has been joined; a mid-sweep read may lag in-flight shards.
    pub fn snapshot(&self) -> (usize, usize) {
        // ORDER: Relaxed — a monitoring read; exactness is only
        // claimed after the pool join, which synchronizes the final
        // values.
        let subjects = self.subjects.load(Ordering::Relaxed);
        // ORDER: Relaxed — same as above.
        let residues = self.residues.load(Ordering::Relaxed);
        (subjects, residues)
    }
}

/// The rendezvous between per-worker batch buffers and the one
/// consumer that drains the sweep's combined stream: an
/// `Arc<Mutex<Vec<T>>>` whose writers move whole batches in under a
/// single lock acquisition.
///
/// That single-acquisition discipline is the contiguity invariant the
/// trace-timeline reconstruction relies on: one worker's per-subject
/// batch is never interleaved with another's (the loom publication
/// suite checks it exhaustively).
pub struct SharedBatch<T> {
    inner: Arc<Mutex<Vec<T>>>,
}

impl<T> Default for SharedBatch<T> {
    fn default() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl<T> Clone for SharedBatch<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for SharedBatch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBatch").finish_non_exhaustive()
    }
}

impl<T> SharedBatch<T> {
    /// Fresh, empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one item (single-item batch; coordinator-side framing).
    pub fn push(&self, item: T) {
        self.inner.lock().expect("shared batch lock").push(item);
    }

    /// Move a worker's buffered batch in under one lock acquisition,
    /// draining `batch` so its allocation is reused for the next
    /// shard. An empty batch takes no lock.
    pub fn publish(&self, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        self.inner.lock().expect("shared batch lock").append(batch);
    }

    /// Items published so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("shared batch lock").len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain everything published so far, in arrival order.
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *self.inner.lock().expect("shared batch lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_partition_the_slot_range() {
        let idx = WorkIndex::new();
        let mut seen = Vec::new();
        while let Some((s, e)) = idx.claim(3, 8) {
            assert!(s < e && e <= 8);
            seen.extend(s..e);
        }
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(idx.claim(3, 8), None, "exhausted stays exhausted");
    }

    #[test]
    fn zero_shard_is_clamped_to_one() {
        let idx = WorkIndex::new();
        assert_eq!(idx.claim(0, 2), Some((0, 1)));
        assert_eq!(idx.claim(0, 2), Some((1, 2)));
        assert_eq!(idx.claim(0, 2), None);
    }

    #[test]
    fn oversized_shard_is_clamped_to_total() {
        let idx = WorkIndex::new();
        assert_eq!(idx.claim(100, 4), Some((0, 4)));
        assert_eq!(idx.claim(100, 4), None);
    }

    #[test]
    fn progress_publish_accumulates_and_snapshot_agrees() {
        let ctr = ProgressCounters::new();
        assert_eq!(ctr.publish(2, 300), (2, 300));
        assert_eq!(ctr.publish(1, 50), (3, 350));
        assert_eq!(ctr.snapshot(), (3, 350));
    }

    #[test]
    fn shared_batch_publish_drains_and_preserves_order() {
        let stream = SharedBatch::new();
        let clone = stream.clone();
        let mut batch = vec![1, 2];
        clone.publish(&mut batch);
        assert!(batch.is_empty(), "publish surrenders the batch");
        stream.push(3);
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.drain(), vec![1, 2, 3]);
        assert!(stream.is_empty());
    }
}
