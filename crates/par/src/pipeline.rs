//! A complete homology-search pipeline — the application the paper's
//! introduction motivates, assembled from the workspace's pieces.
//!
//! Stages:
//!
//! 1. **Score sweep** — every subject scored with the SIMD kernels,
//!    multithreaded: the hybrid intra-sequence kernels by default,
//!    or the inter-sequence engine when explicitly enabled via
//!    [`PipelineOptions::inter_threshold`].
//! 2. **Statistics** — bit scores and E-values (Karlin–Altschul) for
//!    the survivors of an E-value cutoff.
//! 3. **Traceback** — full alignments (rows + CIGAR) for the top
//!    hits only, the expensive part amortized over a handful of
//!    subjects.

use aalign_bio::stats::{bit_score, evalue, KarlinParams};
use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::traceback::{traceback_align, Alignment};
use aalign_core::{AlignConfig, AlignError, Aligner, Strategy};

use crate::search::{search_database, search_database_inter, SearchOptions};

/// Pipeline tuning.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Keep hits with E-value at or below this cutoff.
    pub max_evalue: f64,
    /// Reconstruct alignments for at most this many top hits.
    pub traceback_top: usize,
    /// Statistics parameters (λ, K) for bit scores / E-values.
    pub stats: KarlinParams,
    /// Mean subject length below which the inter-sequence engine is
    /// used for the sweep. Defaults to 0 (always intra): with the
    /// current scalar-gather inter kernel, intra is faster at every
    /// length (see the `ablation_inter` bench); raise this if you
    /// swap in a SIMD-gather inter engine.
    pub inter_threshold: f64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            max_evalue: 10.0,
            traceback_top: 5,
            stats: aalign_bio::stats::BLOSUM62_GAPPED_11_1,
            inter_threshold: 0.0,
        }
    }
}

/// One significant hit.
#[derive(Debug, Clone)]
pub struct PipelineHit {
    /// Database index of the subject.
    pub db_index: usize,
    /// Subject id.
    pub id: String,
    /// Raw alignment score.
    pub score: i32,
    /// Normalized bit score.
    pub bits: f64,
    /// Expectation value against this database.
    pub evalue: f64,
    /// Full alignment (top hits only).
    pub alignment: Option<Alignment>,
}

/// Pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Significant hits, best first.
    pub hits: Vec<PipelineHit>,
    /// Subjects scored in stage 1.
    pub subjects_scored: usize,
    /// Which sweep engine stage 1 used (`"inter"` / `"intra"`).
    pub sweep_mode: &'static str,
}

/// Run the full pipeline.
pub fn search_pipeline(
    cfg: &AlignConfig,
    query: &Sequence,
    db: &SeqDatabase,
    opts: PipelineOptions,
) -> Result<PipelineReport, AlignError> {
    // Stage 1: sweep.
    let search_opts = SearchOptions {
        threads: opts.threads,
        top_n: 0,
    };
    let (report, sweep_mode) = if !db.is_empty() && db.stats().mean_len < opts.inter_threshold {
        (search_database_inter(cfg, query, db, search_opts)?, "inter")
    } else {
        let aligner = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
        (search_database(&aligner, query, db, search_opts)?, "intra")
    };

    // Stage 2: statistics + cutoff.
    let db_residues: usize = report.total_residues;
    let mut hits: Vec<PipelineHit> = report
        .hits
        .into_iter()
        .filter_map(|h| {
            let bits = bit_score(h.score, opts.stats);
            let ev = evalue(bits, query.len(), db_residues.max(1));
            (ev <= opts.max_evalue).then_some(PipelineHit {
                db_index: h.db_index,
                id: h.id,
                score: h.score,
                bits,
                evalue: ev,
                alignment: None,
            })
        })
        .collect();

    // Stage 3: traceback for the top hits.
    for hit in hits.iter_mut().take(opts.traceback_top) {
        hit.alignment = Some(traceback_align(cfg, query, db.get(hit.db_index)));
    }

    Ok(PipelineReport {
        hits,
        subjects_scored: report.subjects,
        sweep_mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{
        named_query, random_protein, seeded_rng, swissprot_like_db, Level, PairSpec,
    };
    use aalign_core::GapModel;

    fn cfg() -> AlignConfig {
        AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62)
    }

    #[test]
    fn finds_planted_homolog_with_significant_evalue() {
        let mut rng = seeded_rng(777);
        let q = named_query(&mut rng, 150);
        let mut seqs = swissprot_like_db(778, 120).sequences().to_vec();
        let planted = PairSpec::new(Level::Hi, Level::Hi)
            .generate(&mut rng, &q)
            .subject;
        let planted_id = planted.id().to_string();
        seqs.push(planted);
        let db = SeqDatabase::new(seqs);

        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions {
                max_evalue: 1e-3,
                traceback_top: 2,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.sweep_mode, "intra");
        assert!(!report.hits.is_empty());
        assert_eq!(report.hits[0].id, planted_id);
        assert!(report.hits[0].evalue < 1e-10);
        let aln = report.hits[0].alignment.as_ref().unwrap();
        assert_eq!(aln.score, report.hits[0].score);
        assert!(!aln.cigar().is_empty());
        // Noise must not pass a strict cutoff.
        for h in &report.hits {
            assert!(h.evalue <= 1e-3);
        }
    }

    #[test]
    fn short_subject_database_takes_the_inter_path() {
        let mut rng = seeded_rng(779);
        let q = named_query(&mut rng, 60);
        let db = SeqDatabase::new(
            (0..64)
                .map(|i| random_protein(&mut rng, format!("s{i}"), 40 + i % 20))
                .collect(),
        );
        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions {
                max_evalue: 1e6, // keep everything; we compare scores
                traceback_top: 0,
                inter_threshold: 200.0, // opt in to the inter sweep
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.sweep_mode, "inter");
        assert_eq!(report.hits.len(), 64);
        // Scores identical to the intra path.
        let intra =
            crate::search::search_database(&Aligner::new(cfg()), &q, &db, SearchOptions::default())
                .unwrap();
        for (a, b) in report.hits.iter().zip(&intra.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.db_index, b.db_index);
        }
    }

    #[test]
    fn empty_database_yields_empty_report() {
        let mut rng = seeded_rng(780);
        let q = named_query(&mut rng, 30);
        let report = search_pipeline(
            &cfg(),
            &q,
            &SeqDatabase::default(),
            PipelineOptions::default(),
        )
        .unwrap();
        assert!(report.hits.is_empty());
        assert_eq!(report.subjects_scored, 0);
    }

    #[test]
    fn traceback_limit_is_respected() {
        let mut rng = seeded_rng(781);
        let q = named_query(&mut rng, 100);
        let mut seqs = Vec::new();
        for _ in 0..6 {
            seqs.push(
                PairSpec::new(Level::Md, Level::Hi)
                    .generate(&mut rng, &q)
                    .subject,
            );
        }
        let db = SeqDatabase::new(seqs);
        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions {
                max_evalue: 1e9,
                traceback_top: 3,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        let with_aln = report.hits.iter().filter(|h| h.alignment.is_some()).count();
        assert_eq!(with_aln, 3);
    }
}
