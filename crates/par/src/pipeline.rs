//! A complete homology-search pipeline — the application the paper's
//! introduction motivates, assembled from the workspace's pieces.
//!
//! Stages:
//!
//! 1. **Score sweep** — every subject scored with the SIMD kernels,
//!    multithreaded: the hybrid intra-sequence kernels by default,
//!    or the inter-sequence engine when explicitly enabled via
//!    [`PipelineOptions::inter_threshold`].
//! 2. **Statistics** — bit scores and E-values (Karlin–Altschul) for
//!    the survivors of an E-value cutoff.
//! 3. **Traceback** — full alignments (rows + CIGAR) for the top
//!    hits only, the expensive part amortized over a handful of
//!    subjects.
//!
//! Like the raw sweep, the pipeline runs on a [`SearchEngine`]: hold
//! one and call [`SearchEngine::pipeline`] to serve many queries from
//! the same worker pool; [`search_pipeline`] is the one-shot wrapper.

use aalign_bio::stats::{bit_score, evalue, KarlinParams};
use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::traceback::{traceback_align, Alignment};
use aalign_core::{AlignConfig, AlignError, Aligner, Strategy};

use crate::engine::SearchEngine;
use crate::handle::EngineHandle;
use crate::metrics::{CancelToken, ProgressFn, SearchMetrics, SearchProgress};
use crate::search::SearchOptions;

/// Pipeline tuning, built fluently
/// (`PipelineOptions::new().threads(4).max_evalue(1e-3)`).
///
/// `#[non_exhaustive]`: construct through [`PipelineOptions::new`].
#[derive(Clone)]
#[non_exhaustive]
pub struct PipelineOptions {
    /// Worker threads for the one-shot wrapper (0 = available
    /// parallelism); a persistent [`SearchEngine`] uses its pool.
    pub threads: usize,
    /// Keep hits with E-value at or below this cutoff.
    pub max_evalue: f64,
    /// Reconstruct alignments for at most this many top hits.
    pub traceback_top: usize,
    /// Statistics parameters (λ, K) for bit scores / E-values.
    pub stats: KarlinParams,
    /// Mean subject length below which the inter-sequence engine is
    /// used for the sweep. Defaults to 0 (always intra): with the
    /// current scalar-gather inter kernel, intra is faster at every
    /// length (see the `ablation_inter` bench); raise this if you
    /// swap in a SIMD-gather inter engine.
    pub inter_threshold: f64,
    /// Wall-clock budget for the stage-1 sweep (see
    /// [`SearchOptions::deadline`]); on expiry the pipeline report
    /// comes back [`partial`](PipelineReport::partial) with the
    /// completed subjects' statistics.
    pub deadline: Option<std::time::Duration>,
    /// Cooperative cancellation, honored in every stage.
    pub cancel: Option<CancelToken>,
    /// Sweep progress callback (runs on worker threads).
    pub progress: Option<ProgressFn>,
    /// Collect a structured trace of the stage-1 sweep (see
    /// [`SearchOptions::trace`]); events surface on
    /// [`PipelineReport::trace_events`].
    pub trace: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            max_evalue: 10.0,
            traceback_top: 5,
            stats: aalign_bio::stats::BLOSUM62_GAPPED_11_1,
            inter_threshold: 0.0,
            deadline: None,
            cancel: None,
            progress: None,
            trace: false,
        }
    }
}

impl PipelineOptions {
    /// Default pipeline options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker thread count (0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Keep hits with E-value at or below `cutoff`.
    pub fn max_evalue(mut self, cutoff: f64) -> Self {
        self.max_evalue = cutoff;
        self
    }

    /// Reconstruct alignments for at most `n` top hits.
    pub fn traceback_top(mut self, n: usize) -> Self {
        self.traceback_top = n;
        self
    }

    /// Set the Karlin–Altschul statistics parameters.
    pub fn stats(mut self, stats: KarlinParams) -> Self {
        self.stats = stats;
        self
    }

    /// Use the inter-sequence sweep below this mean subject length.
    pub fn inter_threshold(mut self, mean_len: f64) -> Self {
        self.inter_threshold = mean_len;
        self
    }

    /// Give the stage-1 sweep a wall-clock budget.
    pub fn deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attach a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a sweep progress callback (runs on worker threads).
    pub fn on_progress(
        mut self,
        callback: impl Fn(&SearchProgress) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(std::sync::Arc::new(callback));
        self
    }

    /// Collect a structured trace of the stage-1 sweep.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }
}

impl std::fmt::Debug for PipelineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineOptions")
            .field("threads", &self.threads)
            .field("max_evalue", &self.max_evalue)
            .field("traceback_top", &self.traceback_top)
            .field("inter_threshold", &self.inter_threshold)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel.is_some())
            .field("progress", &self.progress.is_some())
            .field("trace", &self.trace)
            .finish()
    }
}

/// One significant hit.
#[derive(Debug, Clone)]
pub struct PipelineHit {
    /// Database index of the subject.
    pub db_index: usize,
    /// Subject id (resolved once per surviving hit, after the sweep —
    /// the sweep itself allocates no ids).
    pub id: String,
    /// Raw alignment score.
    pub score: i32,
    /// Normalized bit score.
    pub bits: f64,
    /// Expectation value against this database.
    pub evalue: f64,
    /// Full alignment (top hits only).
    pub alignment: Option<Alignment>,
}

/// Pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Significant hits, best first.
    pub hits: Vec<PipelineHit>,
    /// Subjects scored in stage 1.
    pub subjects_scored: usize,
    /// Which sweep engine stage 1 used (`"inter"` / `"intra"`).
    pub sweep_mode: &'static str,
    /// Stage-1 sweep metrics (times, GCUPS, kernel counters,
    /// per-worker load).
    pub metrics: SearchMetrics,
    /// The stage-1 sweep's structured trace when
    /// [`PipelineOptions::trace`] was set (empty otherwise).
    pub trace_events: Vec<aalign_obs::TraceEvent>,
    /// True when the stage-1 sweep did not cover the whole database
    /// (deadline expiry, per-subject panic, or a lost worker); the
    /// hits and statistics describe the subjects that completed.
    pub partial: bool,
    /// The survivable failures behind a partial sweep (see
    /// [`SearchReport::errors`](crate::SearchReport::errors)).
    pub errors: Vec<AlignError>,
}

impl SearchEngine {
    /// Run the full three-stage pipeline on this engine's pool.
    pub fn pipeline(
        &self,
        cfg: &AlignConfig,
        query: &Sequence,
        db: &SeqDatabase,
        opts: &PipelineOptions,
    ) -> Result<PipelineReport, AlignError> {
        // Stage 1: sweep.
        let mut search_opts = SearchOptions::new();
        search_opts.cancel = opts.cancel.clone();
        search_opts.progress = opts.progress.clone();
        search_opts.trace = opts.trace;
        search_opts.deadline = opts.deadline;
        let (report, sweep_mode) = if !db.is_empty() && db.stats().mean_len < opts.inter_threshold {
            (self.search_inter(cfg, query, db, &search_opts)?, "inter")
        } else {
            let aligner = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
            (self.search(&aligner, query, db, &search_opts)?, "intra")
        };
        let trace_events = report.trace_events;

        let cancelled = || -> Result<(), AlignError> {
            match &opts.cancel {
                Some(token) if token.is_cancelled() => Err(AlignError::Cancelled),
                _ => Ok(()),
            }
        };

        // Stage 2: statistics + cutoff.
        cancelled()?;
        let db_residues: usize = report.total_residues;
        let mut hits: Vec<PipelineHit> = report
            .hits
            .into_iter()
            .filter_map(|h| {
                let bits = bit_score(h.score, opts.stats);
                let ev = evalue(bits, query.len(), db_residues.max(1));
                (ev <= opts.max_evalue).then(|| PipelineHit {
                    db_index: h.db_index,
                    id: db.id(h.db_index).to_string(),
                    score: h.score,
                    bits,
                    evalue: ev,
                    alignment: None,
                })
            })
            .collect();

        // Stage 3: traceback for the top hits.
        for hit in hits.iter_mut().take(opts.traceback_top) {
            cancelled()?;
            hit.alignment = Some(traceback_align(cfg, query, db.get(hit.db_index)));
        }

        Ok(PipelineReport {
            hits,
            subjects_scored: report.subjects,
            sweep_mode,
            metrics: report.metrics,
            trace_events,
            partial: report.partial,
            errors: report.errors,
        })
    }
}

/// Run the full pipeline on a transient engine (one-shot wrapper over
/// [`SearchEngine::pipeline`]).
pub fn search_pipeline(
    cfg: &AlignConfig,
    query: &Sequence,
    db: &SeqDatabase,
    opts: PipelineOptions,
) -> Result<PipelineReport, AlignError> {
    EngineHandle::transient(opts.threads, db.len()).pipeline(cfg, query, db, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{
        named_query, random_protein, seeded_rng, swissprot_like_db, Level, PairSpec,
    };
    use aalign_core::GapModel;

    fn cfg() -> AlignConfig {
        AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62)
    }

    #[test]
    fn finds_planted_homolog_with_significant_evalue() {
        let mut rng = seeded_rng(777);
        let q = named_query(&mut rng, 150);
        let mut seqs = swissprot_like_db(778, 120).sequences().to_vec();
        let planted = PairSpec::new(Level::Hi, Level::Hi)
            .generate(&mut rng, &q)
            .subject;
        let planted_id = planted.id().to_string();
        seqs.push(planted);
        let db = SeqDatabase::new(seqs);

        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions::new().max_evalue(1e-3).traceback_top(2),
        )
        .unwrap();
        assert_eq!(report.sweep_mode, "intra");
        assert!(!report.hits.is_empty());
        assert_eq!(report.hits[0].id, planted_id);
        assert!(report.hits[0].evalue < 1e-10);
        let aln = report.hits[0].alignment.as_ref().unwrap();
        assert_eq!(aln.score, report.hits[0].score);
        assert!(!aln.cigar().is_empty());
        // Noise must not pass a strict cutoff.
        for h in &report.hits {
            assert!(h.evalue <= 1e-3);
        }
        // Sweep metrics ride along on the pipeline report.
        assert!(report.metrics.gcups > 0.0);
        assert!(!report.metrics.per_worker.is_empty());
    }

    #[test]
    fn short_subject_database_takes_the_inter_path() {
        let mut rng = seeded_rng(779);
        let q = named_query(&mut rng, 60);
        let db = SeqDatabase::new(
            (0..64)
                .map(|i| random_protein(&mut rng, format!("s{i}"), 40 + i % 20))
                .collect(),
        );
        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions::new()
                .max_evalue(1e6) // keep everything; we compare scores
                .traceback_top(0)
                .inter_threshold(200.0), // opt in to the inter sweep
        )
        .unwrap();
        assert_eq!(report.sweep_mode, "inter");
        assert_eq!(report.hits.len(), 64);
        // Scores identical to the intra path.
        let intra = crate::search::search_database(
            &Aligner::new(cfg()),
            &q,
            &db,
            crate::search::SearchOptions::new(),
        )
        .unwrap();
        for (a, b) in report.hits.iter().zip(&intra.hits) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.db_index, b.db_index);
        }
    }

    #[test]
    fn empty_database_yields_empty_report() {
        let mut rng = seeded_rng(780);
        let q = named_query(&mut rng, 30);
        let report =
            search_pipeline(&cfg(), &q, &SeqDatabase::default(), PipelineOptions::new()).unwrap();
        assert!(report.hits.is_empty());
        assert_eq!(report.subjects_scored, 0);
    }

    #[test]
    fn traceback_limit_is_respected() {
        let mut rng = seeded_rng(781);
        let q = named_query(&mut rng, 100);
        let mut seqs = Vec::new();
        for _ in 0..6 {
            seqs.push(
                PairSpec::new(Level::Md, Level::Hi)
                    .generate(&mut rng, &q)
                    .subject,
            );
        }
        let db = SeqDatabase::new(seqs);
        let report = search_pipeline(
            &cfg(),
            &q,
            &db,
            PipelineOptions::new().max_evalue(1e9).traceback_top(3),
        )
        .unwrap();
        let with_aln = report.hits.iter().filter(|h| h.alignment.is_some()).count();
        assert_eq!(with_aln, 3);
    }

    #[test]
    fn cancelled_token_aborts_the_pipeline() {
        let mut rng = seeded_rng(782);
        let q = named_query(&mut rng, 60);
        let db = swissprot_like_db(783, 20);
        let token = CancelToken::new();
        token.cancel();
        let err =
            search_pipeline(&cfg(), &q, &db, PipelineOptions::new().cancel(token)).unwrap_err();
        assert_eq!(err, AlignError::Cancelled);
    }

    #[test]
    fn engine_pipeline_reuses_the_pool() {
        let mut rng = seeded_rng(784);
        let db = swissprot_like_db(785, 25);
        let engine = SearchEngine::new(2);
        for n in 1..=2u64 {
            let q = named_query(&mut rng, 80);
            let report = engine
                .pipeline(&cfg(), &q, &db, &PipelineOptions::new().max_evalue(1e9))
                .unwrap();
            assert_eq!(report.subjects_scored, 25);
            for w in &report.metrics.per_worker {
                assert_eq!(w.queries_on_worker, n);
            }
        }
        assert_eq!(engine.queries_served(), 2);
    }
}
