//! # aalign-par — multi-threaded database search
//!
//! The paper's Sec. V-E driver: to align one query against a whole
//! database, sort the database by sequence length (descending), build
//! the query profile **once**, share it read-only across threads, and
//! let each thread dynamically pull the next unprocessed subject —
//! an atomic work index, so long subjects never straggle at the end
//! of a static partition.
//!
//! The driver lives in a persistent [`SearchEngine`]: a worker pool
//! spawned once and fed per-query, so back-to-back queries pay zero
//! thread or scratch setup. Each worker keeps its own
//! `AlignScratch`, streams its hits through a bounded top-k heap
//! (`O(workers × top_n)` memory instead of `O(db)`), and reports
//! [`WorkerMetrics`] so the dynamic-binding balance is visible per
//! query. Sweeps honor a [`CancelToken`] and an optional progress
//! callback, and every report carries [`SearchMetrics`].
//!
//! One-shot helpers ([`search_database`], [`search_database_inter`],
//! [`search_pipeline`]) are thin wrappers that build a transient
//! engine; results are identical either way.

pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod metrics;
pub mod pipeline;
pub mod protocol;
pub mod search;
pub(crate) mod sync;

pub use engine::SearchEngine;
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use metrics::{CancelToken, ProgressFn, SearchMetrics, SearchProgress, WorkerMetrics};
pub use pipeline::{search_pipeline, PipelineHit, PipelineOptions, PipelineReport};
pub use search::{search_database, search_database_inter, Hit, SearchOptions, SearchReport};
