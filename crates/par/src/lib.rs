//! # aalign-par — multi-threaded database search
//!
//! The paper's Sec. V-E driver: to align one query against a whole
//! database, sort the database by sequence length (descending), build
//! the query profile **once**, share it read-only across threads, and
//! let each thread dynamically pull the next unprocessed subject —
//! an atomic work index, so long subjects never straggle at the end
//! of a static partition.

pub mod pipeline;
pub mod search;

pub use pipeline::{search_pipeline, PipelineHit, PipelineOptions, PipelineReport};
pub use search::{search_database, search_database_inter, Hit, SearchOptions, SearchReport};
