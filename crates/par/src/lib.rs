//! # aalign-par — multi-threaded database search
//!
//! The paper's Sec. V-E driver: to align one query against a whole
//! database, sort the database by sequence length (descending), build
//! the query profile **once**, share it read-only across threads, and
//! let each thread dynamically pull the next unprocessed subject —
//! an atomic work index, so long subjects never straggle at the end
//! of a static partition.
//!
//! The driver lives in a persistent [`SearchEngine`]: a worker pool
//! spawned once and fed per-query, so back-to-back queries pay zero
//! thread or scratch setup. Each worker keeps its own
//! `AlignScratch`, streams its hits through a bounded top-k heap
//! (`O(workers × top_n)` memory instead of `O(db)`), and reports
//! [`WorkerMetrics`] so the dynamic-binding balance is visible per
//! query. Sweeps honor a [`CancelToken`] and an optional progress
//! callback, and every report carries [`SearchMetrics`].
//!
//! One-shot helpers ([`search_database`], [`search_database_inter`],
//! [`search_pipeline`]) are thin wrappers that build a transient
//! engine through the shared [`EngineHandle`] construction path;
//! results are identical either way. Long-lived consumers (the CLI's
//! repeated queries, `aalign-serve`) hold an [`EngineHandle`] — a
//! `Clone + Send + Sync` `Arc` façade over the engine — so every
//! layer shares one pool through one code path.
//!
//! The [`wire`] module is the versioned JSON wire format for
//! [`Hit`], [`SearchMetrics`], [`SearchReport`], and
//! `AlignError` — the single representation shared by the CLI's
//! machine-readable output and the serve front ends.

pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod handle;
pub mod metrics;
pub mod pipeline;
pub mod protocol;
pub mod search;
pub(crate) mod sync;
pub mod wire;

pub use engine::{rank_hits, SearchEngine};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use handle::EngineHandle;
pub use metrics::{
    CancelToken, ProgressFn, SearchMetrics, SearchProgress, ShardOutcome, WorkerMetrics,
};
pub use pipeline::{search_pipeline, PipelineHit, PipelineOptions, PipelineReport};
pub use search::{search_database, search_database_inter, Hit, SearchOptions, SearchReport};
