//! # aalign-serve — alignment as a long-running service
//!
//! A daemon over the persistent search engine: load the database and
//! build the worker pool once, then answer queries over two front
//! ends that share one [`Dispatcher`]:
//!
//! - **HTTP/JSON** ([`http::serve_http`]) — hand-rolled HTTP/1.1
//!   over `std::net`, one thread per connection, no framework.
//! - **stdio JSON-RPC** ([`rpc::serve_stdio`]) — line-delimited
//!   JSON-RPC 2.0 for embedding under a supervisor or pipe.
//!
//! The dispatcher is where service semantics live, identically for
//! both transports:
//!
//! - **Cross-request batching** — concurrent requests with the same
//!   query and `top_n` coalesce onto one engine sweep; followers
//!   share the leader's report and the coalesced count lands in
//!   `SearchMetrics::coalesced`.
//! - **Admission control** — a bounded in-flight budget plus a
//!   bounded queue, tied to each request's deadline: over capacity
//!   means an immediate typed `overloaded` refusal, never an
//!   unbounded wait.
//! - **Cancellation and quotas** — requests carrying an `id` can be
//!   cancelled mid-flight; per-tenant in-flight quotas fence noisy
//!   neighbors.
//! - **Graceful drain** — shutdown completes in-flight requests and
//!   refuses new ones with a typed `draining` response.
//!
//! Failure is always a well-formed document: expired deadlines and
//! fault-injected worker kills produce `partial: true` reports in
//! the same versioned wire schema the CLI emits
//! (`aalign_par::wire`); refusals are typed [`ServeError`]
//! envelopes. The `fault-inject` feature forwards the engine's
//! deterministic chaos harness so kill/stall plans can be applied to
//! a live daemon under test.

pub mod daemon;
pub mod dispatch;
pub mod http;
pub mod rpc;
pub mod wire;

pub use daemon::{run_daemon, DaemonOptions, FrontEnd};
pub use dispatch::{Dispatcher, DispatcherConfig};
pub use wire::{SearchRequest, SearchResponse, ServeError};
