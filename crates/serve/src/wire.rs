//! Request/response wire types for the service: the schema the HTTP
//! and JSON-RPC front ends share.
//!
//! Requests decode through [`SearchRequest::from_wire`]; every
//! response — success or failure — is a versioned document
//! (`"schema_version": 1`). Success responses embed the standard
//! [`report_to_wire`] shape, so a server response body and the CLI's
//! partial-result objects are byte-compatible; failures are
//! [`ServeError`] envelopes with stable `code` strings.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use aalign_core::AlignError;
use aalign_obs::wire::{obj, JsonValue};
use aalign_par::wire::{error_code, error_to_wire, report_to_wire};
use aalign_par::SearchReport;

/// One search request, front-end agnostic.
///
/// JSON shape (only `query` is required):
///
/// ```json
/// {"query": "MKVLA…", "query_id": "q1", "top_n": 10,
///  "deadline_ms": 500, "tenant": "teamA", "id": "req-7",
///  "no_batch": false}
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SearchRequest {
    /// Caller-chosen request id; registers the request for
    /// cancellation (`cancel` with the same id) and is echoed on the
    /// response. Must be unique among in-flight requests.
    pub id: Option<String>,
    /// Tenant label for per-tenant in-flight quotas.
    pub tenant: Option<String>,
    /// Query sequence id (defaults to `"query"`; label only — it
    /// does not affect batching).
    pub query_id: String,
    /// Query residues (protein, one-letter code).
    pub query: String,
    /// Keep only the best `top_n` hits (0 = every hit).
    pub top_n: usize,
    /// Per-request wall-clock budget in milliseconds. Bounds both
    /// time queued under admission control and the engine sweep; on
    /// expiry the response is `partial: true`, never an error.
    pub deadline_ms: Option<u64>,
    /// Opt this request out of cross-request batching.
    pub no_batch: bool,
}

impl Default for SearchRequest {
    fn default() -> Self {
        Self {
            id: None,
            tenant: None,
            query_id: "query".to_string(),
            query: String::new(),
            top_n: 0,
            deadline_ms: None,
            no_batch: false,
        }
    }
}

impl SearchRequest {
    /// Request for `query` residues with defaults everywhere else.
    pub fn new(query: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            ..Self::default()
        }
    }

    /// Requested deadline as a [`Duration`].
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// Decode from a request document (strict: unknown fields are
    /// ignored, wrong types are errors).
    pub fn from_wire(v: &JsonValue) -> Result<Self, ServeError> {
        let bad = |msg: String| ServeError::BadRequest(msg);
        if v.as_object().is_none() {
            return Err(bad("request must be a JSON object".to_string()));
        }
        let query = v
            .get("query")
            .and_then(|q| q.as_str())
            .ok_or_else(|| bad("missing string field \"query\"".to_string()))?
            .to_string();
        let opt_str = |key: &str| -> Result<Option<String>, ServeError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(s) => s
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| bad(format!("field {key:?} must be a string"))),
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, ServeError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer"))),
            }
        };
        let opt_bool = |key: &str| -> Result<bool, ServeError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(false),
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| bad(format!("field {key:?} must be a boolean"))),
            }
        };
        Ok(Self {
            id: opt_str("id")?,
            tenant: opt_str("tenant")?,
            query_id: opt_str("query_id")?.unwrap_or_else(|| "query".to_string()),
            query,
            top_n: opt_u64("top_n")?.unwrap_or(0) as usize,
            deadline_ms: opt_u64("deadline_ms")?,
            no_batch: opt_bool("no_batch")?,
        })
    }

    /// Encode as a request document (the inverse of
    /// [`from_wire`](Self::from_wire); handy for clients and tests).
    pub fn to_wire(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![("query", self.query.as_str().into())];
        if self.query_id != "query" {
            fields.push(("query_id", self.query_id.as_str().into()));
        }
        if let Some(id) = &self.id {
            fields.push(("id", id.as_str().into()));
        }
        if let Some(t) = &self.tenant {
            fields.push(("tenant", t.as_str().into()));
        }
        if self.top_n > 0 {
            fields.push(("top_n", self.top_n.into()));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", ms.into()));
        }
        if self.no_batch {
            fields.push(("no_batch", true.into()));
        }
        obj(fields)
    }
}

/// A completed search: the shared report plus response metadata.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Echo of the request id, when one was given.
    pub id: Option<String>,
    /// Server-assigned trace id: the same id every stage event for
    /// this request carries in the flight recorder, so a response
    /// can be correlated with `GET /debug/flight` output.
    pub request_id: u64,
    /// True when this request coalesced onto another request's query
    /// profile instead of running its own sweep (the leader's
    /// response has `batched: false` but a nonzero
    /// `metrics.coalesced`).
    pub batched: bool,
    /// The search report — shared (`Arc`) across every coalesced
    /// response.
    pub report: Arc<SearchReport>,
}

impl SearchResponse {
    /// Versioned response document: the standard report shape
    /// ([`report_to_wire`]) with `id`, `request_id` (when nonzero),
    /// and `batched` spliced in after `schema_version`.
    pub fn to_wire(&self) -> JsonValue {
        let report = report_to_wire(&self.report);
        let JsonValue::Object(mut fields) = report else {
            unreachable!("report_to_wire returns an object");
        };
        let mut extra: Vec<(String, JsonValue)> = Vec::new();
        if let Some(id) = &self.id {
            extra.push(("id".to_string(), id.as_str().into()));
        }
        if self.request_id != 0 {
            extra.push(("request_id".to_string(), self.request_id.into()));
        }
        extra.push(("batched".to_string(), self.batched.into()));
        // schema_version stays first.
        fields.splice(1..1, extra);
        JsonValue::Object(fields)
    }
}

/// Why the service refused or failed a request. Every variant has a
/// stable wire `code` and an HTTP status; none of them is ever a bare
/// 500.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request document was malformed.
    BadRequest(String),
    /// Admission control refused the request: the in-flight budget
    /// and the bounded queue are both full, or a deadline-less
    /// request out-waited the dispatcher's admission budget. (A
    /// request whose *own* deadline expires while queued gets a
    /// `partial: true` report instead.)
    Overloaded {
        /// Requests currently running.
        inflight: usize,
        /// Requests currently queued for admission.
        queued: usize,
    },
    /// The daemon is draining: in-flight requests are completing, new
    /// ones are refused.
    Draining,
    /// The tenant's in-flight quota is already fully used.
    QuotaExhausted {
        /// The tenant that hit its quota.
        tenant: String,
        /// The configured per-tenant in-flight limit.
        quota: usize,
    },
    /// Unknown route / method / cancellation target.
    NotFound(String),
    /// The engine failed the query as a whole (empty query, alphabet
    /// mismatch, cancellation). Partial failures — deadline expiry,
    /// worker kills — are *not* errors: they come back as successful
    /// `partial: true` responses.
    Engine(AlignError),
}

impl ServeError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Draining => "draining",
            ServeError::QuotaExhausted { .. } => "quota_exhausted",
            ServeError::NotFound(_) => "not_found",
            ServeError::Engine(e) => error_code(e),
        }
    }

    /// HTTP status line for this error.
    pub fn http_status(&self) -> (u16, &'static str) {
        match self {
            ServeError::BadRequest(_) => (400, "Bad Request"),
            ServeError::Overloaded { .. } => (429, "Too Many Requests"),
            ServeError::Draining => (503, "Service Unavailable"),
            ServeError::QuotaExhausted { .. } => (429, "Too Many Requests"),
            ServeError::NotFound(_) => (404, "Not Found"),
            ServeError::Engine(_) => (422, "Unprocessable Entity"),
        }
    }

    /// Versioned error envelope:
    /// `{"schema_version":1,"error":{"code":…,"message":…,…detail}}`.
    pub fn to_wire(&self) -> JsonValue {
        let inner = match self {
            ServeError::Engine(e) => error_to_wire(e),
            ServeError::Overloaded { inflight, queued } => obj(vec![
                ("code", self.code().into()),
                ("message", self.to_string().into()),
                ("inflight", (*inflight).into()),
                ("queued", (*queued).into()),
            ]),
            ServeError::QuotaExhausted { tenant, quota } => obj(vec![
                ("code", self.code().into()),
                ("message", self.to_string().into()),
                ("tenant", tenant.as_str().into()),
                ("quota", (*quota).into()),
            ]),
            _ => obj(vec![
                ("code", self.code().into()),
                ("message", self.to_string().into()),
            ]),
        };
        aalign_obs::wire::versioned(vec![("error", inner)])
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { inflight, queued } => write!(
                f,
                "overloaded: {inflight} in flight, {queued} queued; retry later or raise the deadline"
            ),
            ServeError::Draining => write!(f, "daemon is draining; new requests are refused"),
            ServeError::QuotaExhausted { tenant, quota } => {
                write!(f, "tenant {tenant:?} already has {quota} request(s) in flight")
            }
            ServeError::NotFound(what) => write!(f, "not found: {what}"),
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_obs::wire::str_field;

    #[test]
    fn request_round_trips() {
        let mut req = SearchRequest::new("MKVLA");
        req.id = Some("r1".into());
        req.tenant = Some("teamA".into());
        req.top_n = 5;
        req.deadline_ms = Some(250);
        req.no_batch = true;
        let doc = req.to_wire().render();
        let back = SearchRequest::from_wire(&JsonValue::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.query, "MKVLA");
        assert_eq!(back.id.as_deref(), Some("r1"));
        assert_eq!(back.tenant.as_deref(), Some("teamA"));
        assert_eq!(back.top_n, 5);
        assert_eq!(back.deadline_ms, Some(250));
        assert!(back.no_batch);
    }

    #[test]
    fn request_requires_a_query_string() {
        for doc in [
            "{}",
            "{\"query\":7}",
            "[1]",
            "{\"query\":\"A\",\"top_n\":\"x\"}",
        ] {
            let v = JsonValue::parse(doc).unwrap();
            assert!(
                matches!(SearchRequest::from_wire(&v), Err(ServeError::BadRequest(_))),
                "{doc}"
            );
        }
    }

    #[test]
    fn error_envelopes_carry_stable_codes_and_statuses() {
        let cases: Vec<(ServeError, &str, u16)> = vec![
            (ServeError::BadRequest("x".into()), "bad_request", 400),
            (
                ServeError::Overloaded {
                    inflight: 4,
                    queued: 8,
                },
                "overloaded",
                429,
            ),
            (ServeError::Draining, "draining", 503),
            (
                ServeError::QuotaExhausted {
                    tenant: "t".into(),
                    quota: 2,
                },
                "quota_exhausted",
                429,
            ),
            (ServeError::NotFound("/nope".into()), "not_found", 404),
            (
                ServeError::Engine(AlignError::EmptyQuery),
                "empty_query",
                422,
            ),
        ];
        for (err, code, status) in cases {
            assert_eq!(err.code(), code);
            assert_eq!(err.http_status().0, status);
            let wire = err.to_wire();
            aalign_obs::wire::check_version(&wire).unwrap();
            assert_eq!(str_field(wire.get("error").unwrap(), "code").unwrap(), code);
        }
    }
}
