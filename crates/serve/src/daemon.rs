//! Daemon lifecycle: bind a front end, run until SIGTERM/SIGINT (or
//! a shutdown request), then drain gracefully.
//!
//! Graceful drain means: stop admitting ([`Dispatcher::begin_drain`]
//! — new requests get a typed `draining` refusal), let every
//! in-flight request finish, stop the accept loop, and only then
//! exit. [`run_daemon`] returns `0` for a clean drain and `1` when
//! the drain timeout expired with work still in flight.
//!
//! [`Dispatcher::begin_drain`]: crate::Dispatcher::begin_drain

use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::dispatch::Dispatcher;
use crate::http::serve_http;
use crate::rpc::respond_line;

/// Which transport the daemon speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEnd {
    /// HTTP/JSON on a TCP listener.
    Http,
    /// Line-delimited JSON-RPC on stdin/stdout.
    Stdio,
}

/// Daemon settings (transport, bind address, drain budget).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DaemonOptions {
    /// Transport to serve.
    pub front_end: FrontEnd,
    /// Bind address for [`FrontEnd::Http`]; port 0 picks a free port
    /// (the chosen address is announced on stdout).
    pub addr: String,
    /// How long to wait for in-flight requests during drain before
    /// giving up and exiting dirty.
    pub drain_timeout: Duration,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            front_end: FrontEnd::Http,
            addr: "127.0.0.1:7691".to_string(),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

impl DaemonOptions {
    /// Select the transport.
    pub fn front_end(mut self, fe: FrontEnd) -> Self {
        self.front_end = fe;
        self
    }

    /// Set the HTTP bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Set the drain budget.
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.drain_timeout = d;
        self
    }
}

/// Minimal signal latch: SIGTERM/SIGINT set a flag the daemon loop
/// polls. No allocation or locking happens in the handler.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // The C library's `signal(2)`; std links libc on every
        // supported platform. Used instead of sigaction to stay
        // declaration-only.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // ORDER: Release — pairs with the Acquire in `terminated` so
        // the poller sees the store; the only async-signal-safe
        // action taken.
        TERM.store(true, Ordering::Release);
    }

    /// Install the SIGTERM/SIGINT latch. Idempotent.
    pub fn install() {
        // SAFETY: `signal` is the libc function with its documented
        // signature; `on_term` is an `extern "C" fn(i32)` whose body
        // is a single atomic store, which is async-signal-safe. The
        // returned previous handler is intentionally discarded.
        let handler = on_term as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// True once SIGTERM or SIGINT has been received.
    pub fn terminated() -> bool {
        // ORDER: Acquire — pairs with the Release store in `on_term`.
        TERM.load(Ordering::Acquire)
    }

    /// Reset the latch (tests only; a real daemon exits instead).
    pub fn reset() {
        // ORDER: Release — same discipline as the handler's store.
        TERM.store(false, Ordering::Release);
    }
}

/// Run the daemon until a termination signal or shutdown request,
/// then drain. Returns the process exit code: `0` after a clean
/// drain, `1` if in-flight requests outlived `drain_timeout`.
pub fn run_daemon(dispatcher: Arc<Dispatcher>, opts: &DaemonOptions) -> io::Result<i32> {
    signal::install();
    match opts.front_end {
        FrontEnd::Http => run_http(dispatcher, opts),
        FrontEnd::Stdio => run_stdio(dispatcher, opts),
    }
}

fn run_http(dispatcher: Arc<Dispatcher>, opts: &DaemonOptions) -> io::Result<i32> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    // Announced on stdout so scripts (and the CI smoke test) can
    // scrape the port when binding to :0.
    println!("aalign-serve listening on http://{addr}");
    io::stdout().flush()?;

    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let d = Arc::clone(&dispatcher);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve_http(listener, d, stop))
    };

    while !signal::terminated() && !dispatcher.is_draining() {
        std::thread::sleep(Duration::from_millis(30));
    }

    dispatcher.begin_drain();
    let clean = dispatcher.wait_idle(opts.drain_timeout);
    // ORDER: Release — pairs with the Acquire poll in the accept
    // loop; set after drain so requests racing the signal still get
    // typed `draining` refusals rather than connection resets.
    stop.store(true, Ordering::Release);
    accept
        .join()
        .map_err(|_| io::Error::other("http accept thread panicked"))??;
    report_drain(clean, &dispatcher);
    Ok(i32::from(!clean))
}

fn run_stdio(dispatcher: Arc<Dispatcher>, opts: &DaemonOptions) -> io::Result<i32> {
    // stdout is the RPC channel, so the banner goes to stderr.
    eprintln!("aalign-serve speaking JSON-RPC on stdio");

    // Reading and handling live on different threads: a blocked
    // stdin read must not stall drain. The latch handler is
    // installed with signal(2), which on glibc carries SA_RESTART —
    // a read parked in BufRead would be transparently restarted and
    // a single-threaded loop would never observe SIGTERM until EOF.
    // So a worker only reads and the main loop handles requests
    // while polling the latch between lines.
    let (tx, rx) = mpsc::channel::<io::Result<String>>();
    let reader = std::thread::Builder::new()
        .name("aalign-stdio-reader".to_string())
        .spawn(move || {
            let stdin = io::stdin();
            for line in stdin.lock().lines() {
                let stop = line.is_err();
                if tx.send(line).is_err() || stop {
                    break;
                }
            }
            // Dropping `tx` tells the main loop stdin hit EOF.
        })?;

    let stdout = io::stdout();
    let mut out = stdout.lock();
    let io_outcome: io::Result<()> = loop {
        if signal::terminated() {
            break Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(30)) {
            Ok(Ok(line)) => {
                // Requests run synchronously here, so by the time the
                // loop exits every response has been written; drain
                // below finds the dispatcher already idle.
                if let Some(response) = respond_line(&line, &dispatcher) {
                    let wrote = out
                        .write_all(response.as_bytes())
                        .and_then(|()| out.write_all(b"\n"))
                        .and_then(|()| out.flush());
                    if let Err(e) = wrote {
                        break Err(e);
                    }
                }
                if dispatcher.is_draining() {
                    // A `shutdown` request was just answered. Exit
                    // without waiting for EOF — a shard supervisor
                    // keeps the pipe open and waits for the child to
                    // exit — but only after answering every line the
                    // reader already queued and flushing stdout, so
                    // the parent never reads a truncated final JSON
                    // line.
                    break flush_queued(&rx, &mut out, &dispatcher);
                }
            }
            Ok(Err(e)) => break Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break Ok(()),
        }
    };

    dispatcher.begin_drain();
    let clean = dispatcher.wait_idle(opts.drain_timeout);
    // After a signal the reader may still be parked in a stdin read;
    // it holds nothing worth joining for, and process exit reclaims
    // it. Join only once it finished on its own (EOF).
    if reader.is_finished() {
        let _ = reader.join();
    }
    report_drain(clean, &dispatcher);
    io_outcome?;
    Ok(i32::from(!clean))
}

/// Answer every line the stdio reader has already queued (late lines
/// get typed `draining` refusals once drain has begun), then flush
/// stdout to completion so the final reply is never truncated by
/// process exit.
fn flush_queued(
    rx: &mpsc::Receiver<io::Result<String>>,
    out: &mut impl Write,
    dispatcher: &Dispatcher,
) -> io::Result<()> {
    while let Ok(Ok(line)) = rx.try_recv() {
        if let Some(response) = respond_line(&line, dispatcher) {
            out.write_all(response.as_bytes())?;
            out.write_all(b"\n")?;
        }
    }
    out.flush()
}

fn report_drain(clean: bool, dispatcher: &Dispatcher) {
    if clean {
        eprintln!("aalign-serve: drained cleanly");
    } else {
        eprintln!("aalign-serve: drain timeout expired with requests still in flight");
        // Post-mortem: the last stage events show what the stuck
        // requests were doing.
        dispatcher.dump_flight("dirty drain");
    }
}
