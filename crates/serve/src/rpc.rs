//! Line-delimited JSON-RPC 2.0 front end, normally bound to
//! stdin/stdout (`aalign serve --stdio`).
//!
//! One request object per line in, one response object per line out,
//! in request order. Methods: `search` (params = the same
//! [`SearchRequest`] object the HTTP front end takes), `health`,
//! `metrics`, `cancel` (`{"id": …}`), and `shutdown` (begins drain;
//! after the reply the stdio daemon flushes stdout and exits on its
//! own — a supervisor always reads the complete final line and never
//! has to close the pipe first).
//!
//! Service refusals map onto implementation-defined error codes:
//! `overloaded` −32001, `draining` −32002, `quota_exhausted` −32003,
//! engine failures −32004, unknown cancel id −32005. The full typed
//! envelope rides in `error.data`.
//!
//! [`SearchRequest`]: crate::wire::SearchRequest

use std::io::{self, BufRead, Write};
use std::time::Instant;

use aalign_obs::wire::{obj, JsonValue};
use aalign_obs::StageKind;

use crate::dispatch::Dispatcher;
use crate::wire::{SearchRequest, ServeError};

const PARSE_ERROR: i64 = -32700;
const INVALID_REQUEST: i64 = -32600;
const METHOD_NOT_FOUND: i64 = -32601;
const INVALID_PARAMS: i64 = -32602;

/// JSON-RPC error code for a [`ServeError`].
fn rpc_code(e: &ServeError) -> i64 {
    match e {
        ServeError::BadRequest(_) => INVALID_PARAMS,
        ServeError::Overloaded { .. } => -32001,
        ServeError::Draining => -32002,
        ServeError::QuotaExhausted { .. } => -32003,
        ServeError::Engine(_) => -32004,
        ServeError::NotFound(_) => -32005,
    }
}

/// Serve JSON-RPC over any line-oriented transport until EOF.
/// Requests are handled sequentially on the calling thread.
pub fn serve_stdio<R: BufRead, W: Write>(input: R, mut out: W, d: &Dispatcher) -> io::Result<()> {
    for line in input.lines() {
        if let Some(response) = respond_line(&line?, d) {
            out.write_all(response.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
        }
    }
    Ok(())
}

/// Handle one line of a JSON-RPC session: `None` for blank lines,
/// otherwise the rendered response object to write back. The daemon
/// loop uses this directly so reading (worker thread) and handling
/// (signal-polling main loop) can live on different threads.
pub fn respond_line(line: &str, d: &Dispatcher) -> Option<String> {
    if line.trim().is_empty() {
        return None;
    }
    Some(handle_line(line, d).render())
}

fn handle_line(line: &str, d: &Dispatcher) -> JsonValue {
    let doc = match JsonValue::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            d.note_bad_request();
            return error_response(JsonValue::Null, PARSE_ERROR, &e.to_string(), None);
        }
    };
    let id = doc.get("id").cloned().unwrap_or(JsonValue::Null);
    let Some(method) = doc.get("method").and_then(|m| m.as_str()) else {
        d.note_bad_request();
        return error_response(id, INVALID_REQUEST, "missing string field \"method\"", None);
    };
    let params = doc.get("params").cloned().unwrap_or(JsonValue::Null);

    match method {
        "search" => {
            let rid = d.next_request_id();
            let parse_started = Instant::now();
            match SearchRequest::from_wire(&params) {
                Ok(req) => {
                    d.record_stage(rid, StageKind::Parse, parse_started.elapsed(), 0);
                    match d.search_traced(&req, rid) {
                        Ok(resp) => {
                            // The respond stage here is response
                            // serialization; the line write happens
                            // on the daemon loop.
                            let respond_started = Instant::now();
                            let wire = resp.to_wire();
                            d.record_stage(rid, StageKind::Respond, respond_started.elapsed(), 0);
                            result_response(id, wire)
                        }
                        Err(e) => serve_error_response(id, &e),
                    }
                }
                Err(e) => {
                    d.note_bad_request();
                    serve_error_response(id, &e)
                }
            }
        }
        "health" => result_response(id, d.health()),
        "metrics" => result_response(
            id,
            obj(vec![
                ("format", "prometheus".into()),
                ("body", d.prometheus().as_str().into()),
            ]),
        ),
        "cancel" => match params.get("id").and_then(|v| v.as_str()) {
            Some(target) => match d.cancel(target) {
                Ok(()) => result_response(id, obj(vec![("cancelled", target.into())])),
                Err(e) => serve_error_response(id, &e),
            },
            None => {
                d.note_bad_request();
                error_response(id, INVALID_PARAMS, "missing string field \"id\"", None)
            }
        },
        "shutdown" => {
            d.begin_drain();
            result_response(id, obj(vec![("draining", true.into())]))
        }
        other => error_response(
            id,
            METHOD_NOT_FOUND,
            &format!("unknown method {other:?}"),
            None,
        ),
    }
}

fn result_response(id: JsonValue, result: JsonValue) -> JsonValue {
    obj(vec![
        ("jsonrpc", "2.0".into()),
        ("id", id),
        ("result", result),
    ])
}

fn serve_error_response(id: JsonValue, e: &ServeError) -> JsonValue {
    error_response(id, rpc_code(e), &e.to_string(), Some(e.to_wire()))
}

fn error_response(id: JsonValue, code: i64, message: &str, data: Option<JsonValue>) -> JsonValue {
    let mut err = vec![("code", code.into()), ("message", message.into())];
    if let Some(data) = data {
        err.push(("data", data));
    }
    obj(vec![
        ("jsonrpc", "2.0".into()),
        ("id", id),
        ("error", obj(err)),
    ])
}
