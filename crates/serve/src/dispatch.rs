//! The shared request dispatcher: one per daemon, used by every
//! front end.
//!
//! Responsibilities, in request order:
//!
//! 1. **Drain gate** — once [`Dispatcher::begin_drain`] is called,
//!    new requests get a typed [`ServeError::Draining`]; in-flight
//!    requests run to completion.
//! 2. **Tenant quotas** — at most `tenant_quota` requests in flight
//!    per tenant label (0 = unlimited).
//! 3. **Cancellation registry** — requests carrying an `id` can be
//!    cancelled mid-flight via [`Dispatcher::cancel`].
//! 4. **Admission control** — a fixed in-flight budget backed by a
//!    bounded wait queue. A full queue (or a request whose deadline
//!    expires while queued) gets an immediate
//!    [`ServeError::Overloaded`]; nobody waits unboundedly.
//! 5. **Cross-request batching** — concurrent requests with the same
//!    query fingerprint (residues + `top_n`) coalesce onto one
//!    engine sweep. The leader runs; followers wait on the leader's
//!    flight and share its `Arc<SearchReport>`. The coalesced count
//!    is stamped into the leader's `SearchMetrics::coalesced`.
//!    Cancellation stays per-request: a follower whose leader was
//!    cancelled re-runs the query itself instead of inheriting the
//!    leader's cancellation.
//!
//! 6. **Request-scoped tracing** — every request gets a dense
//!    `request_id`; each lifecycle stage (parse → queue →
//!    batch-wait → sweep → merge → respond) is recorded into an
//!    always-on [`FlightRecorder`] ring and aggregated into
//!    per-stage histograms surfaced on `/metrics` and in `health()`.
//!    A coalesced follower's `batch_wait` event references the
//!    leader's request id, so a flight dump reconstructs who rode on
//!    whose sweep.
//!
//! Lock order, where it matters: `flights` before any
//! `Flight::state`; the admission mutex is never held across either;
//! the stage-histogram mutex is leaf-level (nothing is acquired
//! under it).

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::{AlignError, Aligner};
use aalign_obs::wire::{histogram_to_wire, obj, versioned, JsonValue};
use aalign_obs::{FlightEvent, FlightRecorder, Histogram, StageKind};
use aalign_par::{CancelToken, EngineHandle, SearchOptions, SearchReport};
use aalign_shard::{ShardQuery, Supervisor};

use crate::wire::{SearchRequest, SearchResponse, ServeError};

/// How often blocked waiters (admission queue, batch followers)
/// re-check cancellation and deadline expiry.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Tuning knobs for a [`Dispatcher`]. Start from
/// [`DispatcherConfig::default`] and override with the builder
/// methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DispatcherConfig {
    /// Requests allowed to run concurrently (engine sweeps and batch
    /// followers both count). Minimum 1.
    pub max_inflight: usize,
    /// Requests allowed to wait for an in-flight slot before the
    /// dispatcher answers `overloaded` immediately.
    pub max_queued: usize,
    /// Per-tenant in-flight cap; 0 disables quotas.
    pub tenant_quota: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// How long a request without a deadline may sit in the
    /// admission queue before it is refused as overloaded.
    pub admission_wait: Duration,
    /// Chaos harness: a scripted fault plan applied to every request
    /// the dispatcher runs (worker kills, panics, stalls).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<Arc<aalign_par::FaultPlan>>,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        Self {
            max_inflight: 4,
            max_queued: 16,
            tenant_quota: 0,
            default_deadline: None,
            admission_wait: Duration::from_secs(2),
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }
}

impl DispatcherConfig {
    /// Set the concurrent in-flight budget (clamped to at least 1).
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Set the admission queue bound.
    pub fn max_queued(mut self, n: usize) -> Self {
        self.max_queued = n;
        self
    }

    /// Set the per-tenant in-flight quota (0 = unlimited).
    pub fn tenant_quota(mut self, n: usize) -> Self {
        self.tenant_quota = n;
        self
    }

    /// Set the deadline for requests that do not specify one.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Set the queue-wait budget for deadline-less requests.
    pub fn admission_wait(mut self, d: Duration) -> Self {
        self.admission_wait = d;
        self
    }

    /// Apply a deterministic fault plan to every request (chaos
    /// harness).
    #[cfg(feature = "fault-inject")]
    pub fn fault_plan(mut self, plan: Arc<aalign_par::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Service-level counters, all monotonic.
///
/// Every counter is read and written with `Relaxed` loads/stores:
/// they are statistics, never used to synchronize memory.
#[derive(Debug, Default)]
struct Counters {
    requests_total: AtomicU64,
    ok: AtomicU64,
    partial: AtomicU64,
    overloaded: AtomicU64,
    draining_refused: AtomicU64,
    quota_refused: AtomicU64,
    cancelled: AtomicU64,
    coalesced_total: AtomicU64,
    bad_requests: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        // ORDER: Relaxed — independent statistic; no other data
        // depends on this counter's value.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn read(counter: &AtomicU64) -> u64 {
        // ORDER: Relaxed — monotonic statistic read for reporting.
        counter.load(Ordering::Relaxed)
    }
}

/// Admission bookkeeping: how many requests hold an in-flight slot
/// and how many are parked waiting for one.
#[derive(Debug, Default)]
struct AdmitState {
    inflight: usize,
    queued: usize,
}

/// Service-level per-stage latency aggregates (nanoseconds), one
/// histogram per lifecycle stage plus end-to-end. Leaf-level lock:
/// recorded after a stage completes, never held across anything.
#[derive(Debug, Default)]
struct StageHists {
    parse: Histogram,
    queue: Histogram,
    batch_wait: Histogram,
    sweep: Histogram,
    merge: Histogram,
    respond: Histogram,
    e2e: Histogram,
}

impl StageHists {
    fn for_stage(&mut self, stage: StageKind) -> Option<&mut Histogram> {
        match stage {
            StageKind::Parse => Some(&mut self.parse),
            StageKind::Queue => Some(&mut self.queue),
            StageKind::BatchWait => Some(&mut self.batch_wait),
            StageKind::Sweep => Some(&mut self.sweep),
            StageKind::Merge => Some(&mut self.merge),
            StageKind::Respond => Some(&mut self.respond),
            // Shard-supervisor lifecycle events ride the flight ring
            // but are not per-request latency stages — no histogram.
            _ => None,
        }
    }
}

/// Saturating nanosecond reading for histogram recording.
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Per-request trace context threaded through the sweep path: the
/// request id, how long admission took (stamped into the leader's
/// report), and when the request arrived (for `request_e2e`).
#[derive(Debug, Clone, Copy)]
struct TraceCtx {
    rid: u64,
    queue_wait: Duration,
    e2e_start: Instant,
}

/// One in-progress engine sweep that followers can attach to.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
    /// Request id of the leader running this sweep; followers stamp
    /// it as `ref_request` on their `batch_wait` stage events.
    leader: u64,
}

enum FlightState {
    /// The leader is sweeping; `followers` requests are waiting on
    /// the result.
    Running { followers: u64 },
    /// The sweep finished; the shared result every waiter clones.
    Done(Result<Arc<SearchReport>, AlignError>),
}

/// What a follower saw when its leader's flight resolved.
enum FollowOutcome {
    /// The leader finished; this is its shared report.
    Report(Arc<SearchReport>),
    /// The leader's *caller* cancelled it. That decision belongs to
    /// the leader's request alone, so the follower retries instead of
    /// inheriting the cancellation.
    LeaderCancelled,
}

/// Why admission did not hand out a permit.
enum AdmitRefusal {
    /// Typed refusal to send back verbatim.
    Refused(ServeError),
    /// The request's own deadline expired while queued — answered
    /// with a partial report, not an error.
    Expired,
}

/// RAII in-flight slot: dropping it releases the slot and wakes both
/// queued waiters and the drain waiter.
struct Permit<'a> {
    d: &'a Dispatcher,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.d.admit.lock().expect("admission lock poisoned");
        st.inflight -= 1;
        self.d.admit_cv.notify_all();
        if st.inflight == 0 && st.queued == 0 {
            self.d.idle_cv.notify_all();
        }
    }
}

/// RAII tenant-quota slot.
struct TenantGuard<'a> {
    d: &'a Dispatcher,
    tenant: String,
}

impl Drop for TenantGuard<'_> {
    fn drop(&mut self) {
        let mut tenants = self.d.tenants.lock().expect("tenant lock poisoned");
        if let Some(n) = tenants.get_mut(&self.tenant) {
            *n -= 1;
            if *n == 0 {
                tenants.remove(&self.tenant);
            }
        }
    }
}

/// RAII cancellation-registry entry.
struct CancelGuard<'a> {
    d: &'a Dispatcher,
    id: String,
}

impl Drop for CancelGuard<'_> {
    fn drop(&mut self) {
        self.d
            .cancels
            .lock()
            .expect("cancel registry poisoned")
            .remove(&self.id);
    }
}

/// The shared dispatcher. Construct once, wrap in an [`Arc`], and
/// hand a clone to every front end / connection thread.
pub struct Dispatcher {
    engine: EngineHandle,
    aligner: Aligner,
    db: SeqDatabase,
    cfg: DispatcherConfig,
    admit: Mutex<AdmitState>,
    admit_cv: Condvar,
    idle_cv: Condvar,
    draining: AtomicBool,
    tenants: Mutex<HashMap<String, usize>>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    cancels: Mutex<HashMap<String, CancelToken>>,
    counters: Counters,
    started: Instant,
    request_seq: AtomicU64,
    flight_rec: FlightRecorder,
    stage_hists: Mutex<StageHists>,
    /// Sharded backend: when set, searches fan out to the
    /// supervisor's child processes instead of this process's engine
    /// pool (which then only serves as a fallback for health
    /// reporting). Installed with [`Dispatcher::with_shards`].
    shards: Option<Arc<Supervisor>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("threads", &self.engine.threads())
            .field("subjects", &self.db.len())
            .field("cfg", &self.cfg)
            .field("draining", &self.is_draining())
            .finish_non_exhaustive()
    }
}

impl Dispatcher {
    /// Build a dispatcher over its own engine pool of `threads`
    /// workers (0 = available parallelism).
    pub fn new(aligner: Aligner, db: SeqDatabase, threads: usize, cfg: DispatcherConfig) -> Self {
        Self::with_engine(EngineHandle::new(threads), aligner, db, cfg)
    }

    /// Build a dispatcher over an existing shared engine handle —
    /// the same pool a CLI session or test already holds.
    ///
    /// Certificates are loaded at startup: if the aligner does not
    /// already carry a [certificate store](aalign_core::CertificateStore),
    /// one is proven here against the database's length bounds, so
    /// every admitted request runs with statically certified width
    /// selection and `health()` can report which lane widths are
    /// proven rescue-free.
    pub fn with_engine(
        engine: EngineHandle,
        aligner: Aligner,
        db: SeqDatabase,
        cfg: DispatcherConfig,
    ) -> Self {
        let aligner = if aligner.certificates().is_none() && !db.is_empty() {
            // Queries arrive per request with unknown length; the
            // subject bound caps them too (longer queries simply fall
            // outside the certificate and use dynamic ScoreBounds).
            let max_len = db.stats().max_len;
            aligner.with_certified_bounds(max_len, max_len)
        } else {
            aligner
        };
        Self {
            engine,
            aligner,
            db,
            cfg,
            admit: Mutex::new(AdmitState::default()),
            admit_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            cancels: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            started: Instant::now(),
            request_seq: AtomicU64::new(0),
            flight_rec: FlightRecorder::new(),
            stage_hists: Mutex::new(StageHists::default()),
            shards: None,
        }
    }

    /// Route searches through a shard supervisor instead of the
    /// local engine pool. Batching/coalescing is bypassed on the
    /// sharded path — the children already overlap work across
    /// shards — and caller cancellation takes effect at the
    /// supervisor's deadline granularity rather than mid-sweep.
    #[must_use]
    pub fn with_shards(mut self, sup: Arc<Supervisor>) -> Self {
        self.shards = Some(sup);
        self
    }

    /// The shard supervisor, when this dispatcher runs sharded.
    pub fn shards(&self) -> Option<&Arc<Supervisor>> {
        self.shards.as_ref()
    }

    /// The engine this dispatcher sweeps with.
    pub fn engine(&self) -> &EngineHandle {
        &self.engine
    }

    /// The database being served.
    pub fn db(&self) -> &SeqDatabase {
        &self.db
    }

    /// Allocate the next request id: dense, unique, never 0. Front
    /// ends call this once per request so parse-stage timing can be
    /// attributed before the request document even decodes.
    pub fn next_request_id(&self) -> u64 {
        // ORDER: Relaxed — the id only needs to be unique and
        // monotone; nothing synchronizes through it.
        self.request_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The always-on flight recorder (last N stage events), for
    /// `GET /debug/flight` and post-mortem dumps.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight_rec
    }

    /// Record one completed lifecycle stage for `request`: into the
    /// flight-recorder ring and the service-level stage histogram.
    /// `ref_request` is the leader's id for `batch_wait` stages, 0
    /// otherwise.
    pub fn record_stage(&self, request: u64, stage: StageKind, dur: Duration, ref_request: u64) {
        self.flight_rec.record(FlightEvent {
            at_us: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            request,
            stage,
            dur_us: u64::try_from(dur.as_micros()).unwrap_or(u64::MAX),
            ref_request,
        });
        let mut hists = self.stage_hists.lock().expect("stage histograms poisoned");
        if let Some(h) = hists.for_stage(stage) {
            h.record(dur_ns(dur));
        }
    }

    /// Dump the flight recorder to stderr, labelled with why. Called
    /// on dirty drain and when a request provoked a worker respawn.
    pub fn dump_flight(&self, why: &str) {
        let dump = self.flight_rec.dump_jsonl();
        eprintln!(
            "aalign-serve: flight recorder dump ({why}; {} event(s) retained, {} recorded):",
            dump.lines().count(),
            self.flight_rec.recorded(),
        );
        eprint!("{dump}");
    }

    /// Run one search request end to end: drain gate, quota,
    /// cancellation registration, admission, then either a fresh
    /// engine sweep or attachment to an identical in-flight one.
    ///
    /// Failure modes that still produced work — deadline expiry,
    /// fault-injected worker kills — come back as `Ok` responses
    /// with `report.partial == true`; only whole-request refusals
    /// and whole-query failures are `Err`.
    pub fn search(&self, req: &SearchRequest) -> Result<SearchResponse, ServeError> {
        self.search_traced(req, self.next_request_id())
    }

    /// [`search`](Self::search) under a caller-assigned request id —
    /// the front ends allocate the id before parsing so the parse
    /// stage is attributable, then hand it in here. Tracing changes
    /// nothing about the result: same hits, same report, plus stage
    /// events in the flight recorder.
    pub fn search_traced(
        &self,
        req: &SearchRequest,
        request_id: u64,
    ) -> Result<SearchResponse, ServeError> {
        Counters::bump(&self.counters.requests_total);
        let e2e_start = Instant::now();
        let respawned_before = self.engine.workers_respawned();
        let outcome = self.search_inner(req, request_id);
        {
            let mut hists = self.stage_hists.lock().expect("stage histograms poisoned");
            hists.e2e.record(dur_ns(e2e_start.elapsed()));
        }
        if self.engine.workers_respawned() > respawned_before {
            self.dump_flight(&format!("worker respawned during request {request_id}"));
        }
        match &outcome {
            Ok(resp) => Counters::bump(if resp.report.partial {
                &self.counters.partial
            } else {
                &self.counters.ok
            }),
            Err(ServeError::Overloaded { .. }) => Counters::bump(&self.counters.overloaded),
            Err(ServeError::Draining) => Counters::bump(&self.counters.draining_refused),
            Err(ServeError::QuotaExhausted { .. }) => Counters::bump(&self.counters.quota_refused),
            Err(ServeError::Engine(AlignError::Cancelled)) => {
                Counters::bump(&self.counters.cancelled);
            }
            Err(ServeError::BadRequest(_)) => Counters::bump(&self.counters.bad_requests),
            Err(_) => {}
        }
        outcome
    }

    fn search_inner(&self, req: &SearchRequest, rid: u64) -> Result<SearchResponse, ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let query = Sequence::protein(req.query_id.clone(), req.query.as_bytes())
            .map_err(|e| ServeError::BadRequest(format!("invalid query: {e}")))?;

        let _tenant_guard = self.claim_tenant_slot(req.tenant.as_deref())?;
        let cancel = CancelToken::new();
        let _cancel_guard = self.register_cancel(req.id.as_deref(), &cancel)?;

        let start = Instant::now();
        let budget = req.deadline().or(self.cfg.default_deadline);
        let permit = match self.admit(budget, start, &cancel) {
            Ok(permit) => permit,
            Err(AdmitRefusal::Refused(e)) => return Err(e),
            // The request's own deadline ran out while it was still
            // queued: same typed answer as an engine-side expiry — a
            // well-formed partial report, never an opaque refusal.
            Err(AdmitRefusal::Expired) => {
                return Ok(SearchResponse {
                    id: req.id.clone(),
                    request_id: rid,
                    batched: false,
                    report: Arc::new(self.expired_partial()),
                })
            }
        };
        // Queue wait: everything between arrival and holding a slot.
        let queue_wait = start.elapsed();
        self.record_stage(rid, StageKind::Queue, queue_wait, 0);
        let trace = TraceCtx {
            rid,
            queue_wait,
            e2e_start: start,
        };

        let result = if let Some(sup) = &self.shards {
            // Sharded dispatch: fan out to the supervisor's child
            // processes. Never batched — the children already
            // overlap work across shards.
            let remaining = budget.map(|b| b.saturating_sub(start.elapsed()));
            self.run_sharded(sup, req, remaining, trace)
                .map(|report| SearchResponse {
                    id: req.id.clone(),
                    request_id: rid,
                    batched: false,
                    report,
                })
        } else if req.no_batch {
            // Whatever the queue consumed comes out of the engine's
            // budget, so the end-to-end deadline holds.
            let remaining = budget.map(|b| b.saturating_sub(start.elapsed()));
            self.run_leader(&query, req.top_n, remaining, &cancel, None, trace)
                .map(|report| SearchResponse {
                    id: req.id.clone(),
                    request_id: rid,
                    batched: false,
                    report,
                })
        } else {
            self.run_or_attach(&query, req, start, budget, &cancel, trace)
        };
        drop(permit);
        result
    }

    /// Cancel the in-flight request registered under `id`.
    pub fn cancel(&self, id: &str) -> Result<(), ServeError> {
        let cancels = self.cancels.lock().expect("cancel registry poisoned");
        match cancels.get(id) {
            Some(token) => {
                token.cancel();
                Ok(())
            }
            None => Err(ServeError::NotFound(format!(
                "no in-flight request with id {id:?}"
            ))),
        }
    }

    /// Stop admitting new requests; in-flight ones run to
    /// completion. Idempotent.
    pub fn begin_drain(&self) {
        // ORDER: Release — pairs with the Acquire in `is_draining` so
        // a front end that observes the flag also observes any state
        // written before the drain decision.
        self.draining.store(true, Ordering::Release);
        self.admit_cv.notify_all();
        self.idle_cv.notify_all();
    }

    /// True once [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        // ORDER: Acquire — pairs with the Release store in
        // `begin_drain`.
        self.draining.load(Ordering::Acquire)
    }

    /// Block until no request is in flight or queued, or `timeout`
    /// elapses. Returns true when fully idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.admit.lock().expect("admission lock poisoned");
        while st.inflight > 0 || st.queued > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .idle_cv
                .wait_timeout(st, (deadline - now).min(WAIT_SLICE))
                .expect("admission lock poisoned");
            st = next;
        }
        true
    }

    /// Record a request the front end rejected before dispatch
    /// (unparseable body, bad route) so `/metrics` still sees it.
    pub fn note_bad_request(&self) {
        Counters::bump(&self.counters.requests_total);
        Counters::bump(&self.counters.bad_requests);
    }

    /// Versioned health document for `GET /v1/health` and the
    /// `health` RPC method.
    pub fn health(&self) -> JsonValue {
        let (inflight, queued) = {
            let st = self.admit.lock().expect("admission lock poisoned");
            (st.inflight, st.queued)
        };
        versioned(vec![
            (
                "status",
                if self.is_draining() { "draining" } else { "ok" }.into(),
            ),
            ("inflight", inflight.into()),
            ("queued", queued.into()),
            ("threads", self.engine.threads().into()),
            ("subjects", self.db.len().into()),
            // Saturation certificates proven at startup: which lane
            // widths are statically rescue-free for queries/subjects
            // within the database's length bounds.
            (
                "certified",
                match self.aligner.certificates() {
                    Some(store) => {
                        let bound = store.certificates().first();
                        obj(vec![
                            (
                                "granted_widths",
                                JsonValue::Array(
                                    store
                                        .granted_widths()
                                        .into_iter()
                                        .map(JsonValue::from)
                                        .collect(),
                                ),
                            ),
                            ("max_query", bound.map_or(0, |c| c.max_query).into()),
                            ("max_subject", bound.map_or(0, |c| c.max_subject).into()),
                        ])
                    }
                    None => JsonValue::Null,
                },
            ),
            ("queries_served", self.engine.queries_served().into()),
            ("workers_respawned", self.engine.workers_respawned().into()),
            // Shard-supervisor liveness, when this daemon dispatches
            // to child processes (`null` for single-process daemons).
            (
                "shards",
                match &self.shards {
                    Some(sup) => obj(vec![
                        ("count", sup.shards().into()),
                        ("live", sup.shards_live().into()),
                        ("dead", sup.shards_dead().into()),
                        ("respawns", sup.respawns().into()),
                    ]),
                    None => JsonValue::Null,
                },
            ),
            (
                "uptime_ms",
                (self.started.elapsed().as_millis() as u64).into(),
            ),
            (
                "counters",
                obj(vec![
                    (
                        "requests_total",
                        Counters::read(&self.counters.requests_total).into(),
                    ),
                    ("ok", Counters::read(&self.counters.ok).into()),
                    ("partial", Counters::read(&self.counters.partial).into()),
                    (
                        "overloaded",
                        Counters::read(&self.counters.overloaded).into(),
                    ),
                    (
                        "draining_refused",
                        Counters::read(&self.counters.draining_refused).into(),
                    ),
                    (
                        "quota_refused",
                        Counters::read(&self.counters.quota_refused).into(),
                    ),
                    ("cancelled", Counters::read(&self.counters.cancelled).into()),
                    (
                        "coalesced_total",
                        Counters::read(&self.counters.coalesced_total).into(),
                    ),
                    (
                        "bad_requests",
                        Counters::read(&self.counters.bad_requests).into(),
                    ),
                ]),
            ),
            // Lossless per-stage aggregates (nanoseconds): the same
            // histogram wire shape the metrics documents use, so a
            // client (e.g. `aalign loadgen`) can decode them with
            // `histogram_from_wire` and read exact quantiles.
            ("stages", {
                let h = self.stage_hists.lock().expect("stage histograms poisoned");
                obj(vec![
                    ("parse_ns", histogram_to_wire(&h.parse)),
                    ("queue_wait_ns", histogram_to_wire(&h.queue)),
                    ("batch_wait_ns", histogram_to_wire(&h.batch_wait)),
                    ("sweep_ns", histogram_to_wire(&h.sweep)),
                    ("merge_ns", histogram_to_wire(&h.merge)),
                    ("respond_ns", histogram_to_wire(&h.respond)),
                    ("e2e_ns", histogram_to_wire(&h.e2e)),
                ])
            }),
        ])
    }

    /// Prometheus exposition text for `GET /metrics`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP aalign_serve_{name} {help}\n# TYPE aalign_serve_{name} counter\naalign_serve_{name} {v}\n"
            ));
        };
        counter(
            "requests_total",
            "Requests received across all front ends.",
            Counters::read(&self.counters.requests_total),
        );
        counter(
            "requests_ok",
            "Requests answered with a complete report.",
            Counters::read(&self.counters.ok),
        );
        counter(
            "requests_partial",
            "Requests answered with a partial report (deadline or fault).",
            Counters::read(&self.counters.partial),
        );
        counter(
            "refused_overloaded",
            "Requests refused by admission control.",
            Counters::read(&self.counters.overloaded),
        );
        counter(
            "refused_draining",
            "Requests refused because the daemon was draining.",
            Counters::read(&self.counters.draining_refused),
        );
        counter(
            "refused_quota",
            "Requests refused by per-tenant quotas.",
            Counters::read(&self.counters.quota_refused),
        );
        counter(
            "cancelled_total",
            "Requests cancelled by the caller.",
            Counters::read(&self.counters.cancelled),
        );
        counter(
            "coalesced_total",
            "Requests coalesced onto another request's sweep.",
            Counters::read(&self.counters.coalesced_total),
        );
        counter(
            "bad_requests_total",
            "Malformed requests.",
            Counters::read(&self.counters.bad_requests),
        );
        counter(
            "engine_queries_served",
            "Sweeps completed by the engine pool.",
            self.engine.queries_served(),
        );
        counter(
            "engine_workers_respawned",
            "Workers respawned after a panic or kill.",
            self.engine.workers_respawned(),
        );
        counter(
            "flight_events_recorded",
            "Stage events written to the flight recorder.",
            self.flight_rec.recorded(),
        );

        // Point-in-time gauges.
        let (inflight, queued) = {
            let st = self.admit.lock().expect("admission lock poisoned");
            (st.inflight, st.queued)
        };
        let mut gauge = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP aalign_serve_{name} {help}\n# TYPE aalign_serve_{name} gauge\naalign_serve_{name} {v}\n"
            ));
        };
        gauge(
            "inflight",
            "Requests currently holding an in-flight slot.",
            inflight as u64,
        );
        gauge(
            "queued",
            "Requests currently parked in the admission queue.",
            queued as u64,
        );
        {
            let tenants = self.tenants.lock().expect("tenant lock poisoned");
            let mut rows: Vec<(&String, &usize)> = tenants.iter().collect();
            rows.sort();
            out.push_str(
                "# HELP aalign_serve_tenant_inflight Requests in flight per tenant label.\n\
                 # TYPE aalign_serve_tenant_inflight gauge\n",
            );
            for (tenant, n) in rows {
                let label = tenant.replace('\\', "\\\\").replace('"', "\\\"");
                out.push_str(&format!(
                    "aalign_serve_tenant_inflight{{tenant=\"{label}\"}} {n}\n"
                ));
            }
        }

        // Shard-supervisor liveness, on sharded daemons only. (The
        // `gauge` closure's borrow of `out` ended at the tenant rows
        // above, so these are pushed directly.)
        if let Some(sup) = &self.shards {
            for (name, help, v) in [
                (
                    "shards_total",
                    "Database shards this daemon dispatches to.",
                    sup.shards() as u64,
                ),
                (
                    "shards_live",
                    "Shards with a live child process right now.",
                    sup.shards_live() as u64,
                ),
                (
                    "shards_dead",
                    "Shards whose circuit breaker has tripped.",
                    sup.shards_dead() as u64,
                ),
                (
                    "shard_respawns",
                    "Shard children respawned after a death.",
                    sup.respawns(),
                ),
            ] {
                out.push_str(&format!(
                    "# HELP aalign_serve_{name} {help}\n# TYPE aalign_serve_{name} gauge\naalign_serve_{name} {v}\n"
                ));
            }
        }

        // Per-stage latency summaries (seconds, from the nanosecond
        // log2 histograms — quantiles are bucket upper bounds).
        let h = self.stage_hists.lock().expect("stage histograms poisoned");
        let stages: [(&str, &Histogram); 7] = [
            ("parse", &h.parse),
            ("queue_wait", &h.queue),
            ("batch_wait", &h.batch_wait),
            ("sweep", &h.sweep),
            ("merge", &h.merge),
            ("respond", &h.respond),
            ("e2e", &h.e2e),
        ];
        for (stage, hist) in stages {
            let name = format!("aalign_serve_stage_{stage}_seconds");
            out.push_str(&format!(
                "# HELP {name} Stage latency for the {stage} request stage.\n# TYPE {name} summary\n"
            ));
            for (label, v) in [
                ("0.5", hist.p50()),
                ("0.99", hist.p99()),
                ("0.999", hist.p999()),
            ] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    v as f64 * 1e-9
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", hist.sum() as f64 * 1e-9));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }

    // ----- internals -------------------------------------------------

    fn claim_tenant_slot<'d>(
        &'d self,
        tenant: Option<&str>,
    ) -> Result<Option<TenantGuard<'d>>, ServeError> {
        let (Some(tenant), quota @ 1..) = (tenant, self.cfg.tenant_quota) else {
            return Ok(None);
        };
        let mut tenants = self.tenants.lock().expect("tenant lock poisoned");
        let n = tenants.entry(tenant.to_string()).or_insert(0);
        if *n >= quota {
            return Err(ServeError::QuotaExhausted {
                tenant: tenant.to_string(),
                quota,
            });
        }
        *n += 1;
        Ok(Some(TenantGuard {
            d: self,
            tenant: tenant.to_string(),
        }))
    }

    fn register_cancel<'d>(
        &'d self,
        id: Option<&str>,
        token: &CancelToken,
    ) -> Result<Option<CancelGuard<'d>>, ServeError> {
        let Some(id) = id else { return Ok(None) };
        let mut cancels = self.cancels.lock().expect("cancel registry poisoned");
        match cancels.entry(id.to_string()) {
            Entry::Occupied(_) => Err(ServeError::BadRequest(format!(
                "request id {id:?} is already in flight"
            ))),
            Entry::Vacant(slot) => {
                slot.insert(token.clone());
                Ok(Some(CancelGuard {
                    d: self,
                    id: id.to_string(),
                }))
            }
        }
    }

    /// Take an in-flight slot, waiting in the bounded queue if the
    /// budget allows. Never blocks past the request's deadline (or
    /// `admission_wait` for deadline-less requests).
    fn admit(
        &self,
        budget: Option<Duration>,
        start: Instant,
        cancel: &CancelToken,
    ) -> Result<Permit<'_>, AdmitRefusal> {
        let wait_budget = budget.unwrap_or(self.cfg.admission_wait);
        let mut st = self.admit.lock().expect("admission lock poisoned");
        let mut queued_self = false;
        loop {
            if cancel.is_cancelled() {
                if queued_self {
                    st.queued -= 1;
                }
                return Err(AdmitRefusal::Refused(ServeError::Engine(
                    AlignError::Cancelled,
                )));
            }
            if self.is_draining() {
                if queued_self {
                    st.queued -= 1;
                }
                return Err(AdmitRefusal::Refused(ServeError::Draining));
            }
            if st.inflight < self.cfg.max_inflight {
                st.inflight += 1;
                if queued_self {
                    st.queued -= 1;
                }
                return Ok(Permit { d: self });
            }
            if !queued_self {
                if st.queued >= self.cfg.max_queued {
                    return Err(AdmitRefusal::Refused(ServeError::Overloaded {
                        inflight: st.inflight,
                        queued: st.queued,
                    }));
                }
                st.queued += 1;
                queued_self = true;
            }
            if start.elapsed() >= wait_budget {
                st.queued -= 1;
                // A real deadline expiring is a partial result; the
                // dispatcher-level patience budget running out is
                // backpressure.
                return Err(match budget {
                    Some(_) => AdmitRefusal::Expired,
                    None => AdmitRefusal::Refused(ServeError::Overloaded {
                        inflight: st.inflight,
                        queued: st.queued,
                    }),
                });
            }
            let (next, _) = self
                .admit_cv
                .wait_timeout(st, WAIT_SLICE)
                .expect("admission lock poisoned");
            st = next;
        }
    }

    /// Fingerprint for cross-request batching: identical residues +
    /// identical `top_n` means identical hit lists, so the results
    /// are interchangeable. The query *id* is deliberately excluded
    /// — it is a label, not an input to the sweep.
    fn fingerprint(query: &Sequence, top_n: usize) -> u64 {
        let mut h = DefaultHasher::new();
        query.indices().hash(&mut h);
        top_n.hash(&mut h);
        h.finish()
    }

    /// Singleflight: become the leader for this fingerprint or attach
    /// as a follower to an identical sweep already running. Loops
    /// because a follower whose leader was cancelled must not inherit
    /// that cancellation — it retries as (or re-attaches behind) a
    /// fresh leader, still bounded by its own deadline.
    fn run_or_attach(
        &self,
        query: &Sequence,
        req: &SearchRequest,
        start: Instant,
        budget: Option<Duration>,
        cancel: &CancelToken,
        trace: TraceCtx,
    ) -> Result<SearchResponse, ServeError> {
        let key = Self::fingerprint(query, req.top_n);
        loop {
            let existing = {
                let mut flights = self.flights.lock().expect("flight map poisoned");
                match flights.entry(key) {
                    Entry::Occupied(slot) => {
                        let flight = Arc::clone(slot.get());
                        // Register as a follower while still holding
                        // the map lock (lock order: flights →
                        // flight.state), so the leader cannot finish
                        // without counting us.
                        let mut state = flight.state.lock().expect("flight poisoned");
                        if let FlightState::Running { followers } = &mut *state {
                            *followers += 1;
                        }
                        drop(state);
                        Some(flight)
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(Arc::new(Flight {
                            state: Mutex::new(FlightState::Running { followers: 0 }),
                            cv: Condvar::new(),
                            leader: trace.rid,
                        }));
                        None
                    }
                }
            };

            match existing {
                None => {
                    // Whatever queueing and following consumed comes
                    // out of the engine's budget, so the end-to-end
                    // deadline holds.
                    let remaining = budget.map(|b| b.saturating_sub(start.elapsed()));
                    let outcome =
                        self.run_leader(query, req.top_n, remaining, cancel, Some(key), trace);
                    return Ok(SearchResponse {
                        id: req.id.clone(),
                        request_id: trace.rid,
                        batched: false,
                        report: outcome?,
                    });
                }
                Some(flight) => {
                    let waited = Instant::now();
                    match self.follow(&flight, start, budget, cancel)? {
                        FollowOutcome::Report(report) => {
                            // The follower's whole wait rode on the
                            // leader's sweep: one batch_wait stage
                            // event referencing the leader.
                            self.record_stage(
                                trace.rid,
                                StageKind::BatchWait,
                                waited.elapsed(),
                                flight.leader,
                            );
                            return Ok(SearchResponse {
                                id: req.id.clone(),
                                request_id: trace.rid,
                                batched: true,
                                report,
                            });
                        }
                        FollowOutcome::LeaderCancelled => continue,
                    }
                }
            }
        }
    }

    /// Run the engine sweep and publish the result to any followers.
    /// `key` is the flight-map entry to resolve; `None` for unbatched
    /// requests, which never touch the map.
    fn run_leader(
        &self,
        query: &Sequence,
        top_n: usize,
        remaining: Option<Duration>,
        cancel: &CancelToken,
        key: Option<u64>,
        trace: TraceCtx,
    ) -> Result<Arc<SearchReport>, ServeError> {
        let mut opts = SearchOptions::new().top_n(top_n).cancel(cancel.clone());
        if let Some(d) = remaining {
            opts = opts.deadline(d);
        }
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.cfg.fault_plan {
            opts = opts.fault_plan(Arc::clone(plan));
        }
        let sweep_started = Instant::now();
        let mut result = self.engine.search(&self.aligner, query, &self.db, &opts);
        self.record_stage(trace.rid, StageKind::Sweep, sweep_started.elapsed(), 0);
        if let Ok(report) = &mut result {
            self.record_stage(trace.rid, StageKind::Merge, report.metrics.merge, 0);
            // Stage waits ride on the report while the leader still
            // owns it exclusively — followers only ever see the
            // sealed Arc.
            report.metrics.queue_wait.record(dur_ns(trace.queue_wait));
            report
                .metrics
                .request_e2e
                .record(dur_ns(trace.e2e_start.elapsed()));
        }

        let Some(key) = key else {
            return result.map(Arc::new).map_err(ServeError::Engine);
        };
        let mut flights = self.flights.lock().expect("flight map poisoned");
        let flight = flights.remove(&key).expect("leader's flight vanished");
        drop(flights);
        let mut state = flight.state.lock().expect("flight poisoned");
        let followers = match &*state {
            FlightState::Running { followers } => *followers,
            FlightState::Done(_) => unreachable!("only the leader resolves a flight"),
        };
        if let Ok(report) = &mut result {
            report.metrics.coalesced = followers;
        }
        // One Arc for everyone: the leader's response and every
        // follower's share the same allocation.
        let shared = result.map(Arc::new);
        *state = FlightState::Done(shared.clone());
        drop(state);
        flight.cv.notify_all();
        if followers > 0 {
            let coalesced = &self.counters.coalesced_total;
            // ORDER: Relaxed — statistic only.
            coalesced.fetch_add(followers, Ordering::Relaxed);
        }
        shared.map_err(ServeError::Engine)
    }

    /// Run one query through the shard supervisor. Degradation is
    /// the supervisor's job (lost shards come back as `partial:
    /// true` with `ShardLost` errors); this wrapper only adapts the
    /// request shape and stamps the dispatcher-side stage metrics,
    /// exactly like [`run_leader`](Self::run_leader) does for local
    /// sweeps.
    fn run_sharded(
        &self,
        sup: &Supervisor,
        req: &SearchRequest,
        remaining: Option<Duration>,
        trace: TraceCtx,
    ) -> Result<Arc<SearchReport>, ServeError> {
        let mut q = ShardQuery::new(req.query.clone())
            .query_id(req.query_id.clone())
            .top_n(req.top_n);
        if let Some(d) = remaining {
            q = q.deadline(d);
        }
        let sweep_started = Instant::now();
        let mut result = sup.search(&q);
        self.record_stage(trace.rid, StageKind::Sweep, sweep_started.elapsed(), 0);
        if let Ok(report) = &mut result {
            self.record_stage(trace.rid, StageKind::Merge, report.metrics.merge, 0);
            report.metrics.queue_wait.record(dur_ns(trace.queue_wait));
            report
                .metrics
                .request_e2e
                .record(dur_ns(trace.e2e_start.elapsed()));
        }
        result.map(Arc::new).map_err(ServeError::Engine)
    }

    /// Wait for the leader's result, honoring this follower's own
    /// cancellation and deadline. A follower whose budget expires
    /// before the leader finishes gets a well-formed empty *partial*
    /// report — never a hang. A leader cancelled by *its* caller
    /// yields [`FollowOutcome::LeaderCancelled`] so the follower can
    /// retry rather than fail someone else's cancellation.
    fn follow(
        &self,
        flight: &Flight,
        start: Instant,
        budget: Option<Duration>,
        cancel: &CancelToken,
    ) -> Result<FollowOutcome, ServeError> {
        let mut state = flight.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Done(Ok(report)) => {
                    return Ok(FollowOutcome::Report(Arc::clone(report)))
                }
                FlightState::Done(Err(AlignError::Cancelled)) => {
                    return Ok(FollowOutcome::LeaderCancelled)
                }
                // Any other leader failure is a property of the query
                // itself (same inputs, same outcome), so sharing it
                // with followers is correct.
                FlightState::Done(Err(e)) => return Err(ServeError::Engine(e.clone())),
                FlightState::Running { .. } => {
                    if cancel.is_cancelled() {
                        self.unfollow(&mut state);
                        return Err(ServeError::Engine(AlignError::Cancelled));
                    }
                    if let Some(b) = budget {
                        if start.elapsed() >= b {
                            self.unfollow(&mut state);
                            return Ok(FollowOutcome::Report(Arc::new(self.expired_partial())));
                        }
                    }
                }
            }
            let (next, _) = flight
                .cv
                .wait_timeout(state, WAIT_SLICE)
                .expect("flight poisoned");
            state = next;
        }
    }

    fn unfollow(&self, state: &mut FlightState) {
        if let FlightState::Running { followers } = state {
            *followers = followers.saturating_sub(1);
        }
    }

    /// The typed answer for "your deadline expired before any result
    /// existed": same shape as an engine-side deadline expiry.
    fn expired_partial(&self) -> SearchReport {
        SearchReport {
            hits: Vec::new(),
            threads_used: self.engine.threads(),
            subjects: self.db.len(),
            total_residues: 0,
            metrics: aalign_par::SearchMetrics::default(),
            trace_events: Vec::new(),
            partial: true,
            errors: vec![AlignError::DeadlineExceeded],
        }
    }
}
