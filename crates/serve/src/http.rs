//! Minimal HTTP/1.1 front end over `std::net` — no framework, no
//! async runtime.
//!
//! One thread per connection, `Connection: close` on every response.
//! Routes:
//!
//! | route               | body                         | reply                         |
//! |---------------------|------------------------------|-------------------------------|
//! | `GET /v1/health`    | —                            | versioned health JSON         |
//! | `GET /metrics`      | —                            | Prometheus text               |
//! | `GET /debug/flight` | —                            | flight-recorder dump (JSONL)  |
//! | `POST /v1/search`   | [`SearchRequest`] JSON       | versioned report / error      |
//! | `POST /v1/cancel`   | `{"id": "…"}`                | `{"cancelled": "…"}` / 404    |
//! | `POST /v1/shutdown` | —                            | `{"draining": true}`          |
//!
//! Every search is traced: the connection thread allocates the
//! request id before parsing, so `parse` and `respond` stage timings
//! land in the flight recorder alongside the dispatcher's own
//! queue/sweep stages.
//!
//! [`SearchRequest`]: crate::wire::SearchRequest

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aalign_obs::wire::{versioned, JsonValue};
use aalign_obs::StageKind;

use crate::dispatch::Dispatcher;
use crate::wire::{SearchRequest, ServeError};

/// Largest accepted request body; larger bodies get `413`.
const MAX_BODY: usize = 1 << 20;

/// Longest accepted request line or single header line; longer lines
/// get `431`. Bounds how much a hostile client can make the daemon
/// buffer before `Content-Length` is even known.
const MAX_HEADER_LINE: usize = 8 << 10;

/// Cap on the total header section (all lines together), so an
/// endless stream of tiny headers is refused too.
const MAX_HEADER_BYTES: usize = 32 << 10;

/// Per-connection socket timeout: a stalled client cannot pin a
/// connection thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Accept connections until `stop` is set, dispatching each on its
/// own thread. Returns once the accept loop has exited and every
/// connection thread has been joined — i.e. after drain.
pub fn serve_http(
    listener: TcpListener,
    dispatcher: Arc<Dispatcher>,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    // ORDER: Acquire — pairs with the Release store in the daemon's
    // shutdown path so the loop sees state written before the stop.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let d = Arc::clone(&dispatcher);
                conns.push(std::thread::spawn(move || {
                    // A broken connection is the client's problem,
                    // never the daemon's.
                    let _ = handle_connection(stream, &d);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, d: &Dispatcher) -> io::Result<()> {
    // The listener is non-blocking; this stream must not be.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;

    let (method, path, body) = match read_request(&mut reader) {
        Ok(parts) => parts,
        Err(RequestError::TooLarge) => {
            d.note_bad_request();
            return write_error(
                &mut out,
                413,
                "Payload Too Large",
                &ServeError::BadRequest(format!("request body exceeds {MAX_BODY} bytes")),
            );
        }
        Err(RequestError::HeadersTooLarge) => {
            d.note_bad_request();
            return write_error(
                &mut out,
                431,
                "Request Header Fields Too Large",
                &ServeError::BadRequest(format!(
                    "request line or headers exceed {MAX_HEADER_BYTES} bytes"
                )),
            );
        }
        Err(RequestError::Malformed(msg)) => {
            d.note_bad_request();
            return write_error(&mut out, 400, "Bad Request", &ServeError::BadRequest(msg));
        }
        Err(RequestError::Io(e)) => return Err(e),
    };

    match (method.as_str(), path.as_str()) {
        ("GET", "/v1/health") => write_json(&mut out, 200, "OK", &d.health().render()),
        ("GET", "/metrics") => write_body(
            &mut out,
            200,
            "OK",
            "text/plain; version=0.0.4",
            d.prometheus().as_bytes(),
        ),
        ("GET", "/debug/flight") => write_body(
            &mut out,
            200,
            "OK",
            "application/x-ndjson",
            d.flight().dump_jsonl().as_bytes(),
        ),
        ("POST", "/v1/search") => {
            let rid = d.next_request_id();
            let parse_started = Instant::now();
            match parse_search(&body) {
                Ok(req) => {
                    d.record_stage(rid, StageKind::Parse, parse_started.elapsed(), 0);
                    match d.search_traced(&req, rid) {
                        Ok(resp) => {
                            let respond_started = Instant::now();
                            let outcome = write_json(&mut out, 200, "OK", &resp.to_wire().render());
                            d.record_stage(rid, StageKind::Respond, respond_started.elapsed(), 0);
                            outcome
                        }
                        Err(e) => {
                            let (code, reason) = e.http_status();
                            write_error(&mut out, code, reason, &e)
                        }
                    }
                }
                Err(e) => {
                    d.note_bad_request();
                    let (code, reason) = e.http_status();
                    write_error(&mut out, code, reason, &e)
                }
            }
        }
        ("POST", "/v1/cancel") => match parse_cancel(&body) {
            Ok(id) => match d.cancel(&id) {
                Ok(()) => write_json(
                    &mut out,
                    200,
                    "OK",
                    &versioned(vec![("cancelled", id.as_str().into())]).render(),
                ),
                Err(e) => {
                    let (code, reason) = e.http_status();
                    write_error(&mut out, code, reason, &e)
                }
            },
            Err(e) => {
                d.note_bad_request();
                let (code, reason) = e.http_status();
                write_error(&mut out, code, reason, &e)
            }
        },
        ("POST", "/v1/shutdown") => {
            d.begin_drain();
            write_json(
                &mut out,
                200,
                "OK",
                &versioned(vec![("draining", true.into())]).render(),
            )
        }
        _ => {
            let e = ServeError::NotFound(format!("{method} {path}"));
            let (code, reason) = e.http_status();
            write_error(&mut out, code, reason, &e)
        }
    }
}

fn parse_search(body: &[u8]) -> Result<SearchRequest, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("request body is not UTF-8".to_string()))?;
    let doc = JsonValue::parse(text).map_err(|e| ServeError::BadRequest(e.to_string()))?;
    SearchRequest::from_wire(&doc)
}

fn parse_cancel(body: &[u8]) -> Result<String, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("request body is not UTF-8".to_string()))?;
    let doc = JsonValue::parse(text).map_err(|e| ServeError::BadRequest(e.to_string()))?;
    doc.get("id")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| ServeError::BadRequest("missing string field \"id\"".to_string()))
}

#[derive(Debug)]
enum RequestError {
    TooLarge,
    HeadersTooLarge,
    Malformed(String),
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Read one newline-terminated line of at most `max` bytes. Returns
/// `None` at EOF. The `take` bound means at most `max + 1` bytes are
/// ever buffered, however long the client keeps streaming — an
/// unbounded line is a typed `431`, not memory growth.
fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
) -> Result<Option<String>, RequestError> {
    let mut buf = Vec::new();
    reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() > max {
        return Err(RequestError::HeadersTooLarge);
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| RequestError::Malformed("header line is not UTF-8".to_string()))
}

/// Parse `METHOD PATH HTTP/1.x`, the headers we care about
/// (`Content-Length`), and exactly that many body bytes. Request
/// line, individual header lines, and the header section as a whole
/// are all length-capped before the body cap even applies.
fn read_request(reader: &mut impl BufRead) -> Result<(String, String, Vec<u8>), RequestError> {
    let line = read_line_bounded(reader, MAX_HEADER_LINE)?
        .ok_or_else(|| RequestError::Malformed("empty request".to_string()))?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), p.to_string()),
        _ => {
            return Err(RequestError::Malformed(format!(
                "unparseable request line {:?}",
                line.trim_end()
            )))
        }
    };
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let header = read_line_bounded(reader, MAX_HEADER_LINE)?
            .ok_or_else(|| RequestError::Malformed("connection closed mid-headers".to_string()))?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".to_string()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((method, path, body))
}

fn write_json(out: &mut impl Write, code: u16, reason: &str, body: &str) -> io::Result<()> {
    write_body(out, code, reason, "application/json", body.as_bytes())
}

fn write_error(out: &mut impl Write, code: u16, reason: &str, err: &ServeError) -> io::Result<()> {
    write_json(out, code, reason, &err.to_wire().render())
}

fn write_body(
    out: &mut impl Write,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<(String, String, Vec<u8>), RequestError> {
        read_request(&mut BufReader::new(Cursor::new(raw.to_vec())))
    }

    #[test]
    fn normal_requests_parse() {
        let (method, path, body) =
            parse(b"POST /v1/search HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/v1/search");
        assert_eq!(body, b"hi");
    }

    #[test]
    fn oversized_header_lines_are_refused_not_buffered() {
        // One header line past the cap: typed refusal, and never more
        // than MAX_HEADER_LINE + 1 bytes buffered.
        let mut raw = b"GET /v1/health HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.resize(raw.len() + MAX_HEADER_LINE + 10, b'a');
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&raw), Err(RequestError::HeadersTooLarge)));

        // An oversized request line is refused the same way.
        let mut raw = b"GET /".to_vec();
        raw.resize(raw.len() + MAX_HEADER_LINE + 10, b'x');
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw), Err(RequestError::HeadersTooLarge)));
    }

    #[test]
    fn unbounded_header_count_is_refused() {
        // Many small headers whose sum passes the section cap.
        let mut raw = b"GET /v1/health HTTP/1.1\r\n".to_vec();
        for i in 0..u64::MAX {
            raw.extend_from_slice(format!("X-{i}: y\r\n").as_bytes());
            if raw.len() > MAX_HEADER_BYTES + 1024 {
                break;
            }
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(RequestError::HeadersTooLarge)));
    }
}
