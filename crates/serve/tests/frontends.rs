//! Front-end conformance: the HTTP and stdio JSON-RPC transports
//! speak the same versioned wire schema over one dispatcher.

use std::io::{BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_core::{AlignConfig, Aligner, GapModel};
use aalign_obs::wire::JsonValue;
use aalign_serve::http::serve_http;
use aalign_serve::rpc::serve_stdio;
use aalign_serve::{Dispatcher, DispatcherConfig};

fn dispatcher() -> Arc<Dispatcher> {
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    Arc::new(Dispatcher::new(
        aligner,
        swissprot_like_db(7, 40),
        2,
        DispatcherConfig::default(),
    ))
}

fn query_text() -> String {
    let mut rng = seeded_rng(1);
    String::from_utf8(named_query(&mut rng, 60).text()).unwrap()
}

struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<std::io::Result<()>>,
}

impl HttpServer {
    fn start(d: Arc<Dispatcher>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_http(listener, d, stop))
        };
        Self { addr, stop, handle }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        self.handle.join().unwrap().unwrap();
    }
}

/// Raw HTTP/1.1 round trip; returns (status code, parsed JSON body).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Drive the JSON-RPC loop with a scripted session; returns one
/// parsed response per request line.
fn rpc(d: &Dispatcher, lines: &[String]) -> Vec<JsonValue> {
    let input = lines.join("\n");
    let mut out = Vec::new();
    serve_stdio(BufReader::new(Cursor::new(input)), &mut out, d).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| JsonValue::parse(l).expect("every response line is JSON"))
        .collect()
}

#[test]
fn http_health_search_and_metrics_round_trip() {
    let d = dispatcher();
    let server = HttpServer::start(Arc::clone(&d));

    let (status, body) = http(server.addr, "GET", "/v1/health", None);
    assert_eq!(status, 200);
    let health = JsonValue::parse(&body).unwrap();
    assert_eq!(
        health.get("schema_version").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(health.get("subjects").and_then(JsonValue::as_u64), Some(40));

    let req = format!(
        "{{\"query\":\"{}\",\"top_n\":5,\"id\":\"http-1\"}}",
        query_text()
    );
    let (status, body) = http(server.addr, "POST", "/v1/search", Some(&req));
    assert_eq!(status, 200, "{body}");
    let report = JsonValue::parse(&body).unwrap();
    assert_eq!(
        report.get("schema_version").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(report.get("id").and_then(|v| v.as_str()), Some("http-1"));
    assert_eq!(
        report.get("batched").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(
        report.get("partial").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(
        report.get("hits").and_then(|h| h.as_array()).unwrap().len(),
        5
    );
    // The embedded report decodes through the shared wire layer —
    // the HTTP body *is* the canonical schema.
    aalign_par::wire::report_from_wire(&report).unwrap();

    let (status, metrics) = http(server.addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE aalign_serve_requests_total counter"));

    server.shutdown();
}

#[test]
fn http_error_paths_are_typed_never_opaque() {
    let d = dispatcher();
    let server = HttpServer::start(Arc::clone(&d));

    // Unknown route.
    let (status, body) = http(server.addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let err = JsonValue::parse(&body).unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("not_found")
    );

    // Unparseable body.
    let (status, body) = http(server.addr, "POST", "/v1/search", Some("{not json"));
    assert_eq!(status, 400);
    let err = JsonValue::parse(&body).unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("bad_request")
    );

    // Engine-level whole-query failure: typed 422, not a 500.
    let (status, body) = http(server.addr, "POST", "/v1/search", Some("{\"query\":\"\"}"));
    assert_eq!(status, 422);
    let err = JsonValue::parse(&body).unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("empty_query")
    );

    // Cancelling an unknown id.
    let (status, _) = http(
        server.addr,
        "POST",
        "/v1/cancel",
        Some("{\"id\":\"ghost\"}"),
    );
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn endless_header_stream_gets_a_431_not_memory_growth() {
    let d = dispatcher();
    let server = HttpServer::start(Arc::clone(&d));

    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET /v1/health HTTP/1.1\r\nX-Pad: ").unwrap();
    // A never-terminated header line one byte past the 8 KiB cap
    // (counting the "X-Pad: " prefix): the daemon must answer as soon
    // as the cap is hit, without waiting for the line to end. Sending
    // exactly to the cap keeps the close clean — no unread bytes, no
    // RST racing the response.
    stream
        .write_all(&vec![b'a'; (8 << 10) + 1 - "X-Pad: ".len()])
        .unwrap();

    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");
    server.shutdown();
}

#[test]
fn http_shutdown_drains_and_refuses_new_requests() {
    let d = dispatcher();
    let server = HttpServer::start(Arc::clone(&d));

    let (status, body) = http(server.addr, "POST", "/v1/shutdown", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");

    let req = format!("{{\"query\":\"{}\"}}", query_text());
    let (status, body) = http(server.addr, "POST", "/v1/search", Some(&req));
    assert_eq!(status, 503);
    let err = JsonValue::parse(&body).unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("draining")
    );
    assert!(d.wait_idle(Duration::from_secs(5)));
    server.shutdown();
}

#[test]
fn rpc_session_mirrors_http_semantics() {
    let d = dispatcher();
    let q = query_text();
    let responses = rpc(
        &d,
        &[
            r#"{"jsonrpc":"2.0","id":1,"method":"health"}"#.to_string(),
            format!(
                r#"{{"jsonrpc":"2.0","id":2,"method":"search","params":{{"query":"{q}","top_n":5}}}}"#
            ),
            r#"{"jsonrpc":"2.0","id":3,"method":"search","params":{"query":""}}"#.to_string(),
            r#"{"jsonrpc":"2.0","id":4,"method":"nope"}"#.to_string(),
            "{garbage".to_string(),
            r#"{"jsonrpc":"2.0","id":5,"method":"cancel","params":{"id":"ghost"}}"#.to_string(),
            r#"{"jsonrpc":"2.0","id":6,"method":"shutdown"}"#.to_string(),
            format!(r#"{{"jsonrpc":"2.0","id":7,"method":"search","params":{{"query":"{q}"}}}}"#),
        ],
    );
    assert_eq!(responses.len(), 8);

    let result = |i: usize| responses[i].get("result").unwrap();
    let error_code = |i: usize| {
        responses[i]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(JsonValue::as_i64)
            .unwrap()
    };

    assert_eq!(result(0).get("status").and_then(|s| s.as_str()), Some("ok"));

    let report = result(1);
    assert_eq!(
        report.get("schema_version").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        report.get("hits").and_then(|h| h.as_array()).unwrap().len(),
        5
    );
    aalign_par::wire::report_from_wire(report).unwrap();

    assert_eq!(error_code(2), -32004, "engine failure");
    assert_eq!(error_code(3), -32601, "method not found");
    assert_eq!(error_code(4), -32700, "parse error");
    assert_eq!(error_code(5), -32005, "unknown cancel id");
    assert_eq!(
        result(6).get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(error_code(7), -32002, "draining refusal");
    // The typed envelope rides along in error.data.
    assert_eq!(
        responses[7]
            .get("error")
            .and_then(|e| e.get("data"))
            .and_then(|d| d.get("error"))
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str()),
        Some("draining")
    );
}

#[test]
fn both_front_ends_return_byte_identical_reports() {
    // Same dispatcher state, same query ⇒ the HTTP response body and
    // the JSON-RPC `result` must match field for field (ids differ
    // by design, so neither request sets one).
    let q = query_text();
    let d = dispatcher();
    let server = HttpServer::start(Arc::clone(&d));
    let req = format!("{{\"query\":\"{q}\",\"top_n\":3}}");
    let (status, http_body) = http(server.addr, "POST", "/v1/search", Some(&req));
    assert_eq!(status, 200);
    server.shutdown();

    let d = dispatcher();
    let responses = rpc(
        &d,
        &[format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"search","params":{{"query":"{q}","top_n":3}}}}"#
        )],
    );
    let rpc_report = responses[0].get("result").unwrap();

    let http_report = JsonValue::parse(&http_body).unwrap();
    let strip_timings = |v: &JsonValue| {
        let a = aalign_par::wire::report_from_wire(v).unwrap();
        (a.hits, a.subjects, a.total_residues, a.partial)
    };
    assert_eq!(strip_timings(&http_report), strip_timings(rpc_report));
}
