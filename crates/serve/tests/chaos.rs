//! Chaos harness: a daemon with a scripted fault plan must convert
//! every injected failure into a well-formed `partial: true` wire
//! response — never a hang, never an opaque error.
//!
//! Every blocking step runs under a watchdog (`recv_timeout`), so a
//! regression that hangs fails the suite instead of wedging it.
#![cfg(feature = "fault-inject")]

use std::io::{BufReader, Cursor, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_core::{AlignConfig, AlignError, Aligner, GapModel};
use aalign_obs::wire::JsonValue;
use aalign_par::FaultPlan;
use aalign_serve::{Dispatcher, DispatcherConfig, SearchRequest};

const WATCHDOG: Duration = Duration::from_secs(60);

fn chaos_dispatcher(plan: FaultPlan) -> Arc<Dispatcher> {
    let aligner = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62));
    Arc::new(Dispatcher::new(
        aligner,
        swissprot_like_db(7, 60),
        2,
        DispatcherConfig::default().fault_plan(Arc::new(plan)),
    ))
}

fn query_text(seed: u64) -> String {
    let mut rng = seeded_rng(seed);
    String::from_utf8(named_query(&mut rng, 60).text()).unwrap()
}

/// Run `f` on its own thread and insist it finishes inside the
/// watchdog — the "never hangs" half of the chaos contract.
fn bounded<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("chaos request hung past the watchdog")
}

#[test]
fn killed_worker_surfaces_as_partial_response_then_daemon_recovers() {
    let d = chaos_dispatcher(FaultPlan::new().kill_worker(0));

    let resp = {
        let d = Arc::clone(&d);
        bounded(move || d.search(&SearchRequest::new(query_text(1))).unwrap())
    };
    assert!(resp.report.partial, "a killed worker means partial results");
    assert!(
        resp.report
            .errors
            .iter()
            .any(|e| matches!(e, AlignError::WorkerLost { .. })),
        "{:?}",
        resp.report.errors
    );
    // The wire document is complete and self-describing.
    let wire = resp.to_wire();
    assert_eq!(wire.get("partial").and_then(JsonValue::as_bool), Some(true));
    let errors = wire.get("errors").unwrap().as_array().unwrap();
    assert!(errors
        .iter()
        .any(|e| e.get("code").and_then(|c| c.as_str()) == Some("worker_lost")));

    // The kill is one-shot and the engine respawns the worker: the
    // next request on the same daemon completes clean.
    let resp = {
        let d = Arc::clone(&d);
        bounded(move || d.search(&SearchRequest::new(query_text(2))).unwrap())
    };
    assert!(!resp.report.partial, "{:?}", resp.report.errors);
    assert!(d.engine().workers_respawned() >= 1);
}

#[test]
fn scripted_panic_surfaces_as_partial_not_500() {
    let d = chaos_dispatcher(FaultPlan::new().panic_on_slot(0));
    let resp = {
        let d = Arc::clone(&d);
        bounded(move || d.search(&SearchRequest::new(query_text(3))).unwrap())
    };
    assert!(resp.report.partial);
    assert!(resp
        .report
        .errors
        .iter()
        .any(|e| matches!(e, AlignError::WorkerPanicked { .. })));
}

#[test]
fn faults_and_deadlines_compose_into_one_partial_report() {
    let d = chaos_dispatcher(FaultPlan::new().kill_worker(0));
    let mut req = SearchRequest::new(query_text(4));
    req.deadline_ms = Some(0);
    let resp = {
        let d = Arc::clone(&d);
        bounded(move || d.search(&req).unwrap())
    };
    assert!(resp.report.partial);
    let wire = resp.to_wire().render();
    assert!(wire.contains("\"partial\":true"), "{wire}");
}

#[test]
fn http_front_end_returns_200_partial_under_faults() {
    let d = chaos_dispatcher(FaultPlan::new().kill_worker(0));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        let d = Arc::clone(&d);
        std::thread::spawn(move || aalign_serve::http::serve_http(listener, d, stop))
    };

    let body = bounded(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(WATCHDOG)).unwrap();
        let req = format!("{{\"query\":\"{}\"}}", query_text(5));
        write!(
            stream,
            "POST /v1/search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{req}",
            req.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    });
    assert!(
        body.starts_with("HTTP/1.1 200 OK"),
        "faults degrade, they do not 500: {body}"
    );
    let payload = body.split_once("\r\n\r\n").unwrap().1;
    let report = JsonValue::parse(payload).unwrap();
    assert_eq!(
        report.get("partial").and_then(JsonValue::as_bool),
        Some(true)
    );

    stop.store(true, Ordering::Release);
    server.join().unwrap().unwrap();
}

#[test]
fn rpc_front_end_returns_partial_result_under_faults() {
    let d = chaos_dispatcher(FaultPlan::new().kill_worker(0));
    let line = format!(
        r#"{{"jsonrpc":"2.0","id":1,"method":"search","params":{{"query":"{}"}}}}"#,
        query_text(6)
    );
    let out = bounded(move || {
        let mut out = Vec::new();
        aalign_serve::rpc::serve_stdio(BufReader::new(Cursor::new(line)), &mut out, &d).unwrap();
        String::from_utf8(out).unwrap()
    });
    let resp = JsonValue::parse(out.lines().next().unwrap()).unwrap();
    let report = resp
        .get("result")
        .expect("partial is a result, not an error");
    assert_eq!(
        report.get("partial").and_then(JsonValue::as_bool),
        Some(true)
    );
}
