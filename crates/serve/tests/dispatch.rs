//! Dispatcher semantics end to end: batching, admission control,
//! quotas, cancellation, deadlines, and graceful drain — everything
//! the front ends rely on, tested without a socket in sight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::SeqDatabase;
use aalign_core::{AlignConfig, AlignError, Aligner, GapModel};
use aalign_obs::wire::JsonValue;
use aalign_serve::{Dispatcher, DispatcherConfig, SearchRequest, ServeError};

/// A sweep must outlive the orchestration around it, so tests use a
/// database big enough that one-thread sweeps take real wall time.
const BIG_DB: usize = 400;

fn aligner() -> Aligner {
    Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
}

fn db(count: usize) -> SeqDatabase {
    swissprot_like_db(7, count)
}

fn query_text(seed: u64, len: usize) -> String {
    let mut rng = seeded_rng(seed);
    String::from_utf8(named_query(&mut rng, len).text()).unwrap()
}

fn dispatcher(threads: usize, count: usize, cfg: DispatcherConfig) -> Arc<Dispatcher> {
    Arc::new(Dispatcher::new(aligner(), db(count), threads, cfg))
}

/// Poll until the dispatcher reports at least `n` in-flight requests
/// (bounded; panics rather than hanging the suite).
fn wait_inflight(d: &Dispatcher, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let inflight = d
            .health()
            .get("inflight")
            .and_then(JsonValue::as_u64)
            .unwrap();
        if inflight >= n {
            return;
        }
        assert!(Instant::now() < deadline, "never reached {n} in flight");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_sweep() {
    let d = dispatcher(1, BIG_DB, DispatcherConfig::default().max_inflight(8));
    let q = query_text(1, 150);

    // Leader starts a slow sweep…
    let leader = {
        let d = Arc::clone(&d);
        let q = q.clone();
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);

    // …and three identical requests arrive while it runs.
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let d = Arc::clone(&d);
            let q = q.clone();
            thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
        })
        .collect();
    let lead = leader.join().unwrap();
    let follows: Vec<_> = followers.into_iter().map(|h| h.join().unwrap()).collect();

    assert!(!lead.batched, "the leader ran its own sweep");
    let batched = follows.iter().filter(|r| r.batched).count();
    assert!(
        batched >= 1,
        "at least one request must coalesce onto the in-flight sweep"
    );
    // The batching is *observable in the metrics*: the shared report
    // carries the follower count, and the service counter agrees.
    for r in follows.iter().filter(|r| r.batched) {
        assert!(
            Arc::ptr_eq(&r.report, &lead.report),
            "followers share the leader's report, not a copy"
        );
        assert_eq!(r.report.metrics.coalesced as usize, batched);
    }
    let counters = d.health();
    let coalesced_total = counters
        .get("counters")
        .and_then(|c| c.get("coalesced_total"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert_eq!(coalesced_total as usize, batched);
    assert!(d
        .prometheus()
        .contains(&format!("aalign_serve_coalesced_total {batched}")));

    // Identical query *after* the sweep finished: fresh sweep, not
    // stale cache — batching is strictly in-flight coalescing.
    let later = d.search(&SearchRequest::new(q)).unwrap();
    assert!(!later.batched);
    assert_eq!(later.report.hits, lead.report.hits);
}

#[test]
fn no_batch_requests_never_coalesce() {
    let d = dispatcher(2, 200, DispatcherConfig::default().max_inflight(4));
    let q = query_text(2, 80);
    let mut req = SearchRequest::new(q);
    req.no_batch = true;
    let a = {
        let d = Arc::clone(&d);
        let req = req.clone();
        thread::spawn(move || d.search(&req).unwrap())
    };
    let b = d.search(&req).unwrap();
    let a = a.join().unwrap();
    assert!(!a.batched && !b.batched);
    assert_eq!(a.report.hits, b.report.hits, "same inputs, same hits");
}

#[test]
fn full_queue_is_refused_immediately_as_overloaded() {
    let d = dispatcher(
        1,
        BIG_DB,
        DispatcherConfig::default().max_inflight(1).max_queued(0),
    );
    let blocker = {
        let d = Arc::clone(&d);
        let q = query_text(3, 150);
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);

    // Different query (no coalescing possible), zero queue slots:
    // the refusal must be immediate and typed.
    let t = Instant::now();
    let err = d
        .search(&SearchRequest::new(query_text(4, 80)))
        .unwrap_err();
    assert!(matches!(err, ServeError::Overloaded { .. }), "{err}");
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "overload must not queue-wait"
    );
    let wire = err.to_wire().render();
    assert!(wire.contains("\"schema_version\":1"), "{wire}");
    assert!(wire.contains("\"code\":\"overloaded\""), "{wire}");
    blocker.join().unwrap();
}

#[test]
fn deadline_expiring_in_queue_yields_a_partial_report_not_an_error() {
    let d = dispatcher(
        1,
        BIG_DB,
        DispatcherConfig::default().max_inflight(1).max_queued(4),
    );
    let blocker = {
        let d = Arc::clone(&d);
        let q = query_text(5, 150);
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);

    let mut req = SearchRequest::new(query_text(6, 80));
    req.deadline_ms = Some(60);
    let resp = d.search(&req).unwrap();
    assert!(resp.report.partial);
    assert!(resp
        .report
        .errors
        .iter()
        .any(|e| matches!(e, AlignError::DeadlineExceeded)));
    blocker.join().unwrap();
}

#[test]
fn tenant_quota_fences_noisy_neighbors() {
    let d = dispatcher(
        1,
        BIG_DB,
        DispatcherConfig::default().max_inflight(4).tenant_quota(1),
    );
    let blocker = {
        let d = Arc::clone(&d);
        let mut req = SearchRequest::new(query_text(7, 150));
        req.tenant = Some("noisy".to_string());
        thread::spawn(move || d.search(&req).unwrap())
    };
    wait_inflight(&d, 1);

    let mut req = SearchRequest::new(query_text(8, 60));
    req.tenant = Some("noisy".to_string());
    let err = d.search(&req).unwrap_err();
    assert_eq!(
        err,
        ServeError::QuotaExhausted {
            tenant: "noisy".to_string(),
            quota: 1
        }
    );

    // A different tenant is unaffected.
    let mut req = SearchRequest::new(query_text(8, 60));
    req.tenant = Some("quiet".to_string());
    assert!(d.search(&req).is_ok());
    blocker.join().unwrap();

    // The noisy tenant's slot is released once its request finishes.
    let mut req = SearchRequest::new(query_text(8, 60));
    req.tenant = Some("noisy".to_string());
    assert!(d.search(&req).is_ok());
}

#[test]
fn cancellation_by_request_id_stops_an_inflight_search() {
    let d = dispatcher(1, BIG_DB, DispatcherConfig::default());
    let handle = {
        let d = Arc::clone(&d);
        let mut req = SearchRequest::new(query_text(9, 150));
        req.id = Some("victim".to_string());
        thread::spawn(move || d.search(&req))
    };
    wait_inflight(&d, 1);
    d.cancel("victim").unwrap();
    let err = handle.join().unwrap().unwrap_err();
    assert_eq!(err, ServeError::Engine(AlignError::Cancelled));

    // The id is deregistered once the request resolves…
    assert!(matches!(d.cancel("victim"), Err(ServeError::NotFound(_))));
    // …and unknown ids were never registered at all.
    assert!(matches!(d.cancel("ghost"), Err(ServeError::NotFound(_))));
}

#[test]
fn cancelling_the_leader_does_not_cancel_coalesced_followers() {
    let d = dispatcher(1, BIG_DB, DispatcherConfig::default().max_inflight(8));
    let q = query_text(15, 150);
    let leader = {
        let d = Arc::clone(&d);
        let mut req = SearchRequest::new(q.clone());
        req.id = Some("leader".to_string());
        thread::spawn(move || d.search(&req))
    };
    wait_inflight(&d, 1);
    let follower = {
        let d = Arc::clone(&d);
        let q = q.clone();
        thread::spawn(move || d.search(&SearchRequest::new(q)))
    };
    wait_inflight(&d, 2);
    // Give the second request a beat to attach to the leader's
    // flight before the leader is cancelled out from under it.
    thread::sleep(Duration::from_millis(50));
    d.cancel("leader").unwrap();

    // The cancelled caller gets the cancellation…
    let err = leader.join().unwrap().unwrap_err();
    assert_eq!(err, ServeError::Engine(AlignError::Cancelled));
    // …but the coalesced request re-runs the sweep and completes.
    let resp = follower.join().unwrap().unwrap();
    assert!(!resp.report.partial, "follower must not inherit the cancel");
    assert!(!resp.report.hits.is_empty());

    // Exactly one request was cancelled, per the counters.
    let cancelled = d
        .health()
        .get("counters")
        .and_then(|c| c.get("cancelled"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert_eq!(cancelled, 1);
}

#[test]
fn duplicate_inflight_request_ids_are_rejected() {
    let d = dispatcher(1, BIG_DB, DispatcherConfig::default().max_inflight(4));
    let first = {
        let d = Arc::clone(&d);
        let mut req = SearchRequest::new(query_text(10, 150));
        req.id = Some("dup".to_string());
        thread::spawn(move || d.search(&req).unwrap())
    };
    wait_inflight(&d, 1);
    let mut req = SearchRequest::new(query_text(11, 60));
    req.id = Some("dup".to_string());
    let err = d.search(&req).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    first.join().unwrap();

    // After the first resolves, the id is reusable.
    let mut req = SearchRequest::new(query_text(11, 60));
    req.id = Some("dup".to_string());
    assert!(d.search(&req).is_ok());
}

#[test]
fn invalid_queries_are_bad_requests_not_engine_errors() {
    let d = dispatcher(1, 20, DispatcherConfig::default());
    let err = d
        .search(&SearchRequest::new("NOT A PROTEIN 123"))
        .unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    // Empty queries reach the engine and come back typed.
    let err = d.search(&SearchRequest::new("")).unwrap_err();
    assert_eq!(err, ServeError::Engine(AlignError::EmptyQuery));
}

#[test]
fn graceful_drain_completes_inflight_bit_exact_and_refuses_new() {
    let d = dispatcher(2, BIG_DB, DispatcherConfig::default());
    let q = query_text(12, 150);
    // Reference result from an identical dispatcher, undisturbed.
    let reference = dispatcher(2, BIG_DB, DispatcherConfig::default())
        .search(&SearchRequest::new(q.clone()))
        .unwrap();

    let inflight = {
        let d = Arc::clone(&d);
        let q = q.clone();
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);
    d.begin_drain();

    // New work is refused with the typed `draining` response.
    let err = d
        .search(&SearchRequest::new(query_text(13, 60)))
        .unwrap_err();
    assert_eq!(err, ServeError::Draining);
    let wire = err.to_wire().render();
    assert!(wire.contains("\"code\":\"draining\""), "{wire}");
    assert_eq!(
        d.health().get("status").and_then(|s| s.as_str()),
        Some("draining")
    );

    // The in-flight request runs to completion — same hits, bit for
    // bit, as the undisturbed run.
    let resp = inflight.join().unwrap();
    assert!(!resp.report.partial, "drain must not truncate the sweep");
    assert_eq!(resp.report.hits, reference.report.hits);
    assert!(d.wait_idle(Duration::from_secs(10)));
}

#[test]
fn wait_idle_times_out_while_work_is_still_running() {
    let d = dispatcher(1, BIG_DB, DispatcherConfig::default());
    let inflight = {
        let d = Arc::clone(&d);
        let q = query_text(14, 150);
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);
    assert!(!d.wait_idle(Duration::from_millis(50)));
    inflight.join().unwrap();
    assert!(d.wait_idle(Duration::from_secs(5)));
}

#[test]
fn zero_deadline_requests_complete_with_partial_reports_under_load() {
    // A herd of expired-deadline requests: every one must complete
    // with a well-formed partial report — no hangs, no refusals.
    let d = dispatcher(2, 200, DispatcherConfig::default().max_inflight(2));
    let done = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel();
    for i in 0..6u64 {
        let d = Arc::clone(&d);
        let done = Arc::clone(&done);
        let tx = tx.clone();
        thread::spawn(move || {
            let mut req = SearchRequest::new(query_text(20 + i, 80));
            req.deadline_ms = Some(0);
            req.no_batch = i % 2 == 0;
            let resp = d.search(&req).unwrap();
            assert!(resp.report.partial);
            assert!(resp
                .report
                .errors
                .iter()
                .any(|e| matches!(e, AlignError::DeadlineExceeded)));
            // The wire document is well-formed and marked partial.
            let wire = resp.to_wire().render();
            assert!(wire.contains("\"partial\":true"), "{wire}");
            done.fetch_add(1, Ordering::Relaxed);
            tx.send(()).unwrap();
        });
    }
    drop(tx);
    let watchdog = Instant::now() + Duration::from_secs(60);
    for _ in 0..6 {
        let left = watchdog.saturating_duration_since(Instant::now());
        rx.recv_timeout(left)
            .expect("an expired-deadline request hung");
    }
    assert_eq!(done.load(Ordering::Relaxed), 6);
}

#[test]
fn startup_certificates_surface_in_health_and_reports() {
    // The dispatcher proves width certificates against the database's
    // length bounds at construction; health advertises them and every
    // sweep stamps the certified width into its metrics.
    let d = dispatcher(1, 20, DispatcherConfig::default());
    let health = d.health();
    let cert = health.get("certified").expect("health carries certified");
    let widths = cert
        .get("granted_widths")
        .and_then(JsonValue::as_array)
        .expect("granted_widths is an array");
    // BLOSUM62 with affine(-10,-2) over realistic protein lengths:
    // i8 saturates, i16 is provably rescue-free.
    let widths: Vec<u64> = widths.iter().filter_map(JsonValue::as_u64).collect();
    assert!(widths.contains(&16), "i16 must be certified: {widths:?}");
    assert!(!widths.contains(&8), "i8 must be denied here: {widths:?}");
    let max_subject = cert.get("max_subject").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(max_subject as usize, db(20).stats().max_len);

    let resp = d.search(&SearchRequest::new(query_text(33, 120))).unwrap();
    assert_eq!(resp.report.metrics.certified_width, 16);
    assert_eq!(resp.report.metrics.rescued, 0);
}
