//! Request-scoped tracing end to end: stage events in the flight
//! recorder, trace-id propagation, per-stage histograms on the
//! service surfaces — and the guarantee that tracing never changes
//! a result.

use std::io::{BufReader, Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::SeqDatabase;
use aalign_core::{AlignConfig, Aligner, GapModel};
use aalign_obs::jsonl::read_events;
use aalign_obs::wire::{histogram_from_wire, JsonValue};
use aalign_obs::{StageKind, TraceEvent};
use aalign_serve::http::serve_http;
use aalign_serve::rpc::serve_stdio;
use aalign_serve::{Dispatcher, DispatcherConfig, SearchRequest};

fn aligner() -> Aligner {
    Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
}

fn db(count: usize) -> SeqDatabase {
    swissprot_like_db(7, count)
}

fn dispatcher(threads: usize, count: usize, cfg: DispatcherConfig) -> Arc<Dispatcher> {
    Arc::new(Dispatcher::new(aligner(), db(count), threads, cfg))
}

fn query_text(seed: u64, len: usize) -> String {
    let mut rng = seeded_rng(seed);
    String::from_utf8(named_query(&mut rng, len).text()).unwrap()
}

/// Poll until the dispatcher reports at least `n` in-flight requests.
fn wait_inflight(d: &Dispatcher, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let inflight = d
            .health()
            .get("inflight")
            .and_then(JsonValue::as_u64)
            .unwrap();
        if inflight >= n {
            return;
        }
        assert!(Instant::now() < deadline, "never reached {n} in flight");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tracing_never_changes_the_result() {
    // The same query through the traced path and the self-assigning
    // path must produce bit-identical hit lists — tracing is
    // observation, not behavior.
    let d = dispatcher(2, 60, DispatcherConfig::default());
    let mut req = SearchRequest::new(query_text(11, 70));
    req.top_n = 8;

    let plain = d.search(&req).unwrap();
    let traced = d.search_traced(&req, 4242).unwrap();
    assert_eq!(traced.report.hits, plain.report.hits);
    assert_eq!(traced.request_id, 4242, "caller-assigned id is echoed");
    assert_ne!(plain.request_id, 0, "self-assigned ids are never 0");

    // And the id rides the wire when nonzero.
    let wire = traced.to_wire();
    assert_eq!(
        wire.get("request_id").and_then(JsonValue::as_u64),
        Some(4242)
    );
}

#[test]
fn every_stage_event_carries_its_request_id() {
    let d = dispatcher(2, 40, DispatcherConfig::default());
    let mut rids = Vec::new();
    for seed in 0..3u64 {
        let req = SearchRequest::new(query_text(20 + seed, 50));
        rids.push(d.search(&req).unwrap().request_id);
    }

    let events = d.flight().snapshot();
    assert!(!events.is_empty(), "searches must leave stage events");
    for ev in &events {
        assert_ne!(ev.request, 0, "stage event without a request id: {ev:?}");
    }
    // Each request leaves at least its queue and sweep stages.
    for rid in rids {
        for stage in [StageKind::Queue, StageKind::Sweep] {
            assert!(
                events.iter().any(|e| e.request == rid && e.stage == stage),
                "request {rid} has no {stage:?} stage event"
            );
        }
    }
}

#[test]
fn coalesced_followers_reference_the_leaders_sweep() {
    let d = dispatcher(1, 400, DispatcherConfig::default().max_inflight(8));
    let q = query_text(1, 150);

    let leader = {
        let d = Arc::clone(&d);
        let q = q.clone();
        thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
    };
    wait_inflight(&d, 1);
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let d = Arc::clone(&d);
            let q = q.clone();
            thread::spawn(move || d.search(&SearchRequest::new(q)).unwrap())
        })
        .collect();
    let lead = leader.join().unwrap();
    let follows: Vec<_> = followers.into_iter().map(|h| h.join().unwrap()).collect();

    let events = d.flight().snapshot();
    let batched: Vec<_> = follows.iter().filter(|r| r.batched).collect();
    assert!(!batched.is_empty(), "at least one request must coalesce");
    for r in &batched {
        let wait = events
            .iter()
            .find(|e| e.request == r.request_id && e.stage == StageKind::BatchWait)
            .unwrap_or_else(|| panic!("follower {} left no batch_wait event", r.request_id));
        assert_eq!(
            wait.ref_request, lead.request_id,
            "follower must reference the leader's request id"
        );
    }
    // The leader itself ran the sweep under its own id.
    assert!(events
        .iter()
        .any(|e| e.request == lead.request_id && e.stage == StageKind::Sweep));
    // The leader's report carries its queue wait and end-to-end time.
    assert_eq!(lead.report.metrics.queue_wait.count(), 1);
    assert_eq!(lead.report.metrics.request_e2e.count(), 1);
}

#[test]
fn flight_dump_parses_as_trace_jsonl() {
    let d = dispatcher(1, 30, DispatcherConfig::default());
    d.search(&SearchRequest::new(query_text(5, 40))).unwrap();

    let dump = d.flight().dump_jsonl();
    assert!(!dump.is_empty());
    let events = read_events(dump.as_bytes()).expect("dump must be valid trace JSONL");
    for ev in events {
        match ev {
            TraceEvent::Stage { request, .. } => assert_ne!(request, 0),
            other => panic!("flight dump contains a non-stage event: {other:?}"),
        }
    }
}

#[test]
fn health_stages_decode_as_lossless_histograms() {
    let d = dispatcher(2, 40, DispatcherConfig::default());
    let n = 4;
    for seed in 0..n {
        d.search(&SearchRequest::new(query_text(30 + seed, 50)))
            .unwrap();
    }

    let health = d.health();
    let stages = health.get("stages").expect("health carries stage hists");
    for key in [
        "parse_ns",
        "queue_wait_ns",
        "batch_wait_ns",
        "sweep_ns",
        "merge_ns",
        "respond_ns",
        "e2e_ns",
    ] {
        let h = histogram_from_wire(stages.get(key).unwrap())
            .unwrap_or_else(|e| panic!("stage {key} does not decode: {e}"));
        match key {
            // Sequential dispatcher-level searches have no front end
            // (no parse/respond) and never coalesce.
            "parse_ns" | "batch_wait_ns" | "respond_ns" => assert!(h.is_empty()),
            _ => assert_eq!(h.count(), n, "{key} must record every request"),
        }
    }
}

#[test]
fn prometheus_has_gauges_and_stage_summaries() {
    let d = dispatcher(2, 40, DispatcherConfig::default().tenant_quota(4));
    let mut req = SearchRequest::new(query_text(8, 50));
    req.tenant = Some("teamA".to_string());
    d.search(&req).unwrap();

    let text = d.prometheus();
    assert!(text.contains("# TYPE aalign_serve_inflight gauge"));
    assert!(text.contains("aalign_serve_inflight 0"));
    assert!(text.contains("# TYPE aalign_serve_queued gauge"));
    assert!(text.contains("# TYPE aalign_serve_tenant_inflight gauge"));
    assert!(text.contains("# TYPE aalign_serve_stage_sweep_seconds summary"));
    assert!(text.contains("aalign_serve_stage_sweep_seconds_count 1"));
    assert!(text.contains("aalign_serve_stage_e2e_seconds{quantile=\"0.999\"}"));
    assert!(text.contains("aalign_serve_flight_events_recorded"));

    // A tenant mid-flight shows up in the per-tenant gauge.
    let slow = {
        let d = Arc::clone(&d);
        let mut req = SearchRequest::new(query_text(9, 150));
        req.tenant = Some("teamB".to_string());
        thread::spawn(move || d.search(&req).unwrap())
    };
    wait_inflight(&d, 1);
    assert!(d
        .prometheus()
        .contains("aalign_serve_tenant_inflight{tenant=\"teamB\"} 1"));
    slow.join().unwrap();
}

#[test]
fn http_debug_flight_serves_the_ring_as_ndjson() {
    let d = dispatcher(2, 40, DispatcherConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let d = Arc::clone(&d);
        let stop = Arc::clone(&stop);
        thread::spawn(move || serve_http(listener, d, stop))
    };

    let http = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|c| c.parse().ok())
            .unwrap();
        let payload = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    };

    let req = format!("{{\"query\":\"{}\",\"top_n\":3}}", query_text(3, 60));
    let (status, body) = http("POST", "/v1/search", &req);
    assert_eq!(status, 200, "{body}");
    let response = JsonValue::parse(&body).unwrap();
    let rid = response
        .get("request_id")
        .and_then(JsonValue::as_u64)
        .expect("HTTP responses carry the trace id");

    let (status, dump) = http("GET", "/debug/flight", "");
    assert_eq!(status, 200);
    let events = read_events(dump.as_bytes()).expect("flight dump is trace JSONL");
    assert!(!events.is_empty());
    // The HTTP front end contributes parse and respond stages under
    // the same id the dispatcher used for queue and sweep.
    for stage in ["parse", "queue", "sweep", "merge"] {
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::Stage { request, stage: s, .. }
                if *request == rid && s.as_str() == stage
            )),
            "no {stage} event for request {rid} in:\n{dump}"
        );
    }

    stop.store(true, Ordering::Release);
    server.join().unwrap().unwrap();
}

#[test]
fn rpc_search_is_traced_too() {
    let d = dispatcher(2, 40, DispatcherConfig::default());
    let q = query_text(4, 60);
    let input =
        format!(r#"{{"jsonrpc":"2.0","id":1,"method":"search","params":{{"query":"{q}"}}}}"#);
    let mut out = Vec::new();
    serve_stdio(BufReader::new(Cursor::new(input)), &mut out, &d).unwrap();
    let response = JsonValue::parse(String::from_utf8(out).unwrap().trim()).unwrap();
    let rid = response
        .get("result")
        .and_then(|r| r.get("request_id"))
        .and_then(JsonValue::as_u64)
        .expect("RPC responses carry the trace id");

    let events = d.flight().snapshot();
    for stage in [StageKind::Parse, StageKind::Queue, StageKind::Sweep] {
        assert!(
            events.iter().any(|e| e.request == rid && e.stage == stage),
            "no {stage:?} event for RPC request {rid}"
        );
    }
}
