//! Robustness: FASTA parsing never panics and the writer/parser pair
//! round-trips arbitrary valid sequences.

use aalign_bio::alphabet::PROTEIN;
use aalign_bio::fasta::{parse_fasta, read_fasta, write_fasta, FastaError};
use aalign_bio::Sequence;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_fasta(&input, &PROTEIN);
    }

    #[test]
    fn fasta_like_soup_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just(">id desc".to_string()),
                Just("HEAGAWGHEE".to_string()),
                Just("".to_string()),
                Just(">".to_string()),
                Just("NOT!VALID".to_string()),
                Just("   ".to_string()),
            ],
            0..30,
        )
    ) {
        let _ = parse_fasta(&lines.join("\n"), &PROTEIN);
    }

    #[test]
    fn round_trip_arbitrary_records(
        seqs in proptest::collection::vec(
            (
                "[A-Za-z0-9_.-]{1,12}",
                proptest::collection::vec(0u8..24, 1..120),
            ),
            1..8,
        ),
        width in 1usize..100,
    ) {
        let records: Vec<Sequence> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, (id, idx))| {
                Sequence::from_indices(format!("{id}_{i}"), &PROTEIN, idx)
            })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let parsed = parse_fasta(std::str::from_utf8(&buf).unwrap(), &PROTEIN).unwrap();
        prop_assert_eq!(parsed, records);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw byte soup — including invalid UTF-8 — must produce a
    /// structured `FastaError`, never a panic or a bare I/O error
    /// about encoding.
    #[test]
    fn arbitrary_bytes_never_panic_and_never_leak_utf8_io_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        match read_fasta(&bytes[..], &PROTEIN) {
            Ok(_) => {}
            Err(FastaError::Io(e)) => {
                prop_assert!(
                    e.kind() != std::io::ErrorKind::InvalidData,
                    "UTF-8 trouble must surface as NonUtf8/BadResidue, got {e}"
                );
            }
            Err(_) => {}
        }
    }

    /// Chopping a valid stream at any byte offset yields either a
    /// shorter valid parse or a structured error — truncation can
    /// never fabricate residues that were not in the input.
    #[test]
    fn truncation_at_any_offset_never_fabricates_residues(
        cut in 0usize..64,
    ) {
        let full = b">one first\nHEAG\nAWGH\n>two\nPAWHEAE\n";
        let cut = cut.min(full.len());
        if let Ok(seqs) = read_fasta(&full[..cut], &PROTEIN) {
            let whole = read_fasta(&full[..], &PROTEIN).unwrap();
            for s in &seqs {
                let orig = whole.iter().find(|w| w.id() == s.id());
                prop_assert!(
                    orig.is_some_and(|w| w.text().starts_with(&s.text())),
                    "cut at {cut}: {:?} is not a prefix of the original",
                    s.id()
                );
            }
        }
    }
}

/// The new failure taxonomy end-to-end: one mangled database file,
/// every corruption class mapped to its precise, positioned error.
#[test]
fn corruption_classes_map_to_precise_errors() {
    let fail = |bytes: &[u8]| read_fasta(bytes, &PROTEIN).unwrap_err();
    assert!(matches!(
        fail(b"HE\n"),
        FastaError::MissingHeader { line: 1 }
    ));
    assert!(matches!(
        fail(b">a\n>b\nHE\n"),
        FastaError::EmptyRecord { line: 1, .. }
    ));
    assert!(matches!(
        fail(b">ok\nHE\n>tail\n"),
        FastaError::Truncated { line: 3, .. }
    ));
    assert!(matches!(
        fail(b">\xC3\x28bad\nHE\n"),
        FastaError::NonUtf8 { line: 1 }
    ));
}

/// The shipped example matrix file parses to exactly the embedded,
/// verified BLOSUM62 table.
#[test]
fn shipped_blosum62_file_matches_embedded_table() {
    use aalign_bio::matrices::{SubstMatrix, BLOSUM62};
    let text = include_str!("../../../assets/BLOSUM62.txt");
    let parsed = SubstMatrix::parse_ncbi("file", &PROTEIN, text).unwrap();
    for a in 0..24u8 {
        for b in 0..24u8 {
            assert_eq!(parsed.score(a, b), BLOSUM62.score(a, b), "({a},{b})");
        }
    }
}
