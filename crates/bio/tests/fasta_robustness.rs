//! Robustness: FASTA parsing never panics and the writer/parser pair
//! round-trips arbitrary valid sequences.

use aalign_bio::alphabet::PROTEIN;
use aalign_bio::fasta::{parse_fasta, write_fasta};
use aalign_bio::Sequence;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_fasta(&input, &PROTEIN);
    }

    #[test]
    fn fasta_like_soup_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just(">id desc".to_string()),
                Just("HEAGAWGHEE".to_string()),
                Just("".to_string()),
                Just(">".to_string()),
                Just("NOT!VALID".to_string()),
                Just("   ".to_string()),
            ],
            0..30,
        )
    ) {
        let _ = parse_fasta(&lines.join("\n"), &PROTEIN);
    }

    #[test]
    fn round_trip_arbitrary_records(
        seqs in proptest::collection::vec(
            (
                "[A-Za-z0-9_.-]{1,12}",
                proptest::collection::vec(0u8..24, 1..120),
            ),
            1..8,
        ),
        width in 1usize..100,
    ) {
        let records: Vec<Sequence> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, (id, idx))| {
                Sequence::from_indices(format!("{id}_{i}"), &PROTEIN, idx)
            })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let parsed = parse_fasta(std::str::from_utf8(&buf).unwrap(), &PROTEIN).unwrap();
        prop_assert_eq!(parsed, records);
    }
}

/// The shipped example matrix file parses to exactly the embedded,
/// verified BLOSUM62 table.
#[test]
fn shipped_blosum62_file_matches_embedded_table() {
    use aalign_bio::matrices::{SubstMatrix, BLOSUM62};
    let text = include_str!("../../../assets/BLOSUM62.txt");
    let parsed = SubstMatrix::parse_ncbi("file", &PROTEIN, text).unwrap();
    for a in 0..24u8 {
        for b in 0..24u8 {
            assert_eq!(parsed.score(a, b), BLOSUM62.score(a, b), "({a},{b})");
        }
    }
}
