//! Seeded synthetic sequence generation.
//!
//! The paper evaluates on NCBI-protein queries, BLAST-selected
//! subjects in nine query-coverage/max-identity (QC/MI) classes, and
//! the swiss-prot database. None of those are redistributable inside
//! a test suite, so this module builds statistical equivalents:
//!
//! * [`random_protein`] — residues drawn from the Robinson–Robinson
//!   background frequencies (what BLAST assumes for random protein);
//! * [`named_query`] — a random protein named like the paper's
//!   queries (`Q282`, `Q2000`, …);
//! * [`PairSpec::generate`] — a subject with controlled QC and MI
//!   against a given query (the independent variables of Fig. 10);
//! * [`swissprot_like_db`] — a database whose length distribution
//!   matches swiss-prot's (gamma-ish, mean ≈ 360 aa).
//!
//! Everything is driven by a caller-provided seeded RNG, so data sets
//! are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::alphabet::PROTEIN;
use crate::db::SeqDatabase;
use crate::seq::Sequence;

/// Robinson–Robinson amino-acid background frequencies (per mille),
/// in PROTEIN order for the 20 standard residues.
const BACKGROUND_PERMILLE: [u32; 20] = [
    78, // A
    51, // R
    45, // N
    54, // D
    19, // C
    43, // Q
    63, // E
    74, // G
    22, // H
    51, // I
    90, // L
    57, // K
    22, // M
    39, // F
    52, // P
    71, // S
    58, // T
    13, // W
    32, // Y
    64, // V
];

/// Deterministic RNG from a seed (StdRng is stable within a rand
/// major version, which is all reproducibility here needs).
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draw one residue index from the background distribution.
pub fn random_residue<R: Rng>(rng: &mut R) -> u8 {
    let total: u32 = BACKGROUND_PERMILLE.iter().sum();
    let mut ticket = rng.random_range(0..total);
    for (i, &w) in BACKGROUND_PERMILLE.iter().enumerate() {
        if ticket < w {
            return i as u8;
        }
        ticket -= w;
    }
    unreachable!("ticket exceeds total weight")
}

/// A random protein of `len` residues with background composition.
pub fn random_protein<R: Rng>(rng: &mut R, id: impl Into<String>, len: usize) -> Sequence {
    let residues = (0..len).map(|_| random_residue(rng)).collect();
    Sequence::from_indices(id, &PROTEIN, residues)
}

/// A random protein named after its length, paper-style (`Q282`).
pub fn named_query<R: Rng>(rng: &mut R, len: usize) -> Sequence {
    random_protein(rng, format!("Q{len}"), len)
}

/// The three similarity levels of the paper's Fig. 10 axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// > 70 %
    Hi,
    /// 30 – 70 %
    Md,
    /// < 30 %
    Lo,
}

impl Level {
    /// Sample a concrete fraction inside the level's band.
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = match self {
            Level::Hi => (0.75, 0.95),
            Level::Md => (0.35, 0.65),
            Level::Lo => (0.05, 0.25),
        };
        rng.random_range(lo..hi)
    }

    /// Short label used in figure axes (`hi`/`md`/`lo`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Hi => "hi",
            Level::Md => "md",
            Level::Lo => "lo",
        }
    }

    /// All three levels, high to low.
    pub const ALL: [Level; 3] = [Level::Hi, Level::Md, Level::Lo];
}

/// Specification of a query/subject pair: query coverage × max
/// identity, plus an optional indel rate inside the covered region.
///
/// ```
/// use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
/// let mut rng = seeded_rng(1);
/// let q = named_query(&mut rng, 200);
/// let pair = PairSpec::new(Level::Hi, Level::Md).generate(&mut rng, &q);
/// assert!(pair.realized_qc > 0.7);
/// assert!(pair.realized_mi < 0.72);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PairSpec {
    /// Fraction of the query covered by the subject (QC).
    pub qc: Level,
    /// Identity within the covered region (MI).
    pub mi: Level,
    /// Per-position probability of a 1-residue indel in the covered
    /// region (0 disables; the paper's BLAST-selected subjects have
    /// scattered short indels).
    pub indel_rate: f64,
}

impl PairSpec {
    /// A pair spec with the default light indel rate.
    pub fn new(qc: Level, mi: Level) -> Self {
        Self {
            qc,
            mi,
            indel_rate: 0.01,
        }
    }

    /// Paper-style label, e.g. `hi_md`.
    pub fn label(&self) -> String {
        format!("{}_{}", self.qc.label(), self.mi.label())
    }

    /// Generate a subject realizing this spec against `query`.
    ///
    /// The subject consists of a random prefix, a mutated copy of a
    /// query window of length `QC·|query|` (each kept position is
    /// identical with probability `MI`), and a random suffix. Flank
    /// lengths are chosen so the subject length is close to the
    /// query's. The realized QC/MI fractions are reported in the
    /// returned [`GeneratedPair`].
    pub fn generate<R: Rng>(&self, rng: &mut R, query: &Sequence) -> GeneratedPair {
        let m = query.len();
        assert!(m >= 4, "query too short to derive a pair");
        let qc = self.qc.sample(rng);
        let mi = self.mi.sample(rng);
        let overlap = ((m as f64 * qc) as usize).clamp(1, m);
        let start = rng.random_range(0..=m - overlap);

        let mut core: Vec<u8> = Vec::with_capacity(overlap + 8);
        let mut identical = 0usize;
        for &res in &query.indices()[start..start + overlap] {
            if self.indel_rate > 0.0 && rng.random_bool(self.indel_rate / 2.0) {
                continue; // deletion
            }
            if rng.random_bool(mi) {
                core.push(res);
                identical += 1;
            } else {
                // substitute with a different residue
                loop {
                    let r = random_residue(rng);
                    if r != res {
                        core.push(r);
                        break;
                    }
                }
            }
            if self.indel_rate > 0.0 && rng.random_bool(self.indel_rate / 2.0) {
                core.push(random_residue(rng)); // insertion
            }
        }

        // Flanks: pad the subject back up to ≈ query length.
        let flank_total = m.saturating_sub(core.len()).max(2);
        let prefix_len = rng.random_range(0..=flank_total);
        let suffix_len = flank_total - prefix_len;
        let mut residues = Vec::with_capacity(prefix_len + core.len() + suffix_len);
        residues.extend((0..prefix_len).map(|_| random_residue(rng)));
        residues.extend(core);
        residues.extend((0..suffix_len).map(|_| random_residue(rng)));

        GeneratedPair {
            subject: Sequence::from_indices(
                format!("{}_{}", query.id(), self.label()),
                &PROTEIN,
                residues,
            ),
            realized_qc: overlap as f64 / m as f64,
            realized_mi: identical as f64 / overlap as f64,
            query_window: (start, start + overlap),
        }
    }
}

/// A generated subject plus the similarity it actually realizes.
#[derive(Debug, Clone)]
pub struct GeneratedPair {
    /// The subject sequence.
    pub subject: Sequence,
    /// Realized query coverage (window / query length).
    pub realized_qc: f64,
    /// Realized identity within the covered window.
    pub realized_mi: f64,
    /// The covered query window `[start, end)`.
    pub query_window: (usize, usize),
}

/// All nine QC×MI combinations, in the paper's axis order
/// (`hi_hi, hi_md, hi_lo, md_hi, …, lo_lo`).
pub fn nine_similarity_specs() -> Vec<PairSpec> {
    let mut out = Vec::with_capacity(9);
    for qc in Level::ALL {
        for mi in Level::ALL {
            out.push(PairSpec::new(qc, mi));
        }
    }
    out
}

/// Sample a swiss-prot-like sequence length: gamma(shape=2) with mean
/// `mean_len`, floored at `min_len`.
pub fn swissprot_like_len<R: Rng>(rng: &mut R, mean_len: f64, min_len: usize) -> usize {
    // Gamma(2, θ) = sum of two exponentials with scale θ = mean/2.
    let theta = mean_len / 2.0;
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(f64::EPSILON..1.0);
    let len = (-(u1.ln()) - u2.ln()) * theta;
    (len as usize).max(min_len)
}

/// A synthetic database with swiss-prot-like length statistics
/// (gamma-distributed lengths, mean ≈ 360 aa — swiss-prot's mean).
pub fn swissprot_like_db(seed: u64, count: usize) -> SeqDatabase {
    let mut rng = seeded_rng(seed);
    let seqs = (0..count)
        .map(|i| {
            let len = swissprot_like_len(&mut rng, 360.0, 20);
            random_protein(&mut rng, format!("sp{i:06}"), len)
        })
        .collect();
    SeqDatabase::new(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_protein_is_reproducible() {
        let a = random_protein(&mut seeded_rng(42), "a", 100);
        let b = random_protein(&mut seeded_rng(42), "b", 100);
        assert_eq!(a.indices(), b.indices());
        let c = random_protein(&mut seeded_rng(43), "c", 100);
        assert_ne!(a.indices(), c.indices());
    }

    #[test]
    fn random_protein_uses_only_standard_residues() {
        let s = random_protein(&mut seeded_rng(7), "s", 5000);
        assert!(s.indices().iter().all(|&r| r < 20));
    }

    #[test]
    fn background_composition_roughly_matches() {
        let s = random_protein(&mut seeded_rng(1), "s", 200_000);
        let mut counts = [0usize; 20];
        for &r in s.indices() {
            counts[r as usize] += 1;
        }
        // Leucine (index 10) should be the most common (~9 %).
        let leu = counts[10] as f64 / 200_000.0;
        assert!((0.08..0.10).contains(&leu), "leu fraction {leu}");
        // Tryptophan (17) the rarest (~1.3 %).
        let trp = counts[17] as f64 / 200_000.0;
        assert!((0.008..0.018).contains(&trp), "trp fraction {trp}");
    }

    #[test]
    fn named_query_id_matches_length() {
        let q = named_query(&mut seeded_rng(3), 282);
        assert_eq!(q.id(), "Q282");
        assert_eq!(q.len(), 282);
    }

    #[test]
    fn pair_spec_hits_its_similarity_band() {
        let mut rng = seeded_rng(11);
        let query = named_query(&mut rng, 400);
        for (qc, want_qc) in [
            (Level::Hi, 0.70..1.01),
            (Level::Md, 0.30..0.70),
            (Level::Lo, 0.0..0.30),
        ] {
            for (mi, want_mi) in [
                (Level::Hi, 0.70..1.01),
                (Level::Md, 0.28..0.72),
                (Level::Lo, 0.0..0.32),
            ] {
                for trial in 0..5 {
                    let spec = PairSpec::new(qc, mi);
                    let pair = spec.generate(&mut rng, &query);
                    assert!(
                        want_qc.contains(&pair.realized_qc),
                        "{} trial {trial}: qc={}",
                        spec.label(),
                        pair.realized_qc
                    );
                    assert!(
                        want_mi.contains(&pair.realized_mi),
                        "{} trial {trial}: mi={}",
                        spec.label(),
                        pair.realized_mi
                    );
                    let (ws, we) = pair.query_window;
                    assert!(ws < we && we <= query.len());
                    assert!(!pair.subject.is_empty());
                }
            }
        }
    }

    #[test]
    fn nine_specs_cover_all_combinations() {
        let specs = nine_similarity_specs();
        assert_eq!(specs.len(), 9);
        let labels: std::collections::HashSet<String> = specs.iter().map(PairSpec::label).collect();
        assert_eq!(labels.len(), 9);
        assert!(labels.contains("hi_hi"));
        assert!(labels.contains("lo_lo"));
        assert!(labels.contains("md_hi"));
    }

    #[test]
    fn swissprot_like_db_statistics() {
        let db = swissprot_like_db(5, 2000);
        let stats = db.stats();
        assert_eq!(stats.count, 2000);
        assert!(
            (250.0..470.0).contains(&stats.mean_len),
            "mean {}",
            stats.mean_len
        );
        assert!(stats.min_len >= 20);
    }

    #[test]
    fn swissprot_like_db_is_reproducible() {
        let a = swissprot_like_db(9, 50);
        let b = swissprot_like_db(9, 50);
        for (x, y) in a.sequences().iter().zip(b.sequences()) {
            assert_eq!(x, y);
        }
    }
}
