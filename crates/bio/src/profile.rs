//! The striped query profile (`prof` in paper Alg. 2 ln. 17 /
//! Alg. 3 ln. 10).
//!
//! For each subject residue `a`, the kernels need the vector of
//! substitution scores `matrix[a][Q[q]]` for every query position `q`,
//! laid out in striped order so `add_array(prof + ctoi(S_i)·m̂ + j·v)`
//! is a contiguous load. Building the profile costs `O(|Σ|·m)` once
//! per query; the multi-threaded driver builds it once and shares it
//! across threads (paper Sec. V-E).
//!
//! Padding slots hold [`ScoreElem::NEG_INF`] so padded positions can
//! never contribute a winning score.

use aalign_vec::{ScoreElem, StripedLayout};

use crate::matrices::SubstMatrix;
use crate::seq::Sequence;

/// A striped query profile at score element type `T`.
#[derive(Debug, Clone)]
pub struct StripedProfile<T> {
    layout: StripedLayout,
    alphabet_size: usize,
    /// `alphabet_size` stripes of `layout.padded_len()` scores each.
    data: Vec<T>,
    max_matrix_score: i32,
    min_matrix_score: i32,
}

impl<T: ScoreElem> StripedProfile<T> {
    /// Build the profile of `query` against `matrix` for engines with
    /// `lanes` lanes.
    ///
    /// # Panics
    /// Panics if the query is empty, or its alphabet differs from the
    /// matrix's, or any matrix score is unrepresentable in `T`.
    pub fn build(query: &Sequence, matrix: &SubstMatrix, lanes: usize) -> Self {
        assert!(!query.is_empty(), "query must be non-empty");
        assert!(
            core::ptr::eq(query.alphabet(), matrix.alphabet()),
            "query alphabet {:?} differs from matrix alphabet {:?}",
            query.alphabet().name(),
            matrix.alphabet().name()
        );
        let layout = StripedLayout::new(query.len(), lanes);
        let n = matrix.size();
        let padded = layout.padded_len();
        let mut data = vec![T::NEG_INF; n * padded];
        for a in 0..n as u8 {
            let row = matrix.row(a);
            let stripe = &mut data[a as usize * padded..(a as usize + 1) * padded];
            for (q, &res) in query.indices().iter().enumerate() {
                stripe[layout.slot_of(q)] = T::from_i32(row[res as usize]);
            }
        }
        Self {
            layout,
            alphabet_size: n,
            data,
            max_matrix_score: matrix.max_score(),
            min_matrix_score: matrix.min_score(),
        }
    }

    /// The striped geometry this profile was built for.
    #[inline]
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Query length in residues.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.layout.len
    }

    /// Alphabet size (number of stripes).
    #[inline]
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// The whole striped stripe for subject residue `a`.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    #[inline]
    pub fn stripe(&self, a: u8) -> &[T] {
        let padded = self.layout.padded_len();
        &self.data[a as usize * padded..(a as usize + 1) * padded]
    }

    /// Largest matrix score (overflow-headroom math).
    #[inline]
    pub fn max_matrix_score(&self) -> i32 {
        self.max_matrix_score
    }

    /// Smallest matrix score.
    #[inline]
    pub fn min_matrix_score(&self) -> i32 {
        self.min_matrix_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::PROTEIN;
    use crate::matrices::BLOSUM62;

    #[test]
    fn profile_entries_match_matrix_lookups() {
        let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
        let p = StripedProfile::<i32>::build(&q, &BLOSUM62, 8);
        let layout = p.layout();
        for a in 0..24u8 {
            let stripe = p.stripe(a);
            for (qi, &res) in q.indices().iter().enumerate() {
                assert_eq!(
                    stripe[layout.slot_of(qi)],
                    BLOSUM62.score(a, res),
                    "a={a} q={qi}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn padding_slots_are_neg_inf() {
        let q = Sequence::protein("q", b"HEAGA").unwrap(); // m=5, lanes=4 → pad 3
        let p = StripedProfile::<i16>::build(&q, &BLOSUM62, 4);
        let layout = p.layout();
        assert_eq!(layout.padding(), 3);
        let mut pad_count = 0;
        for a in 0..24u8 {
            let stripe = p.stripe(a);
            for slot in 0..layout.padded_len() {
                if layout.query_pos_of(slot) >= 5 {
                    assert_eq!(stripe[slot], i16::NEG_INF);
                    pad_count += 1;
                }
            }
        }
        assert_eq!(pad_count, 3 * 24);
    }

    #[test]
    fn i8_profile_represents_blosum62() {
        // BLOSUM62 scores fit i8 comfortably.
        let q = Sequence::protein("q", b"WWWW").unwrap();
        let p = StripedProfile::<i8>::build(&q, &BLOSUM62, 4);
        let w = PROTEIN.ctoi(b'W').unwrap();
        assert_eq!(p.stripe(w)[0], 11);
        assert_eq!(p.max_matrix_score(), 11);
        assert_eq!(p.min_matrix_score(), -4);
    }

    #[test]
    #[should_panic(expected = "alphabet")]
    fn mismatched_alphabet_rejected() {
        let q = Sequence::dna("q", b"ACGT").unwrap();
        let _ = StripedProfile::<i32>::build(&q, &BLOSUM62, 8);
    }

    #[test]
    fn different_lane_counts_same_scores() {
        let q = Sequence::protein("q", b"MKVLAARNDWHEAGAWGHEE").unwrap();
        let p8 = StripedProfile::<i32>::build(&q, &BLOSUM62, 8);
        let p16 = StripedProfile::<i32>::build(&q, &BLOSUM62, 16);
        for a in 0..24u8 {
            for qi in 0..q.len() {
                assert_eq!(
                    p8.stripe(a)[p8.layout().slot_of(qi)],
                    p16.stripe(a)[p16.layout().slot_of(qi)]
                );
            }
        }
    }
}
