//! Karlin–Altschul alignment statistics.
//!
//! Raw Smith-Waterman scores are matrix- and gap-dependent; database
//! search tools report **bit scores** and **E-values** instead
//! (Karlin & Altschul, PNAS 1990). This module computes the ungapped
//! λ parameter exactly from a substitution matrix and background
//! residue frequencies (Newton iteration on
//! `Σᵢⱼ pᵢ pⱼ e^{λ·sᵢⱼ} = 1`), the relative entropy `H`, and converts
//! raw scores to bit scores and E-values given the (λ, K) pair.
//!
//! Gapped (λ, K) cannot be derived analytically; production tools use
//! simulation-fit lookup tables. The standard published pair for
//! BLOSUM62 with gap open 11 / extend 1 is provided as
//! [`BLOSUM62_GAPPED_11_1`]; callers with other gap systems should
//! supply their own fitted parameters via [`KarlinParams`].

use crate::matrices::SubstMatrix;

/// Robinson–Robinson background frequencies (sum to 1) for the 20
/// standard amino acids, in PROTEIN alphabet order.
pub const ROBINSON_FREQS: [f64; 20] = [
    0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051, 0.090, 0.057, 0.022,
    0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.064,
];

/// A (λ, K) statistics pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale parameter λ (nats per score unit).
    pub lambda: f64,
    /// Search-space scaling constant K.
    pub k: f64,
}

/// The standard gapped parameters for BLOSUM62, gap open 11,
/// extend 1 (the values NCBI BLAST ships).
pub const BLOSUM62_GAPPED_11_1: KarlinParams = KarlinParams {
    lambda: 0.267,
    k: 0.041,
};

/// Errors from λ estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The expected score is non-negative: λ does not exist (the
    /// matrix rewards random alignment, which breaks local alignment
    /// statistics).
    NonNegativeExpectedScore,
    /// The matrix has no positive score: alignments cannot grow.
    NoPositiveScore,
    /// Newton iteration failed to converge.
    NoConvergence,
}

impl core::fmt::Display for StatsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonNegativeExpectedScore => {
                write!(f, "expected score under background frequencies is ≥ 0")
            }
            Self::NoPositiveScore => write!(f, "matrix has no positive score"),
            Self::NoConvergence => write!(f, "lambda iteration did not converge"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Compute the ungapped λ for `matrix` restricted to the first
/// `freqs.len()` residues (the standard amino acids), under
/// background frequencies `freqs`.
///
/// Solves `φ(λ) = Σᵢⱼ pᵢ pⱼ e^{λ sᵢⱼ} − 1 = 0` for the unique
/// positive root by bisection-safeguarded Newton.
pub fn ungapped_lambda(matrix: &SubstMatrix, freqs: &[f64]) -> Result<f64, StatsError> {
    let n = freqs.len();
    assert!(n <= matrix.size(), "more frequencies than matrix rows");

    // Validity: E[s] < 0 and max s > 0.
    let mut expected = 0.0;
    let mut max_score = i32::MIN;
    for i in 0..n {
        for j in 0..n {
            let s = matrix.score(i as u8, j as u8);
            expected += freqs[i] * freqs[j] * s as f64;
            max_score = max_score.max(s);
        }
    }
    if expected >= 0.0 {
        return Err(StatsError::NonNegativeExpectedScore);
    }
    if max_score <= 0 {
        return Err(StatsError::NoPositiveScore);
    }

    let phi = |lambda: f64| -> (f64, f64) {
        // (φ(λ), φ'(λ))
        let mut v = -1.0;
        let mut d = 0.0;
        for i in 0..n {
            for j in 0..n {
                let s = matrix.score(i as u8, j as u8) as f64;
                let w = freqs[i] * freqs[j] * (lambda * s).exp();
                v += w;
                d += w * s;
            }
        }
        (v, d)
    };

    // Bracket the positive root: φ(0)=0 with φ'(0)=E[s]<0, and
    // φ(λ)→∞, so a root exists in (0, hi).
    let mut hi = 0.5;
    while phi(hi).0 < 0.0 {
        hi *= 2.0;
        if hi > 100.0 {
            return Err(StatsError::NoConvergence);
        }
    }
    let mut lo = 0.0;
    let mut lambda = hi / 2.0;
    for _ in 0..200 {
        let (v, d) = phi(lambda);
        if v.abs() < 1e-12 {
            return Ok(lambda);
        }
        if v > 0.0 {
            hi = lambda;
        } else {
            lo = lambda;
        }
        // Newton step, safeguarded into the bracket.
        let newton = lambda - v / d;
        lambda = if d > 0.0 && newton > lo && newton < hi {
            newton
        } else {
            (lo + hi) / 2.0
        };
    }
    Ok(lambda)
}

/// Relative entropy `H` of the scoring system (bits per aligned
/// pair): `Σᵢⱼ qᵢⱼ sᵢⱼ λ / ln 2` with target frequencies
/// `qᵢⱼ = pᵢ pⱼ e^{λ sᵢⱼ}`.
pub fn relative_entropy_bits(matrix: &SubstMatrix, freqs: &[f64], lambda: f64) -> f64 {
    let n = freqs.len();
    let mut h = 0.0;
    for i in 0..n {
        for j in 0..n {
            let s = matrix.score(i as u8, j as u8) as f64;
            h += freqs[i] * freqs[j] * (lambda * s).exp() * s;
        }
    }
    h * lambda / core::f64::consts::LN_2
}

/// Normalized bit score: `(λ·raw − ln K) / ln 2`.
///
/// ```
/// use aalign_bio::stats::{bit_score, evalue, BLOSUM62_GAPPED_11_1};
/// let bits = bit_score(100, BLOSUM62_GAPPED_11_1);
/// assert!(bits > 40.0);
/// // A 40+-bit hit is clearly significant in a small database.
/// assert!(evalue(bits, 300, 1_000_000) < 1e-3);
/// ```
pub fn bit_score(raw: i32, params: KarlinParams) -> f64 {
    (params.lambda * raw as f64 - params.k.ln()) / core::f64::consts::LN_2
}

/// E-value for a bit score against a search space of `m × n`
/// (query length × total database residues): `m·n·2^(−bits)`.
pub fn evalue(bits: f64, query_len: usize, db_residues: usize) -> f64 {
    (query_len as f64) * (db_residues as f64) * (-bits).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::BLOSUM62;

    #[test]
    fn blosum62_ungapped_lambda_matches_published_value() {
        // The canonical ungapped λ for BLOSUM62 is ≈ 0.3176 (NCBI).
        let lambda = ungapped_lambda(&BLOSUM62, &ROBINSON_FREQS).unwrap();
        assert!(
            (lambda - 0.3176).abs() < 0.01,
            "lambda {lambda} far from 0.3176"
        );
    }

    #[test]
    fn lambda_root_satisfies_the_defining_equation() {
        let lambda = ungapped_lambda(&BLOSUM62, &ROBINSON_FREQS).unwrap();
        let mut v = 0.0;
        for (i, &pi) in ROBINSON_FREQS.iter().enumerate() {
            for (j, &pj) in ROBINSON_FREQS.iter().enumerate() {
                v += pi * pj * (lambda * BLOSUM62.score(i as u8, j as u8) as f64).exp();
            }
        }
        assert!((v - 1.0).abs() < 1e-9, "phi={v}");
    }

    #[test]
    fn blosum62_entropy_is_about_0_7_bits() {
        // Published H for BLOSUM62 ≈ 0.70 bits.
        let lambda = ungapped_lambda(&BLOSUM62, &ROBINSON_FREQS).unwrap();
        let h = relative_entropy_bits(&BLOSUM62, &ROBINSON_FREQS, lambda);
        assert!((0.5..0.9).contains(&h), "H={h}");
    }

    #[test]
    fn positively_biased_matrix_is_rejected() {
        let m = SubstMatrix::dna(2, -1); // E[s] under uniform ACGT ≈ -0.25... make it positive:
        let uniform = [0.25; 4];
        // dna(2,-1): E = 0.25*2*... diag 2 (3 of 4 diag? N excluded) —
        // compute: per pair: 4 diag entries... use first 4 letters.
        // E = sum p_i p_j s = (4*(1/16)*2) + (12*(1/16)*-1) = 0.5 - 0.75 < 0 → valid.
        assert!(ungapped_lambda(&m, &uniform).is_ok());
        // But a match-heavy matrix with positive expectation fails.
        let biased = SubstMatrix::dna(9, -1);
        assert_eq!(
            ungapped_lambda(&biased, &uniform).unwrap_err(),
            StatsError::NonNegativeExpectedScore
        );
    }

    #[test]
    fn bit_scores_and_evalues_behave() {
        let p = BLOSUM62_GAPPED_11_1;
        let b50 = bit_score(50, p);
        let b100 = bit_score(100, p);
        assert!(b100 > b50);
        // Each extra bit halves the E-value.
        let e1 = evalue(b50, 300, 1_000_000);
        let e2 = evalue(b50 + 1.0, 300, 1_000_000);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
        // A strong hit in a small search space is significant.
        assert!(evalue(bit_score(300, p), 300, 1_000_000) < 1e-10);
    }

    #[test]
    fn dna_lambda_exists_for_standard_scoring() {
        let m = SubstMatrix::dna(2, -3);
        let uniform = [0.25; 4];
        let lambda = ungapped_lambda(&m, &uniform).unwrap();
        assert!(lambda > 0.0);
        // Defining equation holds.
        let mut v = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                v += 0.0625 * (lambda * m.score(i, j) as f64).exp();
            }
        }
        assert!((v - 1.0).abs() < 1e-9);
    }
}
