//! # aalign-bio — bioinformatics substrate for AAlign
//!
//! Everything the alignment kernels need that is *about sequences*
//! rather than about vectorization:
//!
//! * [`alphabet`] — residue alphabets and the paper's `ctoi` mapping;
//! * [`seq`] — validated sequences;
//! * [`fasta`] — FASTA reading and writing;
//! * [`matrices`] — substitution matrices ([`matrices::BLOSUM62`] and
//!   friends, plus an NCBI-format parser and simple constructors);
//! * [`profile`] — the striped query profile (`prof` in Alg. 2/3);
//! * [`db`] — sequence databases (load, sort by length, stats);
//! * [`synth`] — seeded synthetic data: background-frequency proteins,
//!   swiss-prot-like databases, and query/subject pairs with
//!   controlled query coverage (QC) and max identity (MI) — the
//!   independent variables of the paper's Fig. 10.

pub mod alphabet;
pub mod db;
pub mod fasta;
pub mod matrices;
pub mod profile;
pub mod seq;
pub mod stats;
pub mod synth;

pub use alphabet::Alphabet;
pub use db::SeqDatabase;
pub use matrices::SubstMatrix;
pub use profile::StripedProfile;
pub use seq::Sequence;
