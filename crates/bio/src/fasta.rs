//! FASTA reading and writing.
//!
//! Minimal but robust: multi-record, multi-line bodies, CRLF-tolerant,
//! precise error positions. The paper aligns queries against the
//! NCBI/UniProt databases distributed in this format.

use std::io::{self, BufRead, Write};

use crate::alphabet::Alphabet;
use crate::seq::Sequence;

/// Errors from FASTA parsing.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// First non-empty line does not start with `>`.
    MissingHeader { line: usize },
    /// A record had a header but no residues before the next header
    /// or a blank-line gap — an explicitly empty record.
    EmptyRecord { id: String, line: usize },
    /// The stream ended immediately after a header: the tail of the
    /// file is missing (a cut-off download), not an empty record.
    Truncated { id: String, line: usize },
    /// A header line is not valid UTF-8. Bodies are treated as raw
    /// bytes (the alphabet decides what a residue is), but record ids
    /// become strings, so a mangled header is rejected with its
    /// position instead of surfacing as an opaque I/O error.
    NonUtf8 { line: usize },
    /// A residue failed alphabet validation.
    BadResidue {
        id: String,
        line: usize,
        err: crate::alphabet::EncodeError,
    },
}

impl core::fmt::Display for FastaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::MissingHeader { line } => {
                write!(f, "line {line}: expected '>' header")
            }
            Self::EmptyRecord { id, line } => {
                write!(f, "line {line}: record {id:?} has no residues")
            }
            Self::Truncated { id, line } => {
                write!(f, "line {line}: record {id:?}: input ends after the header")
            }
            Self::NonUtf8 { line } => {
                write!(f, "line {line}: header is not valid UTF-8")
            }
            Self::BadResidue { id, line, err } => {
                write!(f, "line {line}: record {id:?}: {err}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parse all records from a reader against `alphabet`.
///
/// Lines are read as raw bytes, so a corrupt body never aborts the
/// read with an I/O error: residues go through alphabet validation
/// (yielding [`FastaError::BadResidue`] with the record's position)
/// and only *header* lines must be UTF-8 (ids become strings). CRLF
/// and whitespace-only lines are tolerated anywhere; a header with no
/// residues is rejected as [`FastaError::EmptyRecord`] mid-stream or
/// [`FastaError::Truncated`] at end-of-input.
pub fn read_fasta<R: BufRead>(
    mut reader: R,
    alphabet: &'static Alphabet,
) -> Result<Vec<Sequence>, FastaError> {
    let mut out = Vec::new();
    let mut cur_id: Option<(String, usize)> = None;
    let mut cur_body: Vec<u8> = Vec::new();
    let mut line_no = 0usize;
    let mut raw: Vec<u8> = Vec::new();

    let build = |id: &str, hline: usize, body: &[u8]| -> Result<Sequence, FastaError> {
        Sequence::new(id, alphabet, body).map_err(|err| FastaError::BadResidue {
            id: id.to_string(),
            line: hline,
            err,
        })
    };

    loop {
        raw.clear();
        if reader.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        line_no += 1;
        let mut line: &[u8] = &raw;
        while let [rest @ .., b'\n' | b'\r'] = line {
            line = rest;
        }
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        if let [b'>', hdr @ ..] = line {
            if let Some((id, hline)) = cur_id.take() {
                if cur_body.is_empty() {
                    return Err(FastaError::EmptyRecord { id, line: hline });
                }
                out.push(build(&id, hline, &cur_body)?);
                cur_body.clear();
            }
            let hdr =
                core::str::from_utf8(hdr).map_err(|_| FastaError::NonUtf8 { line: line_no })?;
            let id = hdr.split_whitespace().next().unwrap_or("").to_string();
            cur_id = Some((id, line_no));
        } else {
            if cur_id.is_none() {
                return Err(FastaError::MissingHeader { line: line_no });
            }
            cur_body.extend(line.iter().copied().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if let Some((id, hline)) = cur_id.take() {
        if cur_body.is_empty() {
            return Err(FastaError::Truncated { id, line: hline });
        }
        out.push(build(&id, hline, &cur_body)?);
    }
    Ok(out)
}

/// Parse records from an in-memory string.
///
/// ```
/// use aalign_bio::fasta::parse_fasta;
/// use aalign_bio::alphabet::PROTEIN;
/// let seqs = parse_fasta(">a first\nHEAG\nAW\n>b\nPAW\n", &PROTEIN).unwrap();
/// assert_eq!(seqs.len(), 2);
/// assert_eq!(seqs[0].text(), b"HEAGAW");
/// ```
pub fn parse_fasta(text: &str, alphabet: &'static Alphabet) -> Result<Vec<Sequence>, FastaError> {
    read_fasta(text.as_bytes(), alphabet)
}

/// Write records in FASTA format, wrapping bodies at `width` columns.
pub fn write_fasta<W: Write>(mut w: W, seqs: &[Sequence], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for s in seqs {
        writeln!(w, ">{}", s.id())?;
        let text = s.text();
        for chunk in text.chunks(width) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::PROTEIN;

    #[test]
    fn parses_multi_record_multi_line() {
        let text = ">one first record\nHEAG\nAWGH\n\n>two\nPAWHEAE\n";
        let seqs = parse_fasta(text, &PROTEIN).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id(), "one");
        assert_eq!(seqs[0].text(), b"HEAGAWGH");
        assert_eq!(seqs[1].id(), "two");
        assert_eq!(seqs[1].len(), 7);
    }

    #[test]
    fn tolerates_crlf_and_inner_whitespace() {
        let text = ">x\r\nHE AG\r\nAW\r\n";
        let seqs = parse_fasta(text, &PROTEIN).unwrap();
        assert_eq!(seqs[0].text(), b"HEAGAW");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_fasta("HEAG\n", &PROTEIN).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn empty_record_is_an_error() {
        let err = parse_fasta(">a\n>b\nHE\n", &PROTEIN).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
    }

    #[test]
    fn truncated_record_is_distinguished_from_an_empty_one() {
        // Input ending right after a header (with or without its
        // newline) is a cut-off file, not an empty record.
        for text in [">last", ">last\n", ">ok\nHE\n>last\r\n"] {
            match parse_fasta(text, &PROTEIN).unwrap_err() {
                FastaError::Truncated { id, .. } => assert_eq!(id, "last", "{text:?}"),
                other => panic!("{text:?} gave {other}"),
            }
        }
    }

    #[test]
    fn non_utf8_header_reports_its_line() {
        let err = read_fasta(&b">ok\nHE\n>bro\xFF\xFEken\nAG\n"[..], &PROTEIN).unwrap_err();
        assert!(
            matches!(err, FastaError::NonUtf8 { line: 3 }),
            "wrong error: {err}"
        );
    }

    #[test]
    fn non_utf8_body_is_a_residue_error_not_an_io_error() {
        let err = read_fasta(&b">a\nHE\xFFAG\n"[..], &PROTEIN).unwrap_err();
        match err {
            FastaError::BadResidue { id, err, .. } => {
                assert_eq!(id, "a");
                assert_eq!(err.byte, 0xFF);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn whitespace_only_lines_are_blank_lines() {
        let seqs = parse_fasta("  \t \n>a\nHE\n   \nAG\n", &PROTEIN).unwrap();
        assert_eq!(seqs[0].text(), b"HEAG");
    }

    #[test]
    fn final_line_without_newline_still_counts() {
        let seqs = parse_fasta(">a\nHEAG", &PROTEIN).unwrap();
        assert_eq!(seqs[0].text(), b"HEAG");
    }

    #[test]
    fn bad_residue_reports_record() {
        let err = parse_fasta(">a\nHE1G\n", &PROTEIN).unwrap_err();
        match err {
            FastaError::BadResidue { id, err, .. } => {
                assert_eq!(id, "a");
                assert_eq!(err.byte, b'1');
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let seqs = vec![
            Sequence::protein("alpha", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("beta", b"PAWHEAE").unwrap(),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &seqs, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_fasta(&text, &PROTEIN).unwrap();
        assert_eq!(parsed, seqs);
        // wrapped at 4 columns
        assert!(text.contains("HEAG\nAWGH\nEE\n"));
    }

    #[test]
    fn empty_input_gives_no_records() {
        assert!(parse_fasta("", &PROTEIN).unwrap().is_empty());
        assert!(parse_fasta("\n\n", &PROTEIN).unwrap().is_empty());
    }
}
