//! FASTA reading and writing.
//!
//! Minimal but robust: multi-record, multi-line bodies, CRLF-tolerant,
//! precise error positions. The paper aligns queries against the
//! NCBI/UniProt databases distributed in this format.

use std::io::{self, BufRead, Write};

use crate::alphabet::Alphabet;
use crate::seq::Sequence;

/// Errors from FASTA parsing.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// First non-empty line does not start with `>`.
    MissingHeader { line: usize },
    /// A record had a header but no residues.
    EmptyRecord { id: String, line: usize },
    /// A residue failed alphabet validation.
    BadResidue {
        id: String,
        line: usize,
        err: crate::alphabet::EncodeError,
    },
}

impl core::fmt::Display for FastaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::MissingHeader { line } => {
                write!(f, "line {line}: expected '>' header")
            }
            Self::EmptyRecord { id, line } => {
                write!(f, "line {line}: record {id:?} has no residues")
            }
            Self::BadResidue { id, line, err } => {
                write!(f, "line {line}: record {id:?}: {err}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parse all records from a reader against `alphabet`.
pub fn read_fasta<R: BufRead>(
    reader: R,
    alphabet: &'static Alphabet,
) -> Result<Vec<Sequence>, FastaError> {
    let mut out = Vec::new();
    let mut cur_id: Option<(String, usize)> = None;
    let mut cur_body: Vec<u8> = Vec::new();
    let mut line_no = 0usize;

    let flush = |cur_id: &mut Option<(String, usize)>,
                 cur_body: &mut Vec<u8>,
                 out: &mut Vec<Sequence>|
     -> Result<(), FastaError> {
        if let Some((id, hline)) = cur_id.take() {
            if cur_body.is_empty() {
                return Err(FastaError::EmptyRecord { id, line: hline });
            }
            let seq =
                Sequence::new(&id, alphabet, cur_body).map_err(|err| FastaError::BadResidue {
                    id: id.clone(),
                    line: hline,
                    err,
                })?;
            out.push(seq);
            cur_body.clear();
        }
        Ok(())
    };

    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(hdr) = line.strip_prefix('>') {
            flush(&mut cur_id, &mut cur_body, &mut out)?;
            let id = hdr.split_whitespace().next().unwrap_or("").to_string();
            cur_id = Some((id, line_no));
        } else {
            if cur_id.is_none() {
                return Err(FastaError::MissingHeader { line: line_no });
            }
            cur_body.extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    flush(&mut cur_id, &mut cur_body, &mut out)?;
    Ok(out)
}

/// Parse records from an in-memory string.
///
/// ```
/// use aalign_bio::fasta::parse_fasta;
/// use aalign_bio::alphabet::PROTEIN;
/// let seqs = parse_fasta(">a first\nHEAG\nAW\n>b\nPAW\n", &PROTEIN).unwrap();
/// assert_eq!(seqs.len(), 2);
/// assert_eq!(seqs[0].text(), b"HEAGAW");
/// ```
pub fn parse_fasta(text: &str, alphabet: &'static Alphabet) -> Result<Vec<Sequence>, FastaError> {
    read_fasta(text.as_bytes(), alphabet)
}

/// Write records in FASTA format, wrapping bodies at `width` columns.
pub fn write_fasta<W: Write>(mut w: W, seqs: &[Sequence], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for s in seqs {
        writeln!(w, ">{}", s.id())?;
        let text = s.text();
        for chunk in text.chunks(width) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::PROTEIN;

    #[test]
    fn parses_multi_record_multi_line() {
        let text = ">one first record\nHEAG\nAWGH\n\n>two\nPAWHEAE\n";
        let seqs = parse_fasta(text, &PROTEIN).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id(), "one");
        assert_eq!(seqs[0].text(), b"HEAGAWGH");
        assert_eq!(seqs[1].id(), "two");
        assert_eq!(seqs[1].len(), 7);
    }

    #[test]
    fn tolerates_crlf_and_inner_whitespace() {
        let text = ">x\r\nHE AG\r\nAW\r\n";
        let seqs = parse_fasta(text, &PROTEIN).unwrap();
        assert_eq!(seqs[0].text(), b"HEAGAW");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_fasta("HEAG\n", &PROTEIN).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn empty_record_is_an_error() {
        let err = parse_fasta(">a\n>b\nHE\n", &PROTEIN).unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
    }

    #[test]
    fn bad_residue_reports_record() {
        let err = parse_fasta(">a\nHE1G\n", &PROTEIN).unwrap_err();
        match err {
            FastaError::BadResidue { id, err, .. } => {
                assert_eq!(id, "a");
                assert_eq!(err.byte, b'1');
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let seqs = vec![
            Sequence::protein("alpha", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("beta", b"PAWHEAE").unwrap(),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &seqs, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_fasta(&text, &PROTEIN).unwrap();
        assert_eq!(parsed, seqs);
        // wrapped at 4 columns
        assert!(text.contains("HEAG\nAWGH\nEE\n"));
    }

    #[test]
    fn empty_input_gives_no_records() {
        assert!(parse_fasta("", &PROTEIN).unwrap().is_empty());
        assert!(parse_fasta("\n\n", &PROTEIN).unwrap().is_empty());
    }
}
