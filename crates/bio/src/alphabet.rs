//! Residue alphabets and the `ctoi` character→index mapping.
//!
//! The paper's kernels index the substitution matrix through a
//! user-supplied `ctoi` function; here that mapping is owned by an
//! [`Alphabet`], which also validates input sequences.

/// A residue alphabet: the ordered set of admissible letters and the
/// mapping from ASCII bytes to matrix indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    name: &'static str,
    letters: &'static [u8],
    /// `ctoi[b]` = index of byte `b`, or `u8::MAX` if not in the
    /// alphabet. Lowercase letters map like their uppercase forms.
    ctoi: [u8; 256],
}

/// Sentinel for "byte not in alphabet".
const INVALID: u8 = u8::MAX;

impl Alphabet {
    const fn build(name: &'static str, letters: &'static [u8]) -> Self {
        let mut ctoi = [INVALID; 256];
        let mut i = 0;
        while i < letters.len() {
            let b = letters[i];
            ctoi[b as usize] = i as u8;
            if b.is_ascii_uppercase() {
                ctoi[b.to_ascii_lowercase() as usize] = i as u8;
            }
            i += 1;
        }
        Self {
            name,
            letters,
            ctoi,
        }
    }

    /// The 24-letter protein alphabet used by NCBI matrices
    /// (20 amino acids + B, Z ambiguity codes + X unknown + `*` stop).
    pub const fn protein() -> Self {
        Self::build("protein", b"ARNDCQEGHILKMFPSTWYVBZX*")
    }

    /// The 5-letter nucleotide alphabet (ACGT + N).
    pub const fn dna() -> Self {
        Self::build("dna", b"ACGTN")
    }

    /// Alphabet name (`"protein"` / `"dna"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of letters (and dimension of compatible matrices).
    #[inline]
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// True if the alphabet has no letters (never, for built-ins).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The paper's `ctoi`: map an ASCII byte to its matrix index.
    #[inline]
    pub fn ctoi(&self, b: u8) -> Option<u8> {
        let i = self.ctoi[b as usize];
        (i != INVALID).then_some(i)
    }

    /// Inverse mapping: index → canonical (uppercase) letter.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn itoc(&self, i: u8) -> u8 {
        self.letters[i as usize]
    }

    /// Encode a byte string into indices; reports the first offending
    /// byte and its offset on failure.
    pub fn encode(&self, text: &[u8]) -> Result<Vec<u8>, EncodeError> {
        text.iter()
            .enumerate()
            .map(|(pos, &b)| self.ctoi(b).ok_or(EncodeError { byte: b, pos }))
            .collect()
    }

    /// Decode indices back into letters.
    pub fn decode(&self, indices: &[u8]) -> Vec<u8> {
        indices.iter().map(|&i| self.itoc(i)).collect()
    }
}

/// A byte that does not belong to the alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// The offending byte.
    pub byte: u8,
    /// Offset within the input.
    pub pos: usize,
}

impl core::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid residue {:?} (0x{:02x}) at position {}",
            self.byte as char, self.byte, self.pos
        )
    }
}

impl std::error::Error for EncodeError {}

/// The protein alphabet (matching [`crate::matrices::BLOSUM62`] order).
pub static PROTEIN: Alphabet = Alphabet::protein();
/// The DNA alphabet.
pub static DNA: Alphabet = Alphabet::dna();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_has_24_letters_in_ncbi_order() {
        assert_eq!(PROTEIN.len(), 24);
        assert_eq!(PROTEIN.ctoi(b'A'), Some(0));
        assert_eq!(PROTEIN.ctoi(b'R'), Some(1));
        assert_eq!(PROTEIN.ctoi(b'V'), Some(19));
        assert_eq!(PROTEIN.ctoi(b'*'), Some(23));
    }

    #[test]
    fn lowercase_maps_like_uppercase() {
        assert_eq!(PROTEIN.ctoi(b'a'), PROTEIN.ctoi(b'A'));
        assert_eq!(PROTEIN.ctoi(b'w'), PROTEIN.ctoi(b'W'));
        assert_eq!(DNA.ctoi(b't'), DNA.ctoi(b'T'));
    }

    #[test]
    fn invalid_bytes_rejected() {
        assert_eq!(PROTEIN.ctoi(b'1'), None);
        assert_eq!(PROTEIN.ctoi(b' '), None);
        assert_eq!(DNA.ctoi(b'E'), None);
        let err = PROTEIN.encode(b"ACDEF GHI").unwrap_err();
        assert_eq!(err.pos, 5);
        assert_eq!(err.byte, b' ');
    }

    #[test]
    fn encode_decode_round_trip() {
        let text = b"MKVLAARNDW";
        let idx = PROTEIN.encode(text).unwrap();
        assert_eq!(PROTEIN.decode(&idx), text);
    }

    #[test]
    fn itoc_inverts_ctoi_for_all_letters() {
        for alpha in [&PROTEIN, &DNA] {
            for i in 0..alpha.len() as u8 {
                let c = alpha.itoc(i);
                assert_eq!(alpha.ctoi(c), Some(i));
            }
        }
    }
}
