//! Sequence databases.
//!
//! The multi-threaded driver (paper Sec. V-E) aligns one query against
//! every subject in a database, sorted by length so the dynamic
//! work-binding stays balanced. [`SeqDatabase`] owns the subjects and
//! provides the sorted view plus summary statistics.

use std::io::BufRead;

use crate::alphabet::Alphabet;
use crate::fasta::{read_fasta, FastaError};
use crate::seq::Sequence;

/// An in-memory database of subject sequences.
#[derive(Debug, Clone, Default)]
pub struct SeqDatabase {
    seqs: Vec<Sequence>,
}

/// Summary statistics of a database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbStats {
    pub count: usize,
    pub total_residues: usize,
    pub min_len: usize,
    pub max_len: usize,
    pub mean_len: f64,
    pub median_len: usize,
}

impl SeqDatabase {
    /// Build from a vector of sequences.
    pub fn new(seqs: Vec<Sequence>) -> Self {
        Self { seqs }
    }

    /// Load from FASTA.
    pub fn from_fasta<R: BufRead>(
        reader: R,
        alphabet: &'static Alphabet,
    ) -> Result<Self, FastaError> {
        Ok(Self::new(read_fasta(reader, alphabet)?))
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// All sequences in insertion order.
    pub fn sequences(&self) -> &[Sequence] {
        &self.seqs
    }

    /// Sequence by position.
    pub fn get(&self, i: usize) -> &Sequence {
        &self.seqs[i]
    }

    /// Id of the sequence at position `i`.
    ///
    /// Search hits store only the database index (no per-hit `String`
    /// allocation in the sweep's hot loop); resolve ids through this
    /// accessor when rendering results.
    pub fn id(&self, i: usize) -> &str {
        self.seqs[i].id()
    }

    /// Indices of all sequences sorted by descending length — the
    /// paper's processing order (longest first keeps the tail of a
    /// dynamic schedule short).
    pub fn sorted_by_length_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.seqs.len()).collect();
        idx.sort_by_key(|&i| core::cmp::Reverse(self.seqs[i].len()));
        idx
    }

    /// Summary statistics.
    ///
    /// # Panics
    /// Panics on an empty database.
    pub fn stats(&self) -> DbStats {
        assert!(!self.is_empty(), "stats of empty database");
        let mut lens: Vec<usize> = self.seqs.iter().map(Sequence::len).collect();
        lens.sort_unstable();
        let total: usize = lens.iter().sum();
        DbStats {
            count: lens.len(),
            total_residues: total,
            min_len: lens[0],
            max_len: *lens.last().unwrap(),
            mean_len: total as f64 / lens.len() as f64,
            median_len: lens[lens.len() / 2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SeqDatabase {
        SeqDatabase::new(vec![
            Sequence::protein("a", b"HE").unwrap(),
            Sequence::protein("b", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("c", b"PAWHEAE").unwrap(),
        ])
    }

    #[test]
    fn sorted_by_length_desc_orders_longest_first() {
        let d = db();
        let order = d.sorted_by_length_desc();
        let lens: Vec<usize> = order.iter().map(|&i| d.get(i).len()).collect();
        assert_eq!(lens, vec![10, 7, 2]);
    }

    #[test]
    fn stats_are_correct() {
        let s = db().stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_residues, 19);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 10);
        assert_eq!(s.median_len, 7);
        assert!((s.mean_len - 19.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_fasta_loads_records() {
        let d =
            SeqDatabase::from_fasta(">x\nHEAG\n>y\nPAW\n".as_bytes(), &crate::alphabet::PROTEIN)
                .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1).id(), "y");
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn stats_of_empty_panics() {
        let _ = SeqDatabase::default().stats();
    }
}
