//! Substitution matrices.
//!
//! [`SubstMatrix`] is a square score table over an alphabet. The
//! standard NCBI **BLOSUM62** table is built in (it is the matrix the
//! paper evaluates with); other NCBI-format matrices can be loaded
//! with [`SubstMatrix::parse_ncbi`], and simple match/mismatch
//! matrices can be constructed for DNA work.

use crate::alphabet::{Alphabet, DNA, PROTEIN};

/// A substitution matrix: `score(a, b)` for alphabet indices `a`, `b`.
///
/// ```
/// use aalign_bio::matrices::BLOSUM62;
/// use aalign_bio::alphabet::PROTEIN;
/// let w = PROTEIN.ctoi(b'W').unwrap();
/// let a = PROTEIN.ctoi(b'A').unwrap();
/// assert_eq!(BLOSUM62.score(w, w), 11);
/// assert_eq!(BLOSUM62.score(w, a), -3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstMatrix {
    name: String,
    alphabet: &'static Alphabet,
    n: usize,
    /// Row-major `n × n` scores.
    scores: Vec<i32>,
}

impl SubstMatrix {
    /// Build from a row-major table.
    ///
    /// # Panics
    /// Panics if `scores.len() != alphabet.len()²`.
    pub fn new(name: impl Into<String>, alphabet: &'static Alphabet, scores: Vec<i32>) -> Self {
        let n = alphabet.len();
        assert_eq!(scores.len(), n * n, "matrix must be {n}×{n}");
        Self {
            name: name.into(),
            alphabet,
            n,
            scores,
        }
    }

    /// A DNA match/mismatch matrix (e.g. `dna(2, -3)`); `N` scores the
    /// mismatch value against everything including itself.
    pub fn dna(match_score: i32, mismatch: i32) -> Self {
        let n = DNA.len();
        let mut scores = vec![mismatch; n * n];
        for i in 0..n - 1 {
            // exclude N from matching itself
            scores[i * n + i] = match_score;
        }
        Self::new(format!("dna({match_score},{mismatch})"), &DNA, scores)
    }

    /// Matrix name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet the matrix indexes.
    pub fn alphabet(&self) -> &'static Alphabet {
        self.alphabet
    }

    /// Alphabet size `n`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Score of aligning indices `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize * self.n + b as usize]
    }

    /// One full row (all scores against index `a`).
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        &self.scores[a as usize * self.n..(a as usize + 1) * self.n]
    }

    /// Largest score in the matrix (used for overflow-headroom math).
    pub fn max_score(&self) -> i32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Smallest score in the matrix.
    pub fn min_score(&self) -> i32 {
        self.scores.iter().copied().min().unwrap_or(0)
    }

    /// True if `score(a,b) == score(b,a)` for all pairs.
    pub fn is_symmetric(&self) -> bool {
        (0..self.n as u8).all(|a| (0..self.n as u8).all(|b| self.score(a, b) == self.score(b, a)))
    }

    /// Parse an NCBI-format matrix file (the format of `BLOSUM62.txt`
    /// shipped with BLAST: `#` comments, a header row of letters, then
    /// one labelled row per letter).
    pub fn parse_ncbi(
        name: impl Into<String>,
        alphabet: &'static Alphabet,
        text: &str,
    ) -> Result<Self, MatrixParseError> {
        use MatrixParseError as E;
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or(E::MissingHeader)?;
        let cols: Vec<u8> = header
            .split_whitespace()
            .map(|tok| {
                let b = tok.bytes().next().ok_or(E::MissingHeader)?;
                alphabet.ctoi(b).ok_or(E::UnknownLetter(b as char))
            })
            .collect::<Result<_, _>>()?;
        let n = alphabet.len();
        if cols.len() != n {
            return Err(E::WrongDimension {
                got: cols.len(),
                want: n,
            });
        }
        let mut scores = vec![i32::MIN; n * n];
        let mut rows_seen = 0usize;
        for line in lines {
            let mut toks = line.split_whitespace();
            let row_letter = toks
                .next()
                .and_then(|t| t.bytes().next())
                .ok_or(E::MalformedRow(rows_seen))?;
            let r = alphabet
                .ctoi(row_letter)
                .ok_or(E::UnknownLetter(row_letter as char))?;
            let vals: Vec<i32> = toks
                .map(|t| t.parse::<i32>().map_err(|_| E::MalformedRow(rows_seen)))
                .collect::<Result<_, _>>()?;
            if vals.len() != n {
                return Err(E::WrongDimension {
                    got: vals.len(),
                    want: n,
                });
            }
            for (c, v) in cols.iter().zip(vals) {
                scores[r as usize * n + *c as usize] = v;
            }
            rows_seen += 1;
        }
        if rows_seen != n {
            return Err(E::WrongDimension {
                got: rows_seen,
                want: n,
            });
        }
        Ok(Self::new(name, alphabet, scores))
    }
}

/// Errors from [`SubstMatrix::parse_ncbi`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixParseError {
    /// No header row found.
    MissingHeader,
    /// A letter not in the alphabet.
    UnknownLetter(char),
    /// Row/column count mismatch.
    WrongDimension { got: usize, want: usize },
    /// A row failed to parse (0-based data-row index).
    MalformedRow(usize),
}

impl core::fmt::Display for MatrixParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::MissingHeader => write!(f, "missing matrix header row"),
            Self::UnknownLetter(c) => write!(f, "letter {c:?} not in alphabet"),
            Self::WrongDimension { got, want } => {
                write!(f, "expected {want} entries, got {got}")
            }
            Self::MalformedRow(i) => write!(f, "malformed matrix row {i}"),
        }
    }
}

impl std::error::Error for MatrixParseError {}

/// The standard NCBI BLOSUM62 table over
/// [`PROTEIN`](crate::alphabet::PROTEIN)'s `ARNDCQEGHILKMFPSTWYVBZX*`
/// order — the matrix used throughout the paper's evaluation.
#[rustfmt::skip]
static BLOSUM62_SCORES: [i32; 24 * 24] = [
//   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
     4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4, // A
    -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4, // R
    -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4, // N
    -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4, // D
     0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4, // C
    -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4, // Q
    -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4, // E
     0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4, // G
    -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4, // H
    -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4, // I
    -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4, // L
    -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4, // K
    -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4, // M
    -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4, // F
    -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4, // P
     1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4, // S
     0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4, // T
    -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4, // W
    -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4, // Y
     0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4, // V
    -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4, // B
    -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4, // Z
     0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4, // X
    -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1, // *
];

/// Lazily constructed BLOSUM62 (stable address, cheap to share).
pub static BLOSUM62: std::sync::LazyLock<SubstMatrix> =
    std::sync::LazyLock::new(|| SubstMatrix::new("BLOSUM62", &PROTEIN, BLOSUM62_SCORES.to_vec()));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_known_entries() {
        let m = &*BLOSUM62;
        let s = |a: u8, b: u8| m.score(PROTEIN.ctoi(a).unwrap(), PROTEIN.ctoi(b).unwrap());
        assert_eq!(s(b'W', b'W'), 11);
        assert_eq!(s(b'A', b'A'), 4);
        assert_eq!(s(b'C', b'C'), 9);
        assert_eq!(s(b'E', b'Q'), 2);
        assert_eq!(s(b'L', b'I'), 2);
        assert_eq!(s(b'G', b'W'), -2);
        assert_eq!(s(b'*', b'*'), 1);
        assert_eq!(s(b'A', b'*'), -4);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(BLOSUM62.is_symmetric());
    }

    #[test]
    fn blosum62_extrema() {
        assert_eq!(BLOSUM62.max_score(), 11);
        assert_eq!(BLOSUM62.min_score(), -4);
    }

    #[test]
    fn dna_matrix_scores() {
        let m = SubstMatrix::dna(2, -3);
        let a = DNA.ctoi(b'A').unwrap();
        let c = DNA.ctoi(b'C').unwrap();
        let n = DNA.ctoi(b'N').unwrap();
        assert_eq!(m.score(a, a), 2);
        assert_eq!(m.score(a, c), -3);
        assert_eq!(m.score(n, n), -3, "N never matches");
        assert!(m.is_symmetric());
    }

    #[test]
    fn parse_ncbi_round_trips_blosum62() {
        // Render BLOSUM62 in NCBI format and re-parse it.
        let letters = b"ARNDCQEGHILKMFPSTWYVBZX*";
        let mut text = String::from("# comment line\n");
        text.push_str(
            &letters
                .iter()
                .map(|&b| (b as char).to_string())
                .collect::<Vec<_>>()
                .join(" "),
        );
        text.push('\n');
        for (r, &row_letter) in letters.iter().enumerate() {
            text.push(row_letter as char);
            for c in 0..24 {
                text.push_str(&format!(" {}", BLOSUM62_SCORES[r * 24 + c]));
            }
            text.push('\n');
        }
        let parsed = SubstMatrix::parse_ncbi("reparsed", &PROTEIN, &text).unwrap();
        assert_eq!(parsed.row(0), BLOSUM62.row(0));
        for a in 0..24u8 {
            for b in 0..24u8 {
                assert_eq!(parsed.score(a, b), BLOSUM62.score(a, b));
            }
        }
    }

    #[test]
    fn parse_ncbi_rejects_bad_input() {
        assert_eq!(
            SubstMatrix::parse_ncbi("x", &PROTEIN, ""),
            Err(MatrixParseError::MissingHeader)
        );
        let r = SubstMatrix::parse_ncbi("x", &PROTEIN, "A R\nA 1 2\nR 3 4\n");
        assert!(matches!(r, Err(MatrixParseError::WrongDimension { .. })));
    }

    #[test]
    fn row_matches_score() {
        let m = &*BLOSUM62;
        for a in 0..24u8 {
            let row = m.row(a);
            for b in 0..24u8 {
                assert_eq!(row[b as usize], m.score(a, b));
            }
        }
    }
}
