//! Validated sequences.
//!
//! A [`Sequence`] stores residues already encoded as matrix indices
//! (the paper's `ctoi` applied once, up front), so the kernels' inner
//! loops do plain array indexing.

use crate::alphabet::{Alphabet, EncodeError, DNA, PROTEIN};

/// A named, validated, index-encoded sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    id: String,
    alphabet: &'static Alphabet,
    residues: Vec<u8>,
}

impl Sequence {
    /// Build from raw ASCII text against the given alphabet.
    pub fn new(
        id: impl Into<String>,
        alphabet: &'static Alphabet,
        text: &[u8],
    ) -> Result<Self, EncodeError> {
        Ok(Self {
            id: id.into(),
            alphabet,
            residues: alphabet.encode(text)?,
        })
    }

    /// Protein sequence from ASCII text.
    pub fn protein(id: impl Into<String>, text: &[u8]) -> Result<Self, EncodeError> {
        Self::new(id, &PROTEIN, text)
    }

    /// DNA sequence from ASCII text.
    pub fn dna(id: impl Into<String>, text: &[u8]) -> Result<Self, EncodeError> {
        Self::new(id, &DNA, text)
    }

    /// Build directly from pre-encoded indices (used by generators).
    ///
    /// # Panics
    /// Panics if any index is out of range for the alphabet.
    pub fn from_indices(
        id: impl Into<String>,
        alphabet: &'static Alphabet,
        residues: Vec<u8>,
    ) -> Self {
        assert!(
            residues.iter().all(|&r| (r as usize) < alphabet.len()),
            "residue index out of range"
        );
        Self {
            id: id.into(),
            alphabet,
            residues,
        }
    }

    /// Sequence identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The alphabet this sequence was validated against.
    pub fn alphabet(&self) -> &'static Alphabet {
        self.alphabet
    }

    /// Residues as matrix indices.
    #[inline]
    pub fn indices(&self) -> &[u8] {
        &self.residues
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True for an empty sequence.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Decode back to ASCII letters.
    pub fn text(&self) -> Vec<u8> {
        self.alphabet.decode(&self.residues)
    }

    /// Reverse complement (DNA sequences only): A↔T, C↔G, N↔N,
    /// reading order reversed — the opposite strand.
    ///
    /// ```
    /// use aalign_bio::Sequence;
    /// let s = Sequence::dna("s", b"ACGTN").unwrap();
    /// assert_eq!(s.reverse_complement().text(), b"NACGT");
    /// ```
    ///
    /// # Panics
    /// Panics for non-DNA sequences.
    pub fn reverse_complement(&self) -> Sequence {
        assert_eq!(
            self.alphabet.name(),
            "dna",
            "reverse_complement is defined for DNA sequences"
        );
        // DNA indices: A=0 C=1 G=2 T=3 N=4; complement swaps 0↔3, 1↔2.
        let residues = self
            .residues
            .iter()
            .rev()
            .map(|&r| match r {
                0 => 3,
                1 => 2,
                2 => 1,
                3 => 0,
                other => other,
            })
            .collect();
        Sequence {
            id: format!("{}_rc", self.id),
            alphabet: self.alphabet,
            residues,
        }
    }
}

impl core::fmt::Display for Sequence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            ">{} ({} aa) {}",
            self.id,
            self.len(),
            String::from_utf8_lossy(&self.text())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_round_trip() {
        let s = Sequence::protein("p1", b"HEAGAWGHEE").unwrap();
        assert_eq!(s.id(), "p1");
        assert_eq!(s.len(), 10);
        assert_eq!(s.text(), b"HEAGAWGHEE");
    }

    #[test]
    fn rejects_bad_residue() {
        let err = Sequence::protein("p", b"ACDJ").unwrap_err();
        assert_eq!(err.byte, b'J');
    }

    #[test]
    fn lowercase_input_normalizes() {
        let s = Sequence::protein("p", b"acdef").unwrap();
        assert_eq!(s.text(), b"ACDEF");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_indices_validates_range() {
        let _ = Sequence::from_indices("x", &PROTEIN, vec![200]);
    }

    #[test]
    fn reverse_complement_round_trips() {
        let s = Sequence::dna("x", b"AACGTGNT").unwrap();
        let rc = s.reverse_complement();
        assert_eq!(rc.text(), b"ANCACGTT");
        assert_eq!(rc.reverse_complement().text(), s.text());
        assert_eq!(rc.id(), "x_rc");
    }

    #[test]
    #[should_panic(expected = "DNA")]
    fn reverse_complement_rejects_protein() {
        let s = Sequence::protein("p", b"HEAG").unwrap();
        let _ = s.reverse_complement();
    }

    #[test]
    fn display_contains_id_and_length() {
        let s = Sequence::dna("chr", b"ACGT").unwrap();
        let d = s.to_string();
        assert!(d.contains("chr"));
        assert!(d.contains("4 aa"));
    }
}
