//! # aalign-core — the AAlign alignment kernels
//!
//! A Rust reproduction of the AAlign framework (Hou, Wang, Feng,
//! IPDPS 2016): pairwise sequence alignment under the generalized
//! paradigm (local/global × linear/affine gaps) with two SIMD
//! vectorization strategies over the striped layout —
//! **striped-iterate** (Alg. 2) and **striped-scan** (Alg. 3) — and
//! the runtime **hybrid** switcher (Sec. V-B).
//!
//! Layers, bottom up:
//!
//! * [`config`] — the paradigm's parameters and the Table II
//!   derivation.
//! * [`mod@certify`] — the saturation-certificate prover: per-wavefront
//!   interval abstract interpretation proving a lane width
//!   rescue-free (consumed by [`kernel`] width selection).
//! * [`paradigm`] — executable ground truth: Eq. (2) literally, and
//!   the Eq. (3–6) dynamic program.
//! * [`scalar`] — the optimized sequential baseline (Fig. 9).
//! * [`striped`] — the vector kernels, generic over any
//!   [`aalign_vec::SimdEngine`].
//! * [`inter`] — inter-sequence vectorization (one lane per subject;
//!   extension).
//! * [`kernel`] — runtime dispatch (ISA × element width × strategy)
//!   and the public [`Aligner`] API.
//! * [`traceback`] — scalar alignment-path reconstruction (an
//!   extension; the paper reports scores only).
//! * [`retry`] — capped exponential backoff with deterministic
//!   jitter, shared by every supervisor/retry loop above this crate.

pub mod banded;
pub mod certify;
pub mod config;
#[cfg(feature = "conformance")]
pub mod conformance;
pub mod hirschberg;
pub mod inter;
pub mod kernel;
pub mod paradigm;
pub mod retry;
pub mod scalar;
pub mod striped;
pub mod traceback;

pub use banded::{banded_align, banded_align_auto, banded_align_certified, BandedScore};
pub use certify::{
    certify, config_fingerprint, CertTerm, CertificateStore, CrossedBound, Denial,
    WidthCertificate, Witness,
};
pub use config::{AlignConfig, AlignKind, GapModel, ScoreBounds, TableII};
pub use hirschberg::hirschberg_align;
pub use inter::{inter_align_all, inter_align_batch, InterBatchResult, InterWorkspace};
pub use kernel::{
    AlignError, AlignOutcome, AlignOutput, AlignScratch, Aligner, PreparedQuery, RunStats,
    Strategy, WidthPolicy,
};
pub use retry::Backoff;
pub use striped::{HybridPolicy, HybridReport, KernelResult, StrategyChoice, Workspace};
pub use traceback::{traceback_align, Alignment};
