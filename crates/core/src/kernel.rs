//! Strategy/backend/width dispatch and the public [`Aligner`] API.
//!
//! This is AAlign's "re-link against the platform's vector modules"
//! step done at runtime: the aligner resolves an ISA (AVX-512 →
//! AVX2 → SSE4.1 → emulated), an element width (with automatic
//! i16 → i32 overflow fallback, the SWPS3 escape hatch), and a
//! strategy (sequential / striped-iterate / striped-scan / hybrid),
//! then runs the monomorphized kernel for that combination.

// The dispatch chain threads the same fixed tuple (engine, profile,
// subject, scoring, strategy, policy, workspace, sink) through every
// monomorphized layer; bundling it into a struct would only move the
// eight names behind a dot.
#![allow(clippy::too_many_arguments)]

use aalign_bio::{Sequence, StripedProfile};
use aalign_obs::{CollectorSink, NullSink, TraceSink};
use aalign_vec::detect::{Isa, IsaSupport};
use aalign_vec::{EmuEngine, SimdEngine};

use std::sync::Arc;

use crate::certify::{config_fingerprint, CertificateStore};
use crate::config::{AlignConfig, TableII};
use crate::scalar::scalar_column_align;
use crate::striped::{
    hybrid_align_sink, iterate_align_sink, scan_align_sink, HybridPolicy, KernelResult, Workspace,
};

/// Vectorization strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Optimized sequential kernel (the Fig. 9 baseline).
    Sequential,
    /// Paper Alg. 2.
    StripedIterate,
    /// Paper Alg. 3.
    StripedScan,
    /// Paper Sec. V-B runtime switcher (the default, as in the paper).
    #[default]
    Hybrid,
}

impl Strategy {
    /// Short name used in reports.
    pub fn short(self) -> &'static str {
        match self {
            Strategy::Sequential => "seq",
            Strategy::StripedIterate => "iterate",
            Strategy::StripedScan => "scan",
            Strategy::Hybrid => "hybrid",
        }
    }
}

/// Score element width selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WidthPolicy {
    /// Try i16 first (when the score bound allows), retry i32 on
    /// saturation — the standard production configuration.
    #[default]
    Auto,
    /// Force 8-bit lanes (no fallback; output may report saturation).
    Fixed8,
    /// Force 16-bit lanes.
    Fixed16,
    /// Force 32-bit lanes (the paper's Fig. 9/10 configuration).
    Fixed32,
}

/// Errors surfaced by [`Aligner`] and the search drivers.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard
/// arm, which lets the engine grow failure modes (cancellation was
/// the first addition) without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlignError {
    /// The query has no residues (profiles require ≥ 1).
    EmptyQuery,
    /// Query or subject alphabet differs from the matrix's.
    AlphabetMismatch {
        /// Offending sequence id.
        id: String,
    },
    /// The operation was aborted via a cancellation token before it
    /// completed; partial results are discarded.
    Cancelled,
    /// The search's deadline elapsed before the sweep finished; the
    /// report carries the verified results of the completed subjects
    /// and is marked partial.
    DeadlineExceeded,
    /// A job panicked while scoring one subject. The panic was caught
    /// at the slot boundary: the sweep continued, every other
    /// subject's result stays valid, and this error rides on the
    /// report rather than failing the query.
    WorkerPanicked {
        /// Database index of the subject whose scoring panicked.
        db_index: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// A pool worker thread died mid-query (its sweep output is
    /// lost). The engine quarantines and respawns the worker before
    /// the next query; the surviving workers' results stay valid.
    WorkerLost {
        /// Pool-local id of the dead worker.
        worker_id: usize,
        /// Stringified panic payload, when one was recovered.
        payload: String,
    },
    /// A shard-supervisor child process could not produce a result
    /// for this query (crashed and exhausted its retry, timed out,
    /// or was circuit-broken). The merged report stays valid for the
    /// surviving shards; this error names the exact database range
    /// `[start, end)` the answer does not cover.
    ShardLost {
        /// Supervisor-local shard index.
        shard: usize,
        /// First database index of the uncovered range (inclusive).
        start: usize,
        /// Past-the-end database index of the uncovered range.
        end: usize,
    },
}

impl core::fmt::Display for AlignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "query sequence is empty"),
            Self::AlphabetMismatch { id } => {
                write!(
                    f,
                    "sequence {id:?} uses a different alphabet than the matrix"
                )
            }
            Self::Cancelled => write!(f, "operation cancelled by caller"),
            Self::DeadlineExceeded => write!(f, "search deadline exceeded; report is partial"),
            Self::WorkerPanicked { db_index, payload } => {
                write!(f, "worker panicked scoring subject {db_index}: {payload}")
            }
            Self::WorkerLost { worker_id, payload } => {
                write!(f, "search worker {worker_id} died mid-query: {payload}")
            }
            Self::ShardLost { shard, start, end } => {
                write!(
                    f,
                    "shard {shard} lost; database range [{start}, {end}) is uncovered"
                )
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// Per-run statistics (zeroed where not applicable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Lazy-loop segment re-computations (iterate columns).
    pub lazy_iters: u64,
    /// Lazy-loop whole-column sweeps.
    pub lazy_sweeps: u64,
    /// Columns processed by iterate.
    pub iterate_columns: usize,
    /// Columns processed by scan.
    pub scan_columns: usize,
    /// Hybrid: iterate→scan switches.
    pub switches_to_scan: usize,
    /// Hybrid: probes that stayed in iterate.
    pub probes_stayed: usize,
}

impl RunStats {
    /// Field-wise accumulation — aggregate the per-alignment counters
    /// of a whole database sweep into one summary (the search
    /// engine's metrics layer does this per worker, then across
    /// workers).
    ///
    /// Saturating, never wrapping: the counters are diagnostics, and
    /// a pinned ceiling is both honest ("at least this many") and
    /// what keeps merge associative and commutative, so per-worker
    /// stats can be folded in any order (property-tested in
    /// `tests/stats_properties.rs`).
    pub fn merge(&mut self, other: &RunStats) {
        self.lazy_iters = self.lazy_iters.saturating_add(other.lazy_iters);
        self.lazy_sweeps = self.lazy_sweeps.saturating_add(other.lazy_sweeps);
        self.iterate_columns = self.iterate_columns.saturating_add(other.iterate_columns);
        self.scan_columns = self.scan_columns.saturating_add(other.scan_columns);
        self.switches_to_scan = self.switches_to_scan.saturating_add(other.switches_to_scan);
        self.probes_stayed = self.probes_stayed.saturating_add(other.probes_stayed);
    }
}

/// Result of an alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignOutput {
    /// The alignment score.
    pub score: i32,
    /// Strategy that produced it.
    pub strategy: Strategy,
    /// Backend description, e.g. `"avx2/i16x16"`.
    pub backend: String,
    /// Element width the final (non-saturated) run used.
    pub elem_bits: u32,
    /// Number of width retries taken (0 = first width sufficed).
    pub width_retries: u32,
    /// True if even the widest attempt saturated (score unreliable).
    pub saturated: bool,
    /// Kernel statistics.
    pub stats: RunStats,
}

/// How an [`AlignOutput`]'s score should be trusted — the tri-state
/// behind the engine's overflow-rescue decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOutcome {
    /// First width attempt sufficed; the score is exact.
    Exact,
    /// A narrow attempt saturated and the aligner's own width plan
    /// retried wider; the final score is exact.
    Widened {
        /// Width escalations taken within the aligner's plan.
        retries: u32,
    },
    /// Every width the policy allowed saturated: the score is a lower
    /// bound, not the alignment score. Callers wanting the exact value
    /// must re-run at a wider [`WidthPolicy`] — the search engine's
    /// overflow rescue does exactly that.
    Saturated,
}

impl AlignOutput {
    /// Classify this result for the widen-and-retry (rescue) logic.
    pub fn outcome(&self) -> AlignOutcome {
        if self.saturated {
            AlignOutcome::Saturated
        } else if self.width_retries > 0 {
            AlignOutcome::Widened {
                retries: self.width_retries,
            }
        } else {
            AlignOutcome::Exact
        }
    }
}

/// A resolved (ISA, element width, lane count) choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BackendChoice {
    isa: Isa,
    bits: u32,
    lanes: usize,
}

impl BackendChoice {
    fn name(&self) -> String {
        format!("{}/i{}x{}", self.isa.name(), self.bits, self.lanes)
    }
}

/// Resolve the backend for a width: the preferred ISA if it supports
/// the width and is present, otherwise falling back to the widest
/// available, otherwise to the emulated engine *with the preferred
/// register shape* (so "MIC" experiments keep 512-bit geometry on
/// hosts without AVX-512).
fn resolve_backend(pref: Option<Isa>, bits: u32) -> BackendChoice {
    let sup = IsaSupport::detect();
    let native = |isa: Isa| BackendChoice {
        isa,
        bits,
        lanes: (isa.bits() / bits) as usize,
    };
    let emulate_shape = |shape_bits: u32| BackendChoice {
        isa: Isa::Emulated,
        bits,
        lanes: (shape_bits / bits) as usize,
    };
    match pref {
        Some(Isa::Avx512) => {
            // 32-bit needs avx512f; 16-bit additionally avx512bw
            // (beyond IMCI, which had no narrow lanes).
            let native_ok =
                (bits == 32 && sup.avx512f) || (bits == 16 && sup.avx512f && sup.avx512bw);
            if native_ok {
                native(Isa::Avx512)
            } else {
                // No native engine for this width; emulate the
                // 512-bit shape.
                emulate_shape(512)
            }
        }
        Some(Isa::Avx2) => {
            if sup.avx2 {
                native(Isa::Avx2)
            } else {
                emulate_shape(256)
            }
        }
        Some(Isa::Sse41) => {
            if sup.sse41 && bits >= 16 {
                native(Isa::Sse41)
            } else {
                emulate_shape(128)
            }
        }
        Some(Isa::Emulated) => emulate_shape(512),
        None => {
            let avx512_ok =
                (bits == 32 && sup.avx512f) || (bits == 16 && sup.avx512f && sup.avx512bw);
            if avx512_ok {
                native(Isa::Avx512)
            } else if sup.avx2 {
                native(Isa::Avx2)
            } else if sup.sse41 && bits >= 16 {
                native(Isa::Sse41)
            } else {
                emulate_shape(256)
            }
        }
    }
}

/// Outcome of one striped run at one width.
struct StrategyOutcome {
    result: KernelResult,
    switches_to_scan: usize,
    probes_stayed: usize,
}

#[inline(always)]
fn run_generic_sink<E: SimdEngine, const L: bool, const A: bool, S: TraceSink>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<E::Elem>,
    sink: &mut S,
) -> StrategyOutcome {
    match strategy {
        Strategy::StripedIterate => StrategyOutcome {
            result: iterate_align_sink::<E, L, A, S>(eng, prof, subject, t2, ws, sink),
            switches_to_scan: 0,
            probes_stayed: 0,
        },
        Strategy::StripedScan => StrategyOutcome {
            result: scan_align_sink::<E, L, A, S>(eng, prof, subject, t2, ws, sink),
            switches_to_scan: 0,
            probes_stayed: 0,
        },
        Strategy::Hybrid => {
            let rep =
                hybrid_align_sink::<E, L, A, S>(eng, prof, subject, t2, policy, ws, false, sink);
            StrategyOutcome {
                result: rep.result,
                switches_to_scan: rep.switches_to_scan,
                probes_stayed: rep.probes_stayed,
            }
        }
        Strategy::Sequential => unreachable!("sequential handled before dispatch"),
    }
}

/// The once-per-alignment trace dispatch: disabled sinks route to the
/// [`NullSink`] monomorphization (bit-for-bit the pre-observability
/// kernel — no per-column virtual calls, no branches), enabled sinks
/// take the dynamically dispatched instantiation.
#[inline(always)]
fn run_generic<E: SimdEngine, const L: bool, const A: bool>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<E::Elem>,
    sink: &mut dyn TraceSink,
) -> StrategyOutcome {
    if sink.enabled() {
        run_generic_sink::<E, L, A, _>(
            eng,
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            &mut &mut *sink,
        )
    } else {
        run_generic_sink::<E, L, A, _>(eng, prof, subject, t2, strategy, policy, ws, &mut NullSink)
    }
}

/// Dispatch the `LOCAL`/`AFFINE` const parameters from runtime flags.
#[inline(always)]
fn run_bools<E: SimdEngine>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<E::Elem>,
    sink: &mut dyn TraceSink,
) -> StrategyOutcome {
    match (t2.local, t2.affine) {
        (true, true) => {
            run_generic::<E, true, true>(eng, prof, subject, t2, strategy, policy, ws, sink)
        }
        (true, false) => {
            run_generic::<E, true, false>(eng, prof, subject, t2, strategy, policy, ws, sink)
        }
        (false, true) => {
            run_generic::<E, false, true>(eng, prof, subject, t2, strategy, policy, ws, sink)
        }
        (false, false) => {
            run_generic::<E, false, false>(eng, prof, subject, t2, strategy, policy, ws, sink)
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod tf_wrappers {
    //! `#[target_feature]` wrappers: compiling the whole column loop
    //! with the feature enabled lets the engine's intrinsics inline.
    //! Soundness: callers only reach these after constructing the
    //! engine token, which proves the feature was detected.
    use super::*;
    use aalign_vec::avx2::{Avx2I16, Avx2I32, Avx2I8};
    use aalign_vec::avx512::Avx512I32;
    use aalign_vec::sse41::{Sse41I16, Sse41I32};

    macro_rules! tf_wrapper {
        ($name:ident, $feature:literal, $engine:ty, $elem:ty) => {
            #[target_feature(enable = $feature)]
            pub unsafe fn $name(
                eng: $engine,
                prof: &StripedProfile<$elem>,
                subject: &[u8],
                t2: TableII,
                strategy: Strategy,
                policy: HybridPolicy,
                ws: &mut Workspace<$elem>,
                sink: &mut dyn TraceSink,
            ) -> StrategyOutcome {
                run_bools(eng, prof, subject, t2, strategy, policy, ws, sink)
            }
        };
    }

    tf_wrapper!(run_avx512_i32, "avx512f", Avx512I32, i32);

    #[target_feature(enable = "avx512f")]
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn run_avx512_i16(
        eng: aalign_vec::avx512::Avx512I16,
        prof: &StripedProfile<i16>,
        subject: &[u8],
        t2: TableII,
        strategy: Strategy,
        policy: HybridPolicy,
        ws: &mut Workspace<i16>,
        sink: &mut dyn TraceSink,
    ) -> StrategyOutcome {
        run_bools(eng, prof, subject, t2, strategy, policy, ws, sink)
    }
    tf_wrapper!(run_avx2_i32, "avx2", Avx2I32, i32);
    tf_wrapper!(run_avx2_i16, "avx2", Avx2I16, i16);
    tf_wrapper!(run_avx2_i8, "avx2", Avx2I8, i8);
    tf_wrapper!(run_sse41_i32, "sse4.1", Sse41I32, i32);
    tf_wrapper!(run_sse41_i16, "sse4.1", Sse41I16, i16);
}

/// Scratch buffers reusable across alignments (one per thread).
#[derive(Debug, Default)]
pub struct AlignScratch {
    ws8: Workspace<i8>,
    ws16: Workspace<i16>,
    ws32: Workspace<i32>,
}

impl AlignScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all width-specific workspaces.
    ///
    /// A reuse hook for pooled callers: after a warm-up alignment the
    /// value stops growing (buffers are retained, not reallocated),
    /// so a persistent worker can report — and a test can assert —
    /// that back-to-back queries pay zero allocation setup.
    pub fn reserved_bytes(&self) -> usize {
        self.ws8.reserved_elems() * core::mem::size_of::<i8>()
            + self.ws16.reserved_elems() * core::mem::size_of::<i16>()
            + self.ws32.reserved_elems() * core::mem::size_of::<i32>()
    }
}

fn run_width_i32(
    choice: BackendChoice,
    prof: &StripedProfile<i32>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<i32>,
    sink: &mut dyn TraceSink,
) -> StrategyOutcome {
    #[cfg(target_arch = "x86_64")]
    {
        use aalign_vec::avx2::Avx2I32;
        use aalign_vec::avx512::Avx512I32;
        use aalign_vec::sse41::Sse41I32;
        match choice.isa {
            Isa::Avx512 => {
                if let Some(eng) = Avx512I32::new() {
                    // SAFETY: engine construction proves avx512f.
                    return unsafe {
                        tf_wrappers::run_avx512_i32(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            Isa::Avx2 => {
                if let Some(eng) = Avx2I32::new() {
                    // SAFETY: engine construction proves avx2.
                    return unsafe {
                        tf_wrappers::run_avx2_i32(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            Isa::Sse41 => {
                if let Some(eng) = Sse41I32::new() {
                    // SAFETY: engine construction proves sse4.1.
                    return unsafe {
                        tf_wrappers::run_sse41_i32(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            Isa::Emulated => {}
        }
    }
    match choice.lanes {
        4 => run_bools(
            EmuEngine::<i32, 4>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
        8 => run_bools(
            EmuEngine::<i32, 8>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
        _ => run_bools(
            EmuEngine::<i32, 16>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
    }
}

fn run_width_i16(
    choice: BackendChoice,
    prof: &StripedProfile<i16>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<i16>,
    sink: &mut dyn TraceSink,
) -> StrategyOutcome {
    #[cfg(target_arch = "x86_64")]
    {
        use aalign_vec::avx2::Avx2I16;
        use aalign_vec::avx512::Avx512I16;
        use aalign_vec::sse41::Sse41I16;
        match choice.isa {
            Isa::Avx512 => {
                if let Some(eng) = Avx512I16::new() {
                    // SAFETY: engine construction proves avx512f+bw.
                    return unsafe {
                        tf_wrappers::run_avx512_i16(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            Isa::Avx2 => {
                if let Some(eng) = Avx2I16::new() {
                    // SAFETY: engine construction proves avx2.
                    return unsafe {
                        tf_wrappers::run_avx2_i16(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            Isa::Sse41 => {
                if let Some(eng) = Sse41I16::new() {
                    // SAFETY: engine construction proves sse4.1.
                    return unsafe {
                        tf_wrappers::run_sse41_i16(
                            eng, prof, subject, t2, strategy, policy, ws, sink,
                        )
                    };
                }
            }
            _ => {}
        }
    }
    match choice.lanes {
        8 => run_bools(
            EmuEngine::<i16, 8>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
        32 => run_bools(
            EmuEngine::<i16, 32>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
        _ => run_bools(
            EmuEngine::<i16, 16>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
    }
}

fn run_width_i8(
    choice: BackendChoice,
    prof: &StripedProfile<i8>,
    subject: &[u8],
    t2: TableII,
    strategy: Strategy,
    policy: HybridPolicy,
    ws: &mut Workspace<i8>,
    sink: &mut dyn TraceSink,
) -> StrategyOutcome {
    #[cfg(target_arch = "x86_64")]
    {
        use aalign_vec::avx2::Avx2I8;
        if choice.isa == Isa::Avx2 {
            if let Some(eng) = Avx2I8::new() {
                // SAFETY: engine construction proves avx2.
                return unsafe {
                    tf_wrappers::run_avx2_i8(eng, prof, subject, t2, strategy, policy, ws, sink)
                };
            }
        }
    }
    match choice.lanes {
        64 => run_bools(
            EmuEngine::<i8, 64>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
        _ => run_bools(
            EmuEngine::<i8, 32>::new(),
            prof,
            subject,
            t2,
            strategy,
            policy,
            ws,
            sink,
        ),
    }
}

/// A query prepared for repeated alignment: striped profiles built
/// once per width, shareable across threads (paper Sec. V-E).
#[derive(Debug)]
pub struct PreparedQuery {
    query_id: String,
    query_len: usize,
    p8: Option<(BackendChoice, StripedProfile<i8>)>,
    p16: Option<(BackendChoice, StripedProfile<i16>)>,
    p32: Option<(BackendChoice, StripedProfile<i32>)>,
}

impl PreparedQuery {
    /// Query id.
    pub fn query_id(&self) -> &str {
        &self.query_id
    }

    /// Query length in residues.
    pub fn query_len(&self) -> usize {
        self.query_len
    }
}

/// The high-level pairwise aligner.
///
/// ```
/// use aalign_core::{AlignConfig, Aligner, GapModel, Strategy};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
///
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// let aligner = Aligner::new(cfg).with_strategy(Strategy::StripedScan);
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let s = Sequence::protein("s", b"PAWHEAE").unwrap();
/// let out = aligner.align(&q, &s).unwrap();
/// assert!(out.score > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Aligner {
    cfg: AlignConfig,
    strategy: Strategy,
    width: WidthPolicy,
    isa: Option<Isa>,
    hybrid: Option<HybridPolicy>,
    certs: Option<Arc<CertificateStore>>,
}

impl Aligner {
    /// Aligner with default strategy (hybrid) and width policy (auto).
    pub fn new(cfg: AlignConfig) -> Self {
        Self {
            cfg,
            strategy: Strategy::default(),
            width: WidthPolicy::default(),
            isa: None,
            hybrid: None,
            certs: None,
        }
    }

    /// Select the vectorization strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Select the element-width policy.
    pub fn with_width(mut self, width: WidthPolicy) -> Self {
        self.width = width;
        self
    }

    /// Pin an ISA (e.g. [`Isa::Avx2`] for "CPU", [`Isa::Avx512`] for
    /// the paper's "MIC" shape). Unavailable ISAs fall back to the
    /// emulated engine with the same register geometry.
    pub fn with_isa(mut self, isa: Isa) -> Self {
        self.isa = Some(isa);
        self
    }

    /// Override the hybrid switching policy.
    pub fn with_hybrid_policy(mut self, policy: HybridPolicy) -> Self {
        self.hybrid = Some(policy);
        self
    }

    /// Install externally produced width certificates
    /// ([`mod@crate::certify`]). Width selection then prefers a covering
    /// granted certificate over the per-call closed-form
    /// recomputation, and the `Auto` ladder starts at i8 when the
    /// narrow lane is proven rescue-free.
    ///
    /// # Panics
    /// Panics when the store's fingerprint does not match this
    /// aligner's configuration — a mismatched certificate is an
    /// install-time programming error, never a runtime condition.
    pub fn with_certificates(mut self, store: CertificateStore) -> Self {
        assert!(
            store.matches(config_fingerprint(&self.cfg)),
            "certificate fingerprint does not match the aligner's configuration"
        );
        self.certs = Some(Arc::new(store));
        self
    }

    /// Run the certificate prover over this aligner's own
    /// configuration for the given length bounds and install the
    /// result — the one-stop form of [`with_certificates`]
    /// (fingerprints match by construction).
    ///
    /// [`with_certificates`]: Self::with_certificates
    pub fn with_certified_bounds(self, max_query: usize, max_subject: usize) -> Self {
        let store = CertificateStore::compute(&self.cfg, max_query, max_subject);
        self.with_certificates(store)
    }

    /// The installed certificate store, when any.
    pub fn certificates(&self) -> Option<&CertificateStore> {
        self.certs.as_deref()
    }

    /// Narrowest lane width proven rescue-free for an `m`-long query
    /// against an `n`-long subject, or 0 when no installed
    /// certificate covers the pair. This is what the search engine
    /// stamps into `SearchMetrics::certified_width`.
    pub fn certified_width(&self, m: usize, n: usize) -> u32 {
        self.certs
            .as_deref()
            .map_or(0, |store| store.narrowest_granted(m, n))
    }

    /// The configuration this aligner runs.
    pub fn config(&self) -> &AlignConfig {
        &self.cfg
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    fn check_seq(&self, s: &Sequence) -> Result<(), AlignError> {
        self.cfg.check_seq(s)
    }

    /// Can a `bits`-wide element provably hold every intermediate
    /// value of aligning an `m`-long query to an `n`-long subject?
    ///
    /// A covering granted certificate ([`with_certificates`]) answers
    /// first: the prover's cell-level verdict is checked once, ahead
    /// of time, and is never less precise than the closed forms.
    /// Otherwise this delegates to the
    /// [`ScoreBounds`](crate::config::ScoreBounds) interval analysis —
    /// the same pass `aalign-analyzer range` reports offline. Local
    /// scores are bounded by `min(m,n)·max_match` regardless of total
    /// lengths; global magnitudes grow with `m + n` (boundary gap
    /// ramps and all-mismatch paths). 32-bit lanes pass
    /// unconditionally here: they are the widest the kernels have, and
    /// their own ceiling is only exceeded by inputs `align()` could
    /// never buffer.
    ///
    /// [`with_certificates`]: Self::with_certificates
    fn narrow_ok(&self, bits: u32, m: usize, n: usize) -> bool {
        if bits >= 32 {
            return true;
        }
        if let Some(store) = self.certs.as_deref() {
            if store.grants(bits, m, n) {
                return true;
            }
        }
        self.cfg.score_bounds(m, n).fits(bits)
    }

    /// Widths the policy wants, in attempt order, given the query.
    /// (Auto's i16 entry is additionally checked per subject.)
    fn width_plan(&self, query_len: usize) -> Vec<u32> {
        match self.width {
            WidthPolicy::Fixed8 => vec![8],
            WidthPolicy::Fixed16 => vec![16],
            WidthPolicy::Fixed32 => vec![32],
            WidthPolicy::Auto => {
                // Local scores are bounded by the *shorter* sequence,
                // so i16 stays useful for long queries against typical
                // database subjects — always build it and let the
                // per-subject check choose. Global magnitudes grow
                // with m+n; prune i16 when the query alone rules it
                // out.
                let try_narrow = match self.cfg.kind {
                    crate::config::AlignKind::Local => true,
                    crate::config::AlignKind::Global | crate::config::AlignKind::SemiGlobal => {
                        self.narrow_ok(16, query_len, query_len)
                    }
                };
                let mut plan = Vec::with_capacity(3);
                // i8 enters the ladder only with proof: a granted
                // certificate accepting this query length (subjects
                // are re-gated per call against the same store).
                if self
                    .certs
                    .as_deref()
                    .is_some_and(|store| store.grants_for_query(8, query_len))
                {
                    plan.push(8);
                }
                if try_narrow {
                    plan.push(16);
                }
                plan.push(32);
                plan
            }
        }
    }

    /// Build the profiles for repeated alignment against many
    /// subjects. Share the result across threads; it is immutable.
    pub fn prepare(&self, query: &Sequence) -> Result<PreparedQuery, AlignError> {
        if query.is_empty() {
            return Err(AlignError::EmptyQuery);
        }
        self.check_seq(query)?;
        let mut pq = PreparedQuery {
            query_id: query.id().to_string(),
            query_len: query.len(),
            p8: None,
            p16: None,
            p32: None,
        };
        if self.strategy == Strategy::Sequential {
            return Ok(pq);
        }
        for bits in self.width_plan(query.len()) {
            let choice = resolve_backend(self.isa, bits);
            match bits {
                8 => {
                    pq.p8 = Some((
                        choice,
                        StripedProfile::build(query, &self.cfg.matrix, choice.lanes),
                    ));
                }
                16 => {
                    pq.p16 = Some((
                        choice,
                        StripedProfile::build(query, &self.cfg.matrix, choice.lanes),
                    ));
                }
                _ => {
                    pq.p32 = Some((
                        choice,
                        StripedProfile::build(query, &self.cfg.matrix, choice.lanes),
                    ));
                }
            }
        }
        Ok(pq)
    }

    /// Align a prepared query against one subject, reusing `scratch`.
    pub fn align_prepared(
        &self,
        pq: &PreparedQuery,
        subject: &Sequence,
        scratch: &mut AlignScratch,
    ) -> Result<AlignOutput, AlignError> {
        self.align_prepared_sink(pq, subject, scratch, &mut NullSink)
    }

    /// [`align_prepared`](Self::align_prepared) with a trace sink
    /// receiving the per-column [`aalign_obs::HybridEvent`]s.
    ///
    /// Only the **final, kept** width attempt's events are forwarded:
    /// when a narrow run saturates and the aligner retries wider, the
    /// saturated attempt's events are discarded, so the emitted column
    /// stream reconciles exactly with the returned [`RunStats`]
    /// (`iterate_columns` / `scan_columns` describe the kept run).
    ///
    /// A disabled sink (`sink.enabled() == false`, e.g. a
    /// [`NullSink`]) routes to the null-monomorphized kernels after a
    /// single check — that path is what `align_prepared` itself uses
    /// and what the `obs_overhead` bench holds to <1% overhead.
    pub fn align_prepared_sink(
        &self,
        pq: &PreparedQuery,
        subject: &Sequence,
        scratch: &mut AlignScratch,
        sink: &mut dyn TraceSink,
    ) -> Result<AlignOutput, AlignError> {
        self.check_seq(subject)?;
        assert_ne!(
            self.strategy,
            Strategy::Sequential,
            "Strategy::Sequential has no prepared form; use align()"
        );

        let t2 = self.cfg.table2();
        let mut retries = 0u32;
        let mut last: Option<(StrategyOutcome, BackendChoice, u32)> = None;

        // Per-attempt event buffering: each width attempt records into
        // `buf`, which is cleared on retry so only the kept attempt's
        // columns reach the caller's sink (after the loop).
        let tracing = sink.enabled();
        let mut buf = CollectorSink::new();
        let mut null = NullSink;

        let attempts: Vec<u32> = [
            pq.p16.as_ref().map(|_| 16u32),
            pq.p32.as_ref().map(|_| 32u32),
            pq.p8.as_ref().map(|_| 8u32),
        ]
        .into_iter()
        .flatten()
        .collect();
        // Attempt order: narrow before wide. i8 participates when
        // explicitly requested (Fixed8) or when a width certificate
        // proved it rescue-free for this query (Auto ladder).
        let mut order = attempts;
        order.sort_unstable();

        for bits in order {
            // Auto policy: don't waste a narrow attempt that the
            // per-subject bound already rules out.
            if self.width == WidthPolicy::Auto
                && bits < 32
                && !self.narrow_ok(bits, pq.query_len, subject.len())
            {
                continue;
            }
            let policy = self
                .hybrid
                .unwrap_or_else(|| HybridPolicy::for_lanes(self.lanes_for(pq, bits)));
            let attempt_sink: &mut dyn TraceSink = if tracing {
                buf.events.clear();
                &mut buf
            } else {
                &mut null
            };
            let (outcome, choice) = match bits {
                8 => {
                    let (choice, prof) = pq.p8.as_ref().unwrap();
                    (
                        run_width_i8(
                            *choice,
                            prof,
                            subject.indices(),
                            t2,
                            self.strategy,
                            policy,
                            &mut scratch.ws8,
                            attempt_sink,
                        ),
                        *choice,
                    )
                }
                16 => {
                    let (choice, prof) = pq.p16.as_ref().unwrap();
                    (
                        run_width_i16(
                            *choice,
                            prof,
                            subject.indices(),
                            t2,
                            self.strategy,
                            policy,
                            &mut scratch.ws16,
                            attempt_sink,
                        ),
                        *choice,
                    )
                }
                _ => {
                    let (choice, prof) = pq.p32.as_ref().unwrap();
                    (
                        run_width_i32(
                            *choice,
                            prof,
                            subject.indices(),
                            t2,
                            self.strategy,
                            policy,
                            &mut scratch.ws32,
                            attempt_sink,
                        ),
                        *choice,
                    )
                }
            };
            let saturated = outcome.result.saturated;
            last = Some((outcome, choice, bits));
            if !saturated {
                break;
            }
            retries += 1;
        }

        // Forward the kept attempt's column events (saturated retries
        // were cleared above, so these reconcile with `stats`).
        if tracing {
            for ev in buf.take() {
                sink.record(ev);
            }
        }

        let (outcome, choice, bits) = last.expect("width plan is never empty");
        Ok(AlignOutput {
            score: outcome.result.score,
            strategy: self.strategy,
            backend: choice.name(),
            elem_bits: bits,
            width_retries: retries.saturating_sub(u32::from(outcome.result.saturated)),
            saturated: outcome.result.saturated,
            stats: RunStats {
                lazy_iters: outcome.result.lazy_iters,
                lazy_sweeps: outcome.result.lazy_sweeps,
                iterate_columns: outcome.result.iterate_columns,
                scan_columns: outcome.result.scan_columns,
                switches_to_scan: outcome.switches_to_scan,
                probes_stayed: outcome.probes_stayed,
            },
        })
    }

    fn lanes_for(&self, pq: &PreparedQuery, bits: u32) -> usize {
        match bits {
            8 => pq.p8.as_ref().map_or(32, |(c, _)| c.lanes),
            16 => pq.p16.as_ref().map_or(16, |(c, _)| c.lanes),
            _ => pq.p32.as_ref().map_or(8, |(c, _)| c.lanes),
        }
    }

    /// Align one query against many subjects, preparing the query
    /// once and reusing scratch buffers — the right call shape for
    /// anything beyond a handful of subjects (see also
    /// [`aalign-par`'s `search_database`](https://docs.rs/aalign-par)
    /// for the multithreaded version).
    pub fn align_many(
        &self,
        query: &Sequence,
        subjects: &[Sequence],
    ) -> Result<Vec<AlignOutput>, AlignError> {
        if self.strategy == Strategy::Sequential {
            return subjects.iter().map(|s| self.align(query, s)).collect();
        }
        let pq = self.prepare(query)?;
        let mut scratch = AlignScratch::new();
        subjects
            .iter()
            .map(|s| self.align_prepared(&pq, s, &mut scratch))
            .collect()
    }

    /// One-shot alignment (prepares the query internally).
    pub fn align(&self, query: &Sequence, subject: &Sequence) -> Result<AlignOutput, AlignError> {
        if query.is_empty() {
            return Err(AlignError::EmptyQuery);
        }
        self.check_seq(query)?;
        self.check_seq(subject)?;
        if self.strategy == Strategy::Sequential {
            let r = scalar_column_align(&self.cfg, query, subject);
            return Ok(AlignOutput {
                score: r.score,
                strategy: Strategy::Sequential,
                backend: "scalar".to_string(),
                elem_bits: 32,
                width_retries: 0,
                saturated: false,
                stats: RunStats::default(),
            });
        }
        let pq = self.prepare(query)?;
        let mut scratch = AlignScratch::new();
        self.align_prepared(&pq, subject, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlignKind, GapModel};
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};

    fn cfgs() -> Vec<AlignConfig> {
        let mut v = Vec::new();
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            for gap in [GapModel::affine(-10, -2), GapModel::linear(-3)] {
                v.push(AlignConfig::new(kind, gap, &BLOSUM62));
            }
        }
        v
    }

    #[test]
    fn all_strategies_match_reference_through_public_api() {
        let mut rng = seeded_rng(5150);
        let q = named_query(&mut rng, 130);
        for spec in nine_similarity_specs().into_iter().take(5) {
            let s = spec.generate(&mut rng, &q).subject;
            for cfg in cfgs() {
                let want = paradigm_dp(&cfg, &q, &s).score;
                for strat in [
                    Strategy::Sequential,
                    Strategy::StripedIterate,
                    Strategy::StripedScan,
                    Strategy::Hybrid,
                ] {
                    let out = Aligner::new(cfg.clone())
                        .with_strategy(strat)
                        .align(&q, &s)
                        .unwrap();
                    assert_eq!(out.score, want, "{} {:?}", cfg.label(), strat);
                    assert!(!out.saturated);
                }
            }
        }
    }

    #[test]
    fn isa_pinning_produces_identical_scores() {
        let mut rng = seeded_rng(808);
        let q = named_query(&mut rng, 100);
        let s = named_query(&mut rng, 90);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let want = paradigm_dp(&cfg, &q, &s).score;
        for isa in [Isa::Emulated, Isa::Sse41, Isa::Avx2, Isa::Avx512] {
            let out = Aligner::new(cfg.clone())
                .with_isa(isa)
                .with_width(WidthPolicy::Fixed32)
                .align(&q, &s)
                .unwrap();
            assert_eq!(out.score, want, "isa {isa:?} ({})", out.backend);
        }
    }

    #[test]
    fn auto_width_falls_back_on_saturation() {
        // Long identical sequences: score ~ 11 * 4000 = 44000 > i16.
        let text: Vec<u8> = std::iter::repeat_n(b"WAGHE".to_vec(), 800)
            .flatten()
            .collect();
        let q = Sequence::protein("big", &text).unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg.clone())
            .with_width(WidthPolicy::Auto)
            .align(&q, &q)
            .unwrap();
        assert!(!out.saturated);
        assert_eq!(out.elem_bits, 32, "must have escalated ({})", out.backend);
        let want = crate::scalar::scalar_column_align(&cfg, &q, &q).score;
        assert_eq!(out.score, want);
    }

    #[test]
    fn auto_width_uses_i16_when_safe() {
        let mut rng = seeded_rng(2);
        let q = named_query(&mut rng, 80);
        let s = named_query(&mut rng, 60);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg).align(&q, &s).unwrap();
        assert_eq!(out.elem_bits, 16, "short queries stay narrow");
        assert_eq!(out.width_retries, 0);
    }

    #[test]
    fn fixed16_reports_saturation_without_fallback() {
        let text: Vec<u8> = std::iter::repeat_n(b'W', 4000).collect();
        let q = Sequence::protein("big", &text).unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg)
            .with_width(WidthPolicy::Fixed16)
            .align(&q, &q)
            .unwrap();
        assert!(out.saturated);
        assert_eq!(out.elem_bits, 16);
    }

    #[test]
    fn empty_query_is_an_error() {
        let q = Sequence::protein("e", b"").unwrap();
        let s = Sequence::protein("s", b"WW").unwrap();
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        assert_eq!(
            Aligner::new(cfg).align(&q, &s).unwrap_err(),
            AlignError::EmptyQuery
        );
    }

    #[test]
    fn alphabet_mismatch_is_an_error() {
        let q = Sequence::dna("d", b"ACGT").unwrap();
        let s = Sequence::protein("p", b"WW").unwrap();
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let err = Aligner::new(cfg).align(&q, &s).unwrap_err();
        assert!(matches!(err, AlignError::AlphabetMismatch { .. }));
    }

    #[test]
    fn prepared_query_reuse_matches_one_shot() {
        let mut rng = seeded_rng(99);
        let q = named_query(&mut rng, 120);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let aligner = Aligner::new(cfg).with_strategy(Strategy::Hybrid);
        let pq = aligner.prepare(&q).unwrap();
        let mut scratch = AlignScratch::new();
        for i in 0..8 {
            let s = named_query(&mut rng, 40 + i * 13);
            let a = aligner.align_prepared(&pq, &s, &mut scratch).unwrap();
            let b = aligner.align(&q, &s).unwrap();
            assert_eq!(a.score, b.score);
        }
        assert_eq!(pq.query_id(), q.id());
        assert_eq!(pq.query_len(), 120);
    }

    #[test]
    fn hybrid_stats_report_strategy_mix() {
        let mut rng = seeded_rng(71);
        let q = named_query(&mut rng, 200);
        // Very similar subject forces switches to scan.
        let s = aalign_bio::synth::PairSpec::new(
            aalign_bio::synth::Level::Hi,
            aalign_bio::synth::Level::Hi,
        )
        .generate(&mut rng, &q)
        .subject;
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg)
            .with_strategy(Strategy::Hybrid)
            .with_width(WidthPolicy::Fixed32)
            .with_hybrid_policy(HybridPolicy {
                threshold: 1,
                probe_stride: 16,
            })
            .align(&q, &s)
            .unwrap();
        assert!(out.stats.switches_to_scan > 0, "{:?}", out.stats);
        assert!(out.stats.scan_columns > 0);
        assert_eq!(out.stats.scan_columns + out.stats.iterate_columns, s.len());
    }

    #[test]
    fn align_many_matches_one_shot() {
        let mut rng = seeded_rng(4);
        let q = named_query(&mut rng, 70);
        let subjects: Vec<_> = (0..6).map(|i| named_query(&mut rng, 30 + i * 15)).collect();
        for strat in [Strategy::Sequential, Strategy::Hybrid] {
            let al = Aligner::new(AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62))
                .with_strategy(strat);
            let many = al.align_many(&q, &subjects).unwrap();
            for (s, out) in subjects.iter().zip(&many) {
                assert_eq!(out.score, al.align(&q, s).unwrap().score);
            }
        }
    }

    #[test]
    fn dna_alignment_works_end_to_end() {
        let m = aalign_bio::SubstMatrix::dna(2, -3);
        let q = Sequence::dna("q", b"ACGTACGTAC").unwrap();
        let s = Sequence::dna("s", b"TTACGTACGTACTT").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-5, -2), &m);
        let out = Aligner::new(cfg.clone()).align(&q, &s).unwrap();
        assert_eq!(out.score, 20); // perfect 10-residue match
        assert_eq!(out.score, paradigm_dp(&cfg, &q, &s).score);
    }
}

#[cfg(test)]
mod avx512bw_dispatch_tests {
    use super::*;
    use crate::config::GapModel;
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng};
    use aalign_bio::SubstMatrix;

    #[test]
    fn i16_on_512bit_platform_uses_bw_engine_when_present() {
        let mut rng = seeded_rng(600);
        let q = named_query(&mut rng, 90);
        let s = named_query(&mut rng, 80);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg.clone())
            .with_isa(Isa::Avx512)
            .with_width(WidthPolicy::Fixed16)
            .align(&q, &s)
            .unwrap();
        assert_eq!(out.score, paradigm_dp(&cfg, &q, &s).score);
        assert_eq!(out.elem_bits, 16);
        let sup = IsaSupport::detect();
        if sup.avx512f && sup.avx512bw {
            assert_eq!(out.backend, "avx512/i16x32", "native BW engine expected");
        } else {
            assert!(out.backend.starts_with("emu/"), "{}", out.backend);
        }
        // 32 lanes either way: the 512-bit geometry is preserved.
        assert!(out.backend.ends_with("x32"), "{}", out.backend);
    }

    #[test]
    fn extreme_hybrid_policies_stay_exact() {
        let mut rng = seeded_rng(601);
        let q = named_query(&mut rng, 70);
        let s = named_query(&mut rng, 90);
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let want = paradigm_dp(&cfg, &q, &s).score;
        for policy in [
            HybridPolicy {
                threshold: 0,
                probe_stride: 1,
            },
            HybridPolicy {
                threshold: 0,
                probe_stride: 10_000,
            },
            HybridPolicy {
                threshold: u32::MAX,
                probe_stride: 1,
            },
        ] {
            let out = Aligner::new(cfg.clone())
                .with_hybrid_policy(policy)
                .with_width(WidthPolicy::Fixed32)
                .align(&q, &s)
                .unwrap();
            assert_eq!(out.score, want, "{policy:?}");
        }
    }

    fn dna_seq(id: &str, len: usize, phase: usize) -> Sequence {
        let text: Vec<u8> = (0..len).map(|i| b"ACGT"[(i * 7 + phase) % 4]).collect();
        Sequence::dna(id, &text).unwrap()
    }

    #[test]
    fn certified_auto_ladder_starts_at_i8_and_stays_exact() {
        // A granted i8 certificate puts 8 at the head of the Auto
        // ladder; within the certified bounds the narrow run must
        // neither saturate nor retry, and the score is exact.
        let cfg = AlignConfig::local(GapModel::affine(-5, -2), &SubstMatrix::dna(2, -3));
        let aligner = Aligner::new(cfg.clone()).with_certified_bounds(48, 1000);
        assert_eq!(aligner.certified_width(48, 1000), 8);
        let q = dna_seq("q", 48, 0);
        let s = dna_seq("s", 1000, 1);
        let out = aligner.align(&q, &s).unwrap();
        assert_eq!(out.elem_bits, 8, "{}", out.backend);
        assert!(!out.saturated);
        assert_eq!(out.width_retries, 0);
        assert_eq!(out.score, paradigm_dp(&cfg, &q, &s).score);
        // The same aligner without certificates never schedules i8.
        let plain = Aligner::new(cfg.clone()).align(&q, &s).unwrap();
        assert_eq!(plain.elem_bits, 16);
        assert_eq!(plain.score, out.score);
    }

    #[test]
    fn certified_width_respects_bounds() {
        let cfg = AlignConfig::local(GapModel::affine(-5, -2), &SubstMatrix::dna(2, -3));
        let aligner = Aligner::new(cfg.clone()).with_certified_bounds(48, 1000);
        assert_eq!(aligner.certified_width(48, 500), 8);
        // Outside the certified bounds: no covering certificate.
        assert_eq!(aligner.certified_width(49, 1000), 0);
        assert_eq!(Aligner::new(cfg).certified_width(48, 1000), 0);
    }

    #[test]
    #[should_panic(expected = "fingerprint")]
    fn mismatched_certificates_are_rejected_at_install() {
        use crate::certify::CertificateStore;
        let dna = AlignConfig::local(GapModel::affine(-5, -2), &SubstMatrix::dna(2, -3));
        let store = CertificateStore::compute(&dna, 48, 1000);
        let protein = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let _ = Aligner::new(protein).with_certificates(store);
    }

    #[test]
    fn global_auto_escalates_for_long_dissimilar_pairs() {
        // Global score of dissimilar 3000-residue pairs sinks far
        // below i16::MIN; Auto must detect and use i32.
        let mut rng = seeded_rng(602);
        let q = named_query(&mut rng, 3000);
        let s = named_query(&mut rng, 2500);
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let out = Aligner::new(cfg.clone()).align(&q, &s).unwrap();
        assert!(!out.saturated);
        assert_eq!(out.elem_bits, 32);
        let seq = crate::scalar::scalar_column_align(&cfg, &q, &s);
        assert_eq!(out.score, seq.score);
    }
}
