//! The generalized pairwise-alignment paradigm, executable.
//!
//! Two scalar ground-truth implementations:
//!
//! * [`paradigm_literal`] — Eq. (2) exactly as printed: every cell
//!   maximizes over *all* gap start points `l` in its row and column.
//!   O(n·m·(n+m)) — tests only.
//! * [`paradigm_dp`] — the equivalent Eq. (3–6) dynamic program with
//!   the `U`/`L`/`D` helper tables. O(n·m). This is the reference
//!   every vector kernel is tested against.
//!
//! Their provable equivalence (checked by property tests) is the
//! paper's justification that the DP form — and hence the vector
//! kernels — implement the paradigm.

use aalign_bio::Sequence;

use crate::config::{AlignConfig, AlignKind};

/// Score type used by the scalar references.
pub const NEG_INF: i32 = i32::MIN / 4;

/// Result of a scalar reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefScore {
    /// The alignment score (table max for local, `T[n][m]` for global).
    pub score: i32,
    /// For local: the subject/query end position (1-based) of a
    /// maximal cell. `(0, 0)` when the best local score is 0.
    pub end: (usize, usize),
}

/// Eq. (2), literally. `T` is indexed `[subject 0..=n][query 0..=m]`.
#[allow(clippy::needless_range_loop)] // Eq. (2) is written with explicit indices
pub fn paradigm_literal(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> RefScore {
    let t2 = cfg.table2();
    let (m, n) = (query.len(), subject.len());
    let q = query.indices();
    let s = subject.indices();
    let theta = cfg.gap.theta();
    let beta = cfg.gap.beta();
    let local = cfg.kind == AlignKind::Local;

    let mut t = vec![vec![0i32; m + 1]; n + 1];
    // Boundaries.
    for (i, row) in t.iter_mut().enumerate() {
        row[0] = t2.init_t(i);
    }
    for j in 1..=m {
        t[0][j] = t2.init_col(j - 1);
    }

    let mut best = i32::MIN;
    let mut best_end = (0, 0);
    for i in 1..=n {
        for j in 1..=m {
            let mut v = if local { 0 } else { NEG_INF };
            // Row term: gap in the query direction ending at (i, j),
            // started after query position l (0 ≤ l < j).
            for l in 0..j {
                v = v.max(t[i][l] + theta + beta * (j - l) as i32);
            }
            // Column term: gap in the subject direction.
            for l in 0..i {
                v = v.max(t[l][j] + theta + beta * (i - l) as i32);
            }
            // Diagonal term.
            v = v.max(t[i - 1][j - 1] + cfg.matrix.score(s[i - 1], q[j - 1]));
            t[i][j] = v;
            if v > best {
                best = v;
                best_end = (i, j);
            }
        }
    }
    finish(cfg, &t, best, best_end, n, m)
}

/// Eq. (3–6): the `U`/`L`/`D` dynamic program (full matrices).
///
/// ```
/// use aalign_core::paradigm::paradigm_dp;
/// use aalign_core::{AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"WWWW").unwrap();
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// assert_eq!(paradigm_dp(&cfg, &q, &q).score, 44); // 4 × W:W
/// ```
#[allow(clippy::needless_range_loop)] // DP recurrences read clearest with indices
pub fn paradigm_dp(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> RefScore {
    let t2 = cfg.table2();
    let (m, n) = (query.len(), subject.len());
    let q = query.indices();
    let s = subject.indices();
    let local = t2.local;

    let mut t = vec![vec![0i32; m + 1]; n + 1];
    let mut up = vec![vec![NEG_INF; m + 1]; n + 1]; // U: gap in query dir
    let mut left = vec![vec![NEG_INF; m + 1]; n + 1]; // L: gap in subject dir
    for (i, row) in t.iter_mut().enumerate() {
        row[0] = t2.init_t(i);
    }
    for j in 1..=m {
        t[0][j] = t2.init_col(j - 1);
    }

    let mut best = i32::MIN;
    let mut best_end = (0, 0);
    for i in 1..=n {
        for j in 1..=m {
            // Eq. (4): U depends on the upper neighbour (along query).
            up[i][j] = (up[i][j - 1] + t2.gap_up_ext).max(t[i][j - 1] + t2.gap_up);
            // Eq. (5): L depends on the left neighbour (along subject).
            left[i][j] = (left[i - 1][j] + t2.gap_left_ext).max(t[i - 1][j] + t2.gap_left);
            // Eq. (6): D.
            let d = t[i - 1][j - 1] + cfg.matrix.score(s[i - 1], q[j - 1]);
            // Eq. (3).
            let mut v = d.max(up[i][j]).max(left[i][j]);
            if local {
                v = v.max(0);
            }
            t[i][j] = v;
            if v > best {
                best = v;
                best_end = (i, j);
            }
        }
    }
    finish(cfg, &t, best, best_end, n, m)
}

fn finish(
    cfg: &AlignConfig,
    t: &[Vec<i32>],
    best: i32,
    best_end: (usize, usize),
    n: usize,
    m: usize,
) -> RefScore {
    match cfg.kind {
        AlignKind::Local => {
            if best <= 0 {
                RefScore {
                    score: 0,
                    end: (0, 0),
                }
            } else {
                RefScore {
                    score: best,
                    end: best_end,
                }
            }
        }
        AlignKind::Global => RefScore {
            score: t[n][m],
            end: (n, m),
        },
        AlignKind::SemiGlobal => {
            // Free subject suffix: best cell in the last query row.
            let (mut best, mut bi) = (i32::MIN, 0usize);
            for (i, row) in t.iter().enumerate() {
                if row[m] > best {
                    best = row[m];
                    bi = i;
                }
            }
            RefScore {
                score: best,
                end: (bi, m),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GapModel;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, PairSpec};

    fn seqs() -> (Sequence, Sequence) {
        (
            Sequence::protein("q", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("s", b"PAWHEAE").unwrap(),
        )
    }

    /// The classic Durbin et al. example: SW of HEAGAWGHEE vs PAWHEAE
    /// with BLOSUM62-like scoring. With affine(-10, -2):
    /// AWGHE vs AW-HE scores 4+11-12+8+5 = 16? — computed below by
    /// both forms; the important check is literal == dp.
    #[test]
    fn literal_equals_dp_on_examples() {
        let (q, s) = seqs();
        for kind in [AlignKind::Local, AlignKind::Global] {
            for gap in [GapModel::affine(-10, -2), GapModel::linear(-4)] {
                let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
                let a = paradigm_literal(&cfg, &q, &s);
                let b = paradigm_dp(&cfg, &q, &s);
                assert_eq!(a.score, b.score, "{}", cfg.label());
            }
        }
    }

    #[test]
    fn sw_identical_sequences_score_sum_of_self_matches() {
        let q = Sequence::protein("q", b"WWWW").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let r = paradigm_dp(&cfg, &q, &q);
        assert_eq!(r.score, 44); // 4 × W:W = 4 × 11
        assert_eq!(r.end, (4, 4));
    }

    #[test]
    fn sw_dissimilar_floors_at_zero() {
        // Glycine-only vs tryptophan-only: every substitution negative.
        let q = Sequence::protein("q", b"GGGG").unwrap();
        let s = Sequence::protein("s", b"WWWW").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let r = paradigm_dp(&cfg, &q, &s);
        assert_eq!(r.score, 0);
        assert_eq!(r.end, (0, 0));
    }

    #[test]
    fn nw_all_gap_alignment() {
        // Global alignment of a sequence against a much shorter one
        // must pay the boundary gap ramp.
        let q = Sequence::protein("q", b"WWWWWW").unwrap();
        let s = Sequence::protein("s", b"W").unwrap();
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let r = paradigm_dp(&cfg, &q, &s);
        // Best: match one W (11), gap the remaining 5 (θ + 5β = -20).
        assert_eq!(r.score, 11 - 10 - 10);
    }

    #[test]
    fn nw_empty_vs_boundary() {
        // n = 1, m = 1 mismatch vs two 1-gaps.
        let q = Sequence::protein("q", b"W").unwrap();
        let s = Sequence::protein("s", b"G").unwrap();
        let cfg = AlignConfig::global(GapModel::affine(-1, -1), &BLOSUM62);
        let r = paradigm_dp(&cfg, &q, &s);
        // W:G = -2 beats two gaps (-2) + (-2) = -4.
        assert_eq!(r.score, -2);
    }

    #[test]
    fn linear_equals_affine_with_zero_theta() {
        let mut rng = seeded_rng(99);
        let q = named_query(&mut rng, 60);
        let s = PairSpec::new(aalign_bio::synth::Level::Md, aalign_bio::synth::Level::Md)
            .generate(&mut rng, &q)
            .subject;
        for kind in [AlignKind::Local, AlignKind::Global] {
            let lin = AlignConfig::new(kind, GapModel::linear(-3), &BLOSUM62);
            let aff = AlignConfig::new(kind, GapModel::affine(0, -3), &BLOSUM62);
            assert_eq!(
                paradigm_dp(&lin, &q, &s).score,
                paradigm_dp(&aff, &q, &s).score
            );
        }
    }

    #[test]
    fn literal_equals_dp_on_random_pairs() {
        let mut rng = seeded_rng(7);
        for trial in 0..6 {
            let q = named_query(&mut rng, 12 + trial * 5);
            let s = named_query(&mut rng, 9 + trial * 7);
            for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
                for gap in [GapModel::affine(-11, -1), GapModel::linear(-2)] {
                    let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
                    assert_eq!(
                        paradigm_literal(&cfg, &q, &s).score,
                        paradigm_dp(&cfg, &q, &s).score,
                        "trial {trial} {}",
                        cfg.label()
                    );
                }
            }
        }
    }
}
