//! Saturation-certificate prover: interval abstract interpretation
//! over the generalized recurrences (Eq. 2–6), per anti-diagonal
//! wavefront, proving that every intermediate DP cell — *including*
//! the arithmetic the kernels add around the mathematical values —
//! stays strictly inside a lane width's saturating range.
//!
//! # Relationship to [`ScoreBounds`](crate::config::ScoreBounds)
//!
//! [`ScoreBounds`](crate::config::ScoreBounds) is the closed-form
//! interval analysis the width policy has always consulted: one
//! algebraic bound per table, derived from path arguments. This module
//! is the *cell-level* refinement: it iterates the abstract wavefront
//! `d = i + j` from `0` to `m + n`, propagating value intervals for
//! `T`, `U`/`L`, the diagonal substitution term, and the boundary gap
//! ramps through the exact recurrence structure, and checks every
//! abstract cell against the **kernel's own** saturation thresholds
//! (the sticky per-column guard and the finish-time checks in
//! `striped/columns.rs`), not just the lane's numeric range.
//!
//! The two analyses are kept mutually consistent by construction:
//! every abstract interval is clamped inside the closed-form bounds
//! (which are themselves sound), so the prover is never *more*
//! permissive than `ScoreBounds`, and `ScoreBounds::fits(bits)` is
//! never more permissive than the prover (`fits == true` implies a
//! granted certificate; see `fits_implies_granted` in the tests).
//! A granted certificate is therefore a strictly stronger statement:
//! it pins the kernel-added headroom terms (saturation-detection
//! margin, `NEG_INF` sentinel proximity, lazy-F/bias slack) to the
//! same thresholds `near_saturation` uses at run time, which is what
//! "rescue cannot fire" actually requires.
//!
//! # What a certificate buys
//!
//! [`WidthCertificate::granted`] means: for *any* query up to
//! `max_query` and *any* subject up to `max_subject` over this exact
//! (matrix, gap model, alignment kind), no `bits`-wide kernel run can
//! trip saturation detection, so the PR 5 rescue ladder is provably
//! dead weight and [`SearchMetrics::rescued`] must stay 0 — the
//! differential gate in `crates/par/tests/certify_rescue.rs` checks
//! exactly that. The runtime consumes certificates through
//! [`CertificateStore`]: `Aligner::narrow_ok` prefers a covering
//! granted certificate over recomputing `ScoreBounds::fits` per call,
//! and the `Auto` width ladder only starts at i8 when a certificate
//! says the narrow lane is rescue-free.
//!
//! [`SearchMetrics::rescued`]: ../../aalign_par/struct.SearchMetrics.html

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::config::{AlignConfig, AlignKind, GapModel};

/// Saturating cap for a `bits`-wide signed lane — `MAX_SCORE` in
/// `aalign_vec::elem` (i32 kernels clamp at `i32::MAX / 4`, the
/// `NEG_INF` sentinel convention).
pub fn lane_cap(bits: u32) -> i64 {
    match bits {
        8 => i8::MAX as i64,
        16 => i16::MAX as i64,
        _ => (i32::MAX / 4) as i64,
    }
}

/// The `NEG_INF` sentinel for a `bits`-wide lane (`aalign_vec::elem`:
/// `i8::MIN`, `i16::MIN`, `i32::MIN / 4`). Always `-cap - 1`.
pub fn lane_neg_inf(bits: u32) -> i64 {
    match bits {
        8 => i8::MIN as i64,
        16 => i16::MIN as i64,
        _ => (i32::MIN / 4) as i64,
    }
}

/// The detection margin the striped kernels reserve around the lane
/// range — mirrors the `headroom` computed in `striped/columns.rs`
/// (`max_matrix_score().abs().max(|GAP_UP|).max(|GAP_LEFT|) + 1`):
/// one worst-case single-step add plus one, so `near_saturation`
/// fires *before* a saturating add can silently clamp a real value.
pub fn kernel_headroom(cfg: &AlignConfig) -> i64 {
    let t2 = cfg.table2();
    (cfg.matrix.max_score().abs())
        .max(t2.gap_up.abs())
        .max(t2.gap_left.abs()) as i64
        + 1
}

/// The recurrence term an abstract extreme came from — what a denial
/// names as the violating term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertTerm {
    /// `T[i-1][j-1] + γ(q, s)` — the substitution diagonal.
    Diag,
    /// `T + (θ + β)` — opening a gap (Eq. 3–4's first operand).
    GapOpen,
    /// `U/L + β` — extending a gap (Eq. 3–4's second operand).
    GapExtend,
    /// The boundary gap ramp `INIT_T` / the initial column.
    BoundaryRamp,
    /// Eq. 2's `0` operand (local alignments clamp here).
    LocalZero,
}

impl CertTerm {
    /// Stable name used in diagnostics and baselines.
    pub fn name(self) -> &'static str {
        match self {
            CertTerm::Diag => "diag-substitution",
            CertTerm::GapOpen => "gap-open",
            CertTerm::GapExtend => "gap-extend",
            CertTerm::BoundaryRamp => "boundary-ramp",
            CertTerm::LocalZero => "local-zero",
        }
    }
}

/// Which side of the lane range an abstract cell crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossedBound {
    /// Above `cap − headroom`: `near_saturation` would fire.
    Ceiling,
    /// Below `NEG_INF + headroom`: the sentinel-proximity check
    /// (global/semi-global finish) would fire, or a real value could
    /// silently clamp into the sentinel.
    Floor,
}

/// A concrete input the prover predicts will saturate — the
/// non-vacuity side of a denial. Uniform sequences over the matrix's
/// arg-max entry: the pure-diagonal path alone scores
/// `γ_max · len`, a lower bound on the alignment score for every
/// alignment kind, so when that already reaches the detection
/// threshold the kernel *must* report saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Canonical letter for the query (repeat `len` times).
    pub query_letter: u8,
    /// Canonical letter for the subject (repeat `len` times).
    pub subject_letter: u8,
    /// Length of both uniform sequences (`≤ min(max_query, max_subject)`).
    pub len: usize,
    /// Provable lower bound on the resulting alignment score
    /// (`γ_max · len`); at or above the detection threshold.
    pub min_score: i64,
}

/// Why a certificate was denied: the first abstract wavefront cell
/// that can leave the safe range, which term put it there, and the
/// tightest uniform length bound that would have fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Denial {
    /// The violating recurrence term.
    pub term: CertTerm,
    /// Which table the cell belongs to (`"T"` or `"U/L"`).
    pub table: &'static str,
    /// Ceiling or floor crossing.
    pub bound: CrossedBound,
    /// Anti-diagonal index `d = i + j` of the first crossing.
    pub wavefront: usize,
    /// The abstract extreme that crossed.
    pub value: i64,
    /// The limit it had to stay within (inclusive).
    pub limit: i64,
    /// Largest uniform length `L` for which `(L, L)` would certify at
    /// this width, or `None` when even length 1 overflows.
    pub max_safe_len: Option<usize>,
    /// Concrete saturating input when the prover can exhibit one;
    /// `None` marks the denial as conservative (the abstract
    /// over-approximation crossed, but no constructive witness).
    pub witness: Option<Witness>,
}

/// Abstract cell bounds the wavefront iteration accumulated — the
/// evidence attached to a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellBounds {
    /// Hull of every abstract `T` cell (boundary included).
    pub t_lo: i64,
    /// Upper side of the `T` hull.
    pub t_hi: i64,
    /// Hull of every abstract `U`/`L` cell (the gap tables share
    /// bounds: Table II uses the same constants in both directions).
    pub ul_lo: i64,
    /// Upper side of the `U`/`L` hull.
    pub ul_hi: i64,
    /// The kernel detection margin the check used
    /// ([`kernel_headroom`]).
    pub headroom: i64,
}

/// A machine-checkable width certificate: the prover's verdict for
/// one (config, length bounds, lane width) tuple, self-describing
/// enough to be validated against the aligner it is installed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthCertificate {
    /// Fingerprint of the certified configuration
    /// ([`config_fingerprint`]): alignment kind, gap model, matrix
    /// name + every entry. A store refuses certificates whose
    /// fingerprint does not match the aligner's config.
    pub fingerprint: u64,
    /// Alignment kind the proof ran for.
    pub kind: AlignKind,
    /// Gap model the proof ran for.
    pub gap: GapModel,
    /// Matrix name (diagnostics only; the fingerprint is binding).
    pub matrix: String,
    /// Queries up to this length are covered.
    pub max_query: usize,
    /// Subjects up to this length are covered.
    pub max_subject: usize,
    /// Lane width the verdict is about (8, 16 or 32 bits).
    pub lane_bits: u32,
    /// `true`: every abstract cell stays strictly inside the
    /// saturating range — rescue provably cannot fire.
    pub granted: bool,
    /// The abstract hulls the verdict rests on.
    pub bounds: CellBounds,
    /// Populated iff `granted` is false.
    pub denial: Option<Denial>,
}

impl WidthCertificate {
    /// Does this certificate cover an `m`-long query against an
    /// `n`-long subject at `bits` wide lanes?
    pub fn covers(&self, bits: u32, m: usize, n: usize) -> bool {
        self.lane_bits == bits && m <= self.max_query && n <= self.max_subject
    }

    /// One-line summary, e.g.
    /// `i8 GRANTED dna/sw-aff q≤48 s≤1000`.
    pub fn summary(&self) -> String {
        format!(
            "i{} {} {}/{}-{} q≤{} s≤{}",
            self.lane_bits,
            if self.granted { "GRANTED" } else { "DENIED" },
            self.matrix,
            self.kind.short(),
            self.gap.short(),
            self.max_query,
            self.max_subject,
        )
    }
}

/// Order-independent fingerprint of everything a certificate's
/// soundness depends on: kind, gap model, matrix identity and every
/// score entry. Sequence *lengths* are deliberately excluded — they
/// are the certificate's own parameters.
pub fn config_fingerprint(cfg: &AlignConfig) -> u64 {
    let mut h = DefaultHasher::new();
    match cfg.kind {
        AlignKind::Local => 0u8,
        AlignKind::Global => 1,
        AlignKind::SemiGlobal => 2,
    }
    .hash(&mut h);
    match cfg.gap {
        GapModel::Linear { ext } => (0i32, 0i32, ext).hash(&mut h),
        GapModel::Affine { open, ext } => (1i32, open, ext).hash(&mut h),
    }
    cfg.matrix.name().hash(&mut h);
    let size = cfg.matrix.size() as u8;
    size.hash(&mut h);
    for a in 0..size {
        cfg.matrix.row(a).hash(&mut h);
    }
    h.finish()
}

/// Interval with provenance: which term produced each extreme.
#[derive(Debug, Clone, Copy)]
struct Iv {
    lo: i64,
    hi: i64,
    lo_term: CertTerm,
    hi_term: CertTerm,
}

impl Iv {
    fn point(v: i64, term: CertTerm) -> Self {
        Iv {
            lo: v,
            hi: v,
            lo_term: term,
            hi_term: term,
        }
    }

    fn shift(self, by: i64, term: CertTerm) -> Self {
        Iv {
            lo: self.lo + by,
            hi: self.hi + by,
            lo_term: term,
            hi_term: term,
        }
    }

    fn widen(self, lo_by: i64, hi_by: i64, term: CertTerm) -> Self {
        Iv {
            lo: self.lo + lo_by,
            hi: self.hi + hi_by,
            lo_term: term,
            hi_term: term,
        }
    }

    fn hull(a: Option<Iv>, b: Option<Iv>) -> Option<Iv> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(Iv {
                lo: if a.lo <= b.lo { a.lo } else { b.lo },
                hi: if a.hi >= b.hi { a.hi } else { b.hi },
                lo_term: if a.lo <= b.lo { a.lo_term } else { b.lo_term },
                hi_term: if a.hi >= b.hi { a.hi_term } else { b.hi_term },
            }),
        }
    }
}

/// Run the abstract wavefront iteration and produce the verdict for
/// one lane width. `O(max_query + max_subject)` time, `O(1)` space.
pub fn certify(
    cfg: &AlignConfig,
    max_query: usize,
    max_subject: usize,
    bits: u32,
) -> WidthCertificate {
    let mut cert = certify_raw(cfg, max_query, max_subject, bits);
    if let Some(denial) = &mut cert.denial {
        denial.max_safe_len = max_safe_uniform_len(cfg, bits);
        denial.witness = ceiling_witness(cfg, max_query, max_subject, bits, denial.bound);
    }
    cert
}

/// The iteration itself, without the denial refinements (`certify`
/// adds the tightest-length search and the witness; the binary search
/// calls this form to avoid recursing).
fn certify_raw(
    cfg: &AlignConfig,
    max_query: usize,
    max_subject: usize,
    bits: u32,
) -> WidthCertificate {
    let (m, n) = (max_query, max_subject);
    let t2 = cfg.table2();
    let gamma_max = cfg.matrix.max_score() as i64;
    let gamma_min = cfg.matrix.min_score() as i64;
    let gamma_pos = gamma_max.max(1);
    let cap = lane_cap(bits);
    let neg_inf = lane_neg_inf(bits);
    let kh = kernel_headroom(cfg);
    // The kernel's detection thresholds: `near_saturation` fires at
    // `score ≥ cap − kh`; the sentinel-proximity check fires at
    // `score ≤ NEG_INF + kh`. Strictly inside means:
    let ceil_limit = cap - kh - 1;
    let floor_limit = neg_inf + kh + 1;
    let local = cfg.kind == AlignKind::Local;
    let check_floor = !local;

    // Closed-form clamps (ScoreBounds::analyze): every abstract hull
    // is intersected with these sound algebraic bounds, which (a)
    // keeps the drifting gap-extension branch from unboundedly
    // widening U/L's lower side, and (b) guarantees the prover is
    // never more permissive than `ScoreBounds::fits`.
    let cf = cfg.score_bounds(m, n);

    let gap_open = t2.gap_up as i64; // θ + β, both directions (Table II)
    let gap_ext = t2.gap_up_ext as i64; // β

    let mut t_prev2: Option<Iv> = None; // T hull at d−2 (boundary included)
    let mut t_prev1: Option<Iv> = None; // T hull at d−1 (boundary included)
    let mut ul_prev: Option<Iv> = None; // U/L hull at d−1
    let mut acc_t: Option<Iv> = None; // running hull over every T cell
    let mut acc_ul: Option<Iv> = None; // running hull over every U/L cell
    let mut denial: Option<Denial> = None;

    for d in 0..=(m + n) {
        // Boundary cells on this diagonal: T_{d,0} (subject ramp) and
        // T_{0,d} (query ramp; stored as init_col(d−1)).
        let mut boundary: Option<Iv> = None;
        if d <= n {
            let term = if t2.init_t(d) == 0 {
                CertTerm::LocalZero
            } else {
                CertTerm::BoundaryRamp
            };
            boundary = Iv::hull(boundary, Some(Iv::point(t2.init_t(d) as i64, term)));
        }
        if d >= 1 && d <= m {
            let v = t2.init_col(d - 1) as i64;
            let term = if v == 0 {
                CertTerm::LocalZero
            } else {
                CertTerm::BoundaryRamp
            };
            boundary = Iv::hull(boundary, Some(Iv::point(v, term)));
        }

        // Interior cells exist for 2 ≤ d ≤ m + n (i ≥ 1 and j ≥ 1).
        let has_interior = d >= 2;
        let (t_int, ul_int) = if has_interior {
            // Eq. 3–4: U = max(T′ + θ + β, U′ + β); L symmetric with
            // the same Table II constants, so one hull covers both.
            let open_branch = t_prev1.map(|iv| iv.shift(gap_open, CertTerm::GapOpen));
            let ext_branch = ul_prev.map(|iv| iv.shift(gap_ext, CertTerm::GapExtend));
            let mut ul = Iv::hull(open_branch, ext_branch);
            if let Some(iv) = &mut ul {
                // Clamp by the closed-form U/L lower bound: a gap
                // table value is itself a legal path score, at most
                // one opening below the worst T (config.rs).
                if iv.lo < cf.ul_min {
                    iv.lo = cf.ul_min;
                }
            }

            // Eq. 5: D = T″ + γ.
            let diag = t_prev2.map(|iv| iv.widen(gamma_min, gamma_max, CertTerm::Diag));

            // Eq. 2: T = max([0], D, U, L).
            let mut t = Iv::hull(diag, ul);
            if let Some(iv) = &mut t {
                if local {
                    if iv.lo < 0 {
                        iv.lo = 0;
                        iv.lo_term = CertTerm::LocalZero;
                    }
                    if iv.hi < 0 {
                        iv.hi = 0;
                        iv.hi_term = CertTerm::LocalZero;
                    }
                }
                // Clamp by the per-diagonal path bound: a cell on
                // wavefront d has at most min(⌊d/2⌋, m, n) diagonal
                // steps, each gaining at most γ⁺; gaps only lose.
                let path_hi = gamma_pos * (d as i64 / 2).min(m as i64).min(n as i64);
                if iv.hi > path_hi {
                    iv.hi = path_hi;
                }
                // And by the closed-form floor.
                if iv.lo < cf.t_min {
                    iv.lo = cf.t_min;
                }
            }
            (t, ul)
        } else {
            (None, None)
        };

        let t_all = Iv::hull(t_int, boundary);

        // Check this wavefront against the kernel thresholds; record
        // the *first* crossing only.
        if denial.is_none() {
            denial = check_wavefront(d, t_all, ul_int, ceil_limit, floor_limit, check_floor);
        }

        acc_t = Iv::hull(acc_t, t_all);
        acc_ul = Iv::hull(acc_ul, ul_int);
        t_prev2 = t_prev1;
        t_prev1 = t_all;
        ul_prev = ul_int;
    }

    let zero = Iv::point(0, CertTerm::LocalZero);
    let t = acc_t.unwrap_or(zero);
    let ul = acc_ul.unwrap_or(zero);
    WidthCertificate {
        fingerprint: config_fingerprint(cfg),
        kind: cfg.kind,
        gap: cfg.gap,
        matrix: cfg.matrix.name().to_string(),
        max_query,
        max_subject,
        lane_bits: bits,
        granted: denial.is_none(),
        bounds: CellBounds {
            t_lo: t.lo,
            t_hi: t.hi,
            ul_lo: ul.lo,
            ul_hi: ul.hi,
            headroom: kh,
        },
        denial,
    }
}

/// Check one wavefront's T and U/L hulls against the thresholds.
fn check_wavefront(
    d: usize,
    t: Option<Iv>,
    ul: Option<Iv>,
    ceil_limit: i64,
    floor_limit: i64,
    check_floor: bool,
) -> Option<Denial> {
    if let Some(iv) = t {
        if iv.hi > ceil_limit {
            return Some(Denial {
                term: iv.hi_term,
                table: "T",
                bound: CrossedBound::Ceiling,
                wavefront: d,
                value: iv.hi,
                limit: ceil_limit,
                max_safe_len: None,
                witness: None,
            });
        }
        if check_floor && iv.lo < floor_limit {
            return Some(Denial {
                term: iv.lo_term,
                table: "T",
                bound: CrossedBound::Floor,
                wavefront: d,
                value: iv.lo,
                limit: floor_limit,
                max_safe_len: None,
                witness: None,
            });
        }
    }
    if let Some(iv) = ul {
        if iv.hi > ceil_limit {
            return Some(Denial {
                term: iv.hi_term,
                table: "U/L",
                bound: CrossedBound::Ceiling,
                wavefront: d,
                value: iv.hi,
                limit: ceil_limit,
                max_safe_len: None,
                witness: None,
            });
        }
        if check_floor && iv.lo < floor_limit {
            return Some(Denial {
                term: iv.lo_term,
                table: "U/L",
                bound: CrossedBound::Floor,
                wavefront: d,
                value: iv.lo,
                limit: floor_limit,
                max_safe_len: None,
                witness: None,
            });
        }
    }
    None
}

/// Largest uniform length `L` such that `(L, L)` certifies at `bits`
/// — monotone in `L` (longer sequences only widen every hull), so a
/// doubling probe plus binary search. `None` when even `L = 1` fails.
pub fn max_safe_uniform_len(cfg: &AlignConfig, bits: u32) -> Option<usize> {
    let ok = |len: usize| certify_raw(cfg, len, len, bits).granted;
    if !ok(1) {
        return None;
    }
    let mut lo = 1usize; // known good
    let mut hi = 2usize;
    // Cap the probe: beyond ~2^22 residues even i32 rejects every
    // realistic config, and the iteration is O(len).
    while hi <= (1 << 22) && ok(hi) {
        lo = hi;
        hi *= 2;
    }
    if hi > (1 << 22) {
        return Some(lo);
    }
    // Invariant: ok(lo), !ok(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Construct the uniform arg-max witness for a ceiling denial, when
/// the pure-diagonal path alone provably reaches the detection
/// threshold within the certified bounds. Floor denials (and ceiling
/// denials the diagonal path cannot realize) stay conservative.
fn ceiling_witness(
    cfg: &AlignConfig,
    max_query: usize,
    max_subject: usize,
    bits: u32,
    bound: CrossedBound,
) -> Option<Witness> {
    if bound != CrossedBound::Ceiling {
        return None;
    }
    let gamma_max = cfg.matrix.max_score() as i64;
    if gamma_max <= 0 {
        return None;
    }
    // Arg-max matrix entry (a, b).
    let size = cfg.matrix.size() as u8;
    let mut best = (0u8, 0u8);
    for a in 0..size {
        for b in 0..size {
            if cfg.matrix.score(a, b) > cfg.matrix.score(best.0, best.1) {
                best = (a, b);
            }
        }
    }
    let len = max_query.min(max_subject);
    let min_score = gamma_max * len as i64;
    let threshold = lane_cap(bits) - kernel_headroom(cfg);
    if min_score < threshold {
        return None;
    }
    let alpha = cfg.matrix.alphabet();
    Some(Witness {
        query_letter: alpha.itoc(best.0),
        subject_letter: alpha.itoc(best.1),
        len,
        min_score,
    })
}

/// A validated set of certificates for one configuration, consumed by
/// [`Aligner`](crate::Aligner) width selection and reported by
/// `aalign serve`'s health endpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CertificateStore {
    certs: Vec<WidthCertificate>,
}

impl CertificateStore {
    /// Run the prover for every lane width over the given bounds.
    pub fn compute(cfg: &AlignConfig, max_query: usize, max_subject: usize) -> Self {
        Self {
            certs: [8u32, 16, 32]
                .into_iter()
                .map(|bits| certify(cfg, max_query, max_subject, bits))
                .collect(),
        }
    }

    /// Build a store from externally produced certificates.
    pub fn from_certificates(certs: Vec<WidthCertificate>) -> Self {
        Self { certs }
    }

    /// All certificates, granted or denied.
    pub fn certificates(&self) -> &[WidthCertificate] {
        &self.certs
    }

    /// True when every certificate carries this fingerprint — the
    /// install-time validity check.
    pub fn matches(&self, fingerprint: u64) -> bool {
        self.certs.iter().all(|c| c.fingerprint == fingerprint)
    }

    /// Is there a granted certificate covering `(bits, m, n)`?
    pub fn grants(&self, bits: u32, m: usize, n: usize) -> bool {
        self.certs.iter().any(|c| c.granted && c.covers(bits, m, n))
    }

    /// Is there a granted `bits` certificate accepting `m`-long
    /// queries against *some* subjects (up to its own subject bound)?
    /// Used at profile-build time, before subject lengths are known;
    /// each call is still gated per subject through [`grants`].
    ///
    /// [`grants`]: Self::grants
    pub fn grants_for_query(&self, bits: u32, m: usize) -> bool {
        self.certs
            .iter()
            .any(|c| c.granted && c.lane_bits == bits && m <= c.max_query)
    }

    /// Narrowest granted width covering `(m, n)`, or 0 when none.
    pub fn narrowest_granted(&self, m: usize, n: usize) -> u32 {
        [8u32, 16, 32]
            .into_iter()
            .find(|&bits| self.grants(bits, m, n))
            .unwrap_or(0)
    }

    /// Widths with a granted certificate (at their own full bounds),
    /// ascending — what the serve health endpoint reports.
    pub fn granted_widths(&self) -> Vec<u32> {
        let mut widths: Vec<u32> = self
            .certs
            .iter()
            .filter(|c| c.granted)
            .map(|c| c.lane_bits)
            .collect();
        widths.sort_unstable();
        widths.dedup();
        widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GapModel;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::SubstMatrix;

    fn dna_local() -> AlignConfig {
        AlignConfig::local(GapModel::affine(-5, -2), &SubstMatrix::dna(2, -3))
    }

    #[test]
    fn dna_short_reads_certify_i8() {
        let cert = certify(&dna_local(), 48, 1000, 8);
        assert!(cert.granted, "{:?}", cert.denial);
        // Local T is bounded by the shorter sequence: 2 · 48.
        assert!(cert.bounds.t_hi <= 96, "{:?}", cert.bounds);
        assert!(cert.bounds.t_lo >= 0);
    }

    #[test]
    fn blosum62_realistic_lengths_deny_i8_grant_i16() {
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let c8 = certify(&cfg, 400, 400, 8);
        assert!(!c8.granted);
        let denial = c8.denial.unwrap();
        assert_eq!(denial.bound, CrossedBound::Ceiling);
        assert_eq!(denial.term, CertTerm::Diag);
        // The tightest bound must itself certify, and one more must not.
        let safe = denial.max_safe_len.unwrap();
        assert!(certify(&cfg, safe, safe, 8).granted);
        assert!(!certify(&cfg, safe + 1, safe + 1, 8).granted);
        // The witness really is saturating by the prover's own math.
        let w = denial.witness.expect("ceiling denial should be witnessed");
        assert!(w.min_score >= lane_cap(8) - kernel_headroom(&cfg));
        let c16 = certify(&cfg, 400, 400, 16);
        assert!(c16.granted, "{:?}", c16.denial);
    }

    #[test]
    fn global_floor_denial_names_the_gap_open_off_the_ramp() {
        // A global alignment digs below the i8 floor along the
        // boundary: the first cell to cross is the gap table opened
        // off the ramp (one θ+β below it), so the violating term the
        // denial names is gap-open, at a wavefront deep in the ramp.
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let cert = certify(&cfg, 600, 600, 8);
        assert!(!cert.granted);
        let denial = cert.denial.unwrap();
        assert_eq!(denial.bound, CrossedBound::Floor);
        assert_eq!(denial.term, CertTerm::GapOpen);
        assert!(denial.wavefront > 2, "crossing happens down the ramp");
        assert!(denial.witness.is_none(), "floor denials are conservative");
    }

    #[test]
    fn granted_iff_within_max_safe_len() {
        let cfg = dna_local();
        let safe = max_safe_uniform_len(&cfg, 8).unwrap();
        // γ⁺ = 2, headroom = max(3, 7) + 1 = 8: T must stay ≤ 118,
        // so min(m, n) ≤ 59.
        assert_eq!(safe, 59);
        assert!(certify(&cfg, safe, safe, 8).granted);
        assert!(!certify(&cfg, safe + 1, safe + 1, 8).granted);
    }

    /// The reconciliation theorem (satellite 1): `ScoreBounds::fits`
    /// is never more permissive than the prover. Checked over a grid
    /// of kinds × gaps × matrices × lengths, including the boundary
    /// matrices the issue names.
    #[test]
    fn fits_implies_granted() {
        let all_max = SubstMatrix::new("all-max", &aalign_bio::alphabet::DNA, vec![9; 25]);
        let all_neg = SubstMatrix::new("all-neg", &aalign_bio::alphabet::DNA, vec![-9; 25]);
        let matrices = [SubstMatrix::dna(2, -3), BLOSUM62.clone(), all_max, all_neg];
        let gaps = [
            GapModel::affine(-10, -2),
            GapModel::affine(0, -1), // θ-boundary: legal zero-open affine
            GapModel::linear(-1),    // minimal extension
            GapModel::linear(-11),
        ];
        for matrix in &matrices {
            for gap in gaps {
                for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
                    let cfg = AlignConfig::new(kind, gap, matrix);
                    for (m, n) in [(4, 4), (48, 48), (48, 1000), (400, 400), (3000, 3000)] {
                        let bounds = cfg.score_bounds(m, n);
                        for bits in [8u32, 16, 32] {
                            if bounds.fits(bits) {
                                let cert = certify(&cfg, m, n, bits);
                                assert!(
                                    cert.granted,
                                    "fits(i{bits}) but denied: {} {}x{} {:?}",
                                    cfg.label(),
                                    m,
                                    n,
                                    cert.denial
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// All-negative matrices were the historic divergence: the kernel
    /// reserves `|max_matrix_score|`-sized detection headroom even
    /// when the best score is negative (so closed-form value bounds
    /// are tiny), and `ScoreBounds::headroom` must cover it — with
    /// entries of −127 the i8 detection threshold `cap − kh` is −1,
    /// which local's `v_max ≥ 0` *always* trips, so rescue fires on
    /// every input despite the values fitting comfortably.
    #[test]
    fn all_negative_matrix_headroom_is_covered() {
        let all_neg = SubstMatrix::new("all-neg", &aalign_bio::alphabet::DNA, vec![-127; 25]);
        let cfg = AlignConfig::local(GapModel::linear(-1), &all_neg);
        assert_eq!(kernel_headroom(&cfg), 128);
        // The config.rs reconciliation: headroom covers the kernel's
        // detection margin, so `fits` agrees with the prover's denial.
        assert!(cfg.score_bounds(10, 10).headroom >= kernel_headroom(&cfg));
        let c8 = certify(&cfg, 10, 10, 8);
        assert!(!c8.granted);
        let denial = c8.denial.unwrap();
        assert_eq!(denial.bound, CrossedBound::Ceiling);
        assert_eq!(denial.max_safe_len, None, "even length 1 trips detection");
        assert!(denial.witness.is_none(), "no positive diagonal path");
        assert!(!cfg.score_bounds(10, 10).fits(8));
        // i16 has real room: detection threshold far above any value.
        assert!(certify(&cfg, 10, 10, 16).granted);
        assert!(cfg.score_bounds(10, 10).fits(16));
    }

    /// Mildly negative matrices are the other side of the same coin:
    /// values are tiny, detection never fires, and the prover grants
    /// i8 even though `fits` (conservative closed forms) may not —
    /// containment is one-directional by design.
    #[test]
    fn moderately_negative_matrix_grants_narrow() {
        let all_neg = SubstMatrix::new("all-neg", &aalign_bio::alphabet::DNA, vec![-100; 25]);
        let cfg = AlignConfig::local(GapModel::linear(-1), &all_neg);
        assert_eq!(kernel_headroom(&cfg), 101);
        // Detection threshold 127 − 101 = 26 > 0 ≥ every local cell.
        assert!(certify(&cfg, 10, 10, 8).granted);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let base = dna_local();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&base.clone()));
        let other_kind = AlignConfig::global(base.gap, &base.matrix);
        assert_ne!(fp, config_fingerprint(&other_kind));
        let other_gap = AlignConfig::local(GapModel::affine(-5, -3), &base.matrix);
        assert_ne!(fp, config_fingerprint(&other_gap));
        let other_matrix = AlignConfig::local(base.gap, &SubstMatrix::dna(3, -3));
        assert_ne!(fp, config_fingerprint(&other_matrix));
    }

    #[test]
    fn store_selects_narrowest_granted_and_respects_bounds() {
        let cfg = dna_local();
        let store = CertificateStore::compute(&cfg, 48, 1000);
        assert!(store.matches(config_fingerprint(&cfg)));
        assert_eq!(store.narrowest_granted(48, 1000), 8);
        assert_eq!(store.narrowest_granted(48, 500), 8);
        // Outside the certified bounds nothing is granted.
        assert_eq!(store.narrowest_granted(49, 1000), 0);
        assert!(!store.grants(8, 48, 1001));
        assert_eq!(store.granted_widths(), vec![8, 16, 32]);
    }

    #[test]
    fn lane_constants_mirror_vec_elem() {
        use aalign_vec::elem::ScoreElem;
        assert_eq!(lane_cap(8), <i8 as ScoreElem>::MAX_SCORE as i64);
        assert_eq!(lane_cap(16), <i16 as ScoreElem>::MAX_SCORE as i64);
        assert_eq!(lane_cap(32), <i32 as ScoreElem>::MAX_SCORE as i64);
        assert_eq!(lane_neg_inf(8), <i8 as ScoreElem>::NEG_INF as i64);
        assert_eq!(lane_neg_inf(16), <i16 as ScoreElem>::NEG_INF as i64);
        assert_eq!(lane_neg_inf(32), <i32 as ScoreElem>::NEG_INF as i64);
    }
}
