//! Alignment-path reconstruction (extension).
//!
//! The paper's kernels — like most database-search inner loops —
//! report scores only; a full traceback is then run on the few best
//! hits. This module provides that second stage: a scalar
//! full-matrix DP with direction tracking, O(m·n) space, producing a
//! printable [`Alignment`].

use aalign_bio::Sequence;

use crate::config::{AlignConfig, AlignKind};
use crate::paradigm::NEG_INF;

/// A reconstructed pairwise alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Score of the alignment (equals the kernels' score).
    pub score: i32,
    /// Query row with `-` for gaps (ASCII).
    pub query_row: Vec<u8>,
    /// Subject row with `-` for gaps (ASCII).
    pub subject_row: Vec<u8>,
    /// `|` exact match, `+` positive substitution, ` ` otherwise.
    pub marker_row: Vec<u8>,
    /// 0-based [start, end) of the aligned region in the query.
    pub query_span: (usize, usize),
    /// 0-based [start, end) of the aligned region in the subject.
    pub subject_span: (usize, usize),
    /// Identical positions / alignment columns.
    pub identity: f64,
}

impl Alignment {
    /// Multi-line display block, BLAST-style.
    pub fn pretty(&self) -> String {
        format!(
            "Query {:>5} {} {}\n            {}\nSbjct {:>5} {} {}\n(score {score}, identity {ident:.1}%)\n",
            self.query_span.0 + 1,
            String::from_utf8_lossy(&self.query_row),
            self.query_span.1,
            String::from_utf8_lossy(&self.marker_row),
            self.subject_span.0 + 1,
            String::from_utf8_lossy(&self.subject_row),
            self.subject_span.1,
            score = self.score,
            ident = self.identity * 100.0
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tb {
    Stop,
    Diag,
    /// Came from `U` (gap in the subject row, consuming query).
    Up,
    /// Came from `L` (gap in the query row, consuming subject).
    Left,
}

/// Align and reconstruct the path. Suitable for moderate sequence
/// lengths (full matrices); run the SIMD kernels for scores and this
/// on the top hits for database-scale work.
///
/// ```
/// use aalign_core::{traceback_align, AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// let aln = traceback_align(&cfg, &q, &q);
/// assert_eq!(aln.cigar(), "10=");
/// assert_eq!(aln.identity, 1.0);
/// ```
#[allow(clippy::needless_range_loop)] // DP recurrences read clearest with indices
pub fn traceback_align(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> Alignment {
    let t2 = cfg.table2();
    let q = query.indices();
    let s = subject.indices();
    let (m, n) = (q.len(), s.len());
    let local = t2.local;

    let mut t = vec![vec![0i32; m + 1]; n + 1];
    let mut up = vec![vec![NEG_INF; m + 1]; n + 1];
    let mut left = vec![vec![NEG_INF; m + 1]; n + 1];
    let mut dir = vec![vec![Tb::Stop; m + 1]; n + 1];
    // Whether the U/L value at a cell extends an existing gap run.
    let mut up_ext = vec![vec![false; m + 1]; n + 1];
    let mut left_ext = vec![vec![false; m + 1]; n + 1];

    for (i, row) in t.iter_mut().enumerate() {
        row[0] = t2.init_t(i);
    }
    for j in 1..=m {
        t[0][j] = t2.init_col(j - 1);
        if !local {
            // Global and semi-global both pay the query boundary ramp.
            dir[0][j] = Tb::Up;
            up_ext[0][j] = j > 1; // the boundary ramp is one gap run
        }
    }
    for i in 1..=n {
        if cfg.kind == AlignKind::Global {
            dir[i][0] = Tb::Left;
            left_ext[i][0] = i > 1;
        }
        // Local and semi-global: the subject prefix is free (Stop).
    }

    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let u_open = t[i][j - 1] + t2.gap_up;
            let u_ext = up[i][j - 1] + t2.gap_up_ext;
            up[i][j] = u_open.max(u_ext);
            up_ext[i][j] = u_ext > u_open;

            let l_open = t[i - 1][j] + t2.gap_left;
            let l_ext = left[i - 1][j] + t2.gap_left_ext;
            left[i][j] = l_open.max(l_ext);
            left_ext[i][j] = l_ext > l_open;

            let d = t[i - 1][j - 1] + cfg.matrix.score(s[i - 1], q[j - 1]);
            let mut v = d;
            let mut tb = Tb::Diag;
            if up[i][j] > v {
                v = up[i][j];
                tb = Tb::Up;
            }
            if left[i][j] > v {
                v = left[i][j];
                tb = Tb::Left;
            }
            if local && v <= 0 {
                v = 0;
                tb = Tb::Stop;
            }
            t[i][j] = v;
            dir[i][j] = tb;
            if v > best.0 {
                best = (v, i, j);
            }
        }
    }

    // Start of the walk.
    let (score, mut i, mut j) = match cfg.kind {
        AlignKind::Local => {
            if best.0 <= 0 {
                return Alignment {
                    score: 0,
                    query_row: Vec::new(),
                    subject_row: Vec::new(),
                    marker_row: Vec::new(),
                    query_span: (0, 0),
                    subject_span: (0, 0),
                    identity: 0.0,
                };
            }
            best
        }
        AlignKind::Global => (t[n][m], n, m),
        AlignKind::SemiGlobal => {
            // Free subject suffix: best cell of the last query row.
            let mut bi = 0usize;
            for i in 0..=n {
                if t[i][m] > t[bi][m] {
                    bi = i;
                }
            }
            (t[bi][m], bi, m)
        }
    };

    let alpha = query.alphabet();
    let mut qr = Vec::new();
    let mut sr = Vec::new();
    let mut mk = Vec::new();
    let (q_end, s_end) = (j, i);
    let mut matches = 0usize;
    while i > 0 || j > 0 {
        match dir[i][j] {
            Tb::Stop => break,
            Tb::Diag => {
                let (qc, sc) = (alpha.itoc(q[j - 1]), alpha.itoc(s[i - 1]));
                qr.push(qc);
                sr.push(sc);
                if qc == sc {
                    mk.push(b'|');
                    matches += 1;
                } else if cfg.matrix.score(s[i - 1], q[j - 1]) > 0 {
                    mk.push(b'+');
                } else {
                    mk.push(b' ');
                }
                i -= 1;
                j -= 1;
            }
            Tb::Up => loop {
                qr.push(alpha.itoc(q[j - 1]));
                sr.push(b'-');
                mk.push(b' ');
                let ext = up_ext[i][j];
                j -= 1;
                if !ext {
                    break;
                }
            },
            Tb::Left => loop {
                qr.push(b'-');
                sr.push(alpha.itoc(s[i - 1]));
                mk.push(b' ');
                let ext = left_ext[i][j];
                i -= 1;
                if !ext {
                    break;
                }
            },
        }
    }
    qr.reverse();
    sr.reverse();
    mk.reverse();
    let cols = qr.len().max(1);
    Alignment {
        score,
        identity: matches as f64 / cols as f64,
        query_row: qr,
        subject_row: sr,
        marker_row: mk,
        query_span: (j, q_end),
        subject_span: (i, s_end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GapModel;
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};

    /// Re-score the emitted rows independently of the DP.
    fn rescore(a: &Alignment, cfg: &AlignConfig) -> i32 {
        let alpha = cfg.matrix.alphabet();
        let mut score = 0i32;
        let mut in_q_gap = false;
        let mut in_s_gap = false;
        for (&qc, &sc) in a.query_row.iter().zip(&a.subject_row) {
            if qc == b'-' {
                score += if in_q_gap {
                    cfg.gap.beta()
                } else {
                    cfg.gap.theta() + cfg.gap.beta()
                };
                in_q_gap = true;
                in_s_gap = false;
            } else if sc == b'-' {
                score += if in_s_gap {
                    cfg.gap.beta()
                } else {
                    cfg.gap.theta() + cfg.gap.beta()
                };
                in_s_gap = true;
                in_q_gap = false;
            } else {
                score += cfg
                    .matrix
                    .score(alpha.ctoi(sc).unwrap(), alpha.ctoi(qc).unwrap());
                in_q_gap = false;
                in_s_gap = false;
            }
        }
        score
    }

    #[test]
    fn local_path_rescores_to_dp_score() {
        let mut rng = seeded_rng(3);
        let q = named_query(&mut rng, 70);
        let s = PairSpec::new(Level::Md, Level::Hi)
            .generate(&mut rng, &q)
            .subject;
        for gap in [GapModel::affine(-10, -2), GapModel::linear(-4)] {
            let cfg = AlignConfig::local(gap, &BLOSUM62);
            let want = paradigm_dp(&cfg, &q, &s).score;
            let a = traceback_align(&cfg, &q, &s);
            assert_eq!(a.score, want);
            assert_eq!(rescore(&a, &cfg), want, "emitted path must rescore");
        }
    }

    #[test]
    fn global_path_rescores_and_consumes_everything() {
        let mut rng = seeded_rng(5);
        let q = named_query(&mut rng, 40);
        let s = named_query(&mut rng, 55);
        for gap in [GapModel::affine(-8, -1), GapModel::linear(-2)] {
            let cfg = AlignConfig::global(gap, &BLOSUM62);
            let want = paradigm_dp(&cfg, &q, &s).score;
            let a = traceback_align(&cfg, &q, &s);
            assert_eq!(a.score, want);
            assert_eq!(rescore(&a, &cfg), want);
            assert_eq!(a.query_span, (0, 40));
            assert_eq!(a.subject_span, (0, 55));
            let q_residues = a.query_row.iter().filter(|&&c| c != b'-').count();
            let s_residues = a.subject_row.iter().filter(|&&c| c != b'-').count();
            assert_eq!(q_residues, 40);
            assert_eq!(s_residues, 55);
        }
    }

    #[test]
    fn global_boundary_ramp_is_one_gap_run() {
        // Aligning WWWW against W: the 3 surplus query chars must be
        // one affine run, not three opens.
        let q = Sequence::protein("q", b"WWWW").unwrap();
        let s = Sequence::protein("s", b"W").unwrap();
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &s);
        assert_eq!(rescore(&a, &cfg), a.score);
        assert_eq!(a.score, 11 - 10 - 3 * 2);
    }

    #[test]
    fn identical_sequences_give_identity_one() {
        let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &q);
        assert!((a.identity - 1.0).abs() < 1e-12);
        assert_eq!(a.marker_row, vec![b'|'; 10]);
    }

    #[test]
    fn all_negative_local_gives_empty_alignment() {
        let q = Sequence::protein("q", b"GGG").unwrap();
        let s = Sequence::protein("s", b"WWW").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &s);
        assert_eq!(a.score, 0);
        assert!(a.query_row.is_empty());
    }

    #[test]
    fn pretty_output_contains_rows() {
        let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
        let s = Sequence::protein("s", b"PAWHEAE").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &s);
        let p = a.pretty();
        assert!(p.contains("Query"));
        assert!(p.contains("Sbjct"));
        assert!(p.contains("identity"));
    }
}

impl Alignment {
    /// Extended CIGAR string (SAM spec): `=` match, `X` mismatch,
    /// `I` insertion (consumes query only), `D` deletion (consumes
    /// subject only), treating the query as the read and the subject
    /// as the reference.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run_op = 0u8;
        let mut run_len = 0usize;
        let flush = |out: &mut String, op: u8, len: usize| {
            if len > 0 {
                out.push_str(&len.to_string());
                out.push(op as char);
            }
        };
        for (&qc, &sc) in self.query_row.iter().zip(&self.subject_row) {
            let op = if qc == b'-' {
                b'D'
            } else if sc == b'-' {
                b'I'
            } else if qc == sc {
                b'='
            } else {
                b'X'
            };
            if op == run_op {
                run_len += 1;
            } else {
                flush(&mut out, run_op, run_len);
                run_op = op;
                run_len = 1;
            }
        }
        flush(&mut out, run_op, run_len);
        out
    }

    /// Classic CIGAR (`M`/`I`/`D` only): `=`/`X` runs merge into `M`.
    pub fn cigar_classic(&self) -> String {
        let ext = self.cigar();
        let mut out = String::new();
        let mut m_run = 0usize;
        let mut num = 0usize;
        for c in ext.chars() {
            if let Some(d) = c.to_digit(10) {
                num = num * 10 + d as usize;
                continue;
            }
            match c {
                '=' | 'X' => m_run += num,
                other => {
                    if m_run > 0 {
                        out.push_str(&m_run.to_string());
                        out.push('M');
                        m_run = 0;
                    }
                    out.push_str(&num.to_string());
                    out.push(other);
                }
            }
            num = 0;
        }
        if m_run > 0 {
            out.push_str(&m_run.to_string());
            out.push('M');
        }
        out
    }
}

#[cfg(test)]
mod cigar_tests {
    use super::*;
    use crate::config::{AlignConfig, GapModel};
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
    use aalign_bio::Sequence;

    #[test]
    fn identical_sequences_are_one_match_run() {
        let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &q);
        assert_eq!(a.cigar(), "10=");
        assert_eq!(a.cigar_classic(), "10M");
    }

    #[test]
    fn known_gap_produces_i_and_d_runs() {
        // Global: q = WWWW vs s = WW → two query-only columns (I).
        let q = Sequence::protein("q", b"WWWW").unwrap();
        let s = Sequence::protein("s", b"WW").unwrap();
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &s);
        let cig = a.cigar();
        let i_total: usize = count_op(&cig, 'I');
        let eq_total: usize = count_op(&cig, '=');
        assert_eq!(i_total, 2, "{cig}");
        assert_eq!(eq_total, 2, "{cig}");
        // And the mirror direction gives D.
        let b = traceback_align(&cfg, &s, &q);
        assert_eq!(count_op(&b.cigar(), 'D'), 2, "{}", b.cigar());
    }

    #[test]
    fn cigar_lengths_account_for_both_sequences() {
        let mut rng = seeded_rng(77);
        let q = named_query(&mut rng, 60);
        let s = PairSpec::new(Level::Md, Level::Md)
            .generate(&mut rng, &q)
            .subject;
        for cfg in [
            AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62),
            AlignConfig::global(GapModel::linear(-3), &BLOSUM62),
            AlignConfig::semi_global(GapModel::affine(-8, -1), &BLOSUM62),
        ] {
            let a = traceback_align(&cfg, &q, &s);
            let cig = a.cigar();
            let q_consumed = count_op(&cig, '=') + count_op(&cig, 'X') + count_op(&cig, 'I');
            let s_consumed = count_op(&cig, '=') + count_op(&cig, 'X') + count_op(&cig, 'D');
            assert_eq!(q_consumed, a.query_span.1 - a.query_span.0, "{cig}");
            assert_eq!(s_consumed, a.subject_span.1 - a.subject_span.0, "{cig}");
        }
    }

    fn count_op(cigar: &str, want: char) -> usize {
        let mut total = 0usize;
        let mut num = 0usize;
        for c in cigar.chars() {
            if let Some(d) = c.to_digit(10) {
                num = num * 10 + d as usize;
            } else {
                if c == want {
                    total += num;
                }
                num = 0;
            }
        }
        total
    }

    #[test]
    fn empty_alignment_has_empty_cigar() {
        let q = Sequence::protein("q", b"GGG").unwrap();
        let s = Sequence::protein("s", b"WWW").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = traceback_align(&cfg, &q, &s);
        assert_eq!(a.cigar(), "");
        assert_eq!(a.cigar_classic(), "");
    }
}
