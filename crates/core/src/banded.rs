//! Banded alignment (extension).
//!
//! When two sequences are known to be similar — e.g. re-scoring the
//! top hits of a database search, or verifying a mapping — the
//! optimal path stays near the main diagonal, and restricting the DP
//! to a diagonal band of half-width `w` cuts the cost from `O(m·n)`
//! to `O(w·(m+n))`.
//!
//! The band is exact when it covers the optimal path; with half-width
//! `w ≥ |m − n| + g` where `g` bounds the total gap length of the
//! optimal alignment, the banded score **equals** the full DP score
//! (tested). A too-narrow band yields a *lower bound* — still useful
//! for filtering — and the caller can widen and retry
//! ([`banded_align_auto`] doubles the band until the score stops
//! improving).
//!
//! Scalar implementation: the band is a per-row interval, which does
//! not fit the striped layout; vectorizing banded DP needs the
//! anti-diagonal scheme the paper explicitly avoids. It complements
//! the SIMD kernels rather than replacing them.

use aalign_bio::Sequence;

use crate::config::{AlignConfig, AlignKind};
use crate::paradigm::NEG_INF;

/// Result of a banded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedScore {
    /// The score found inside the band (≤ the unrestricted score).
    pub score: i32,
    /// Half-width used.
    pub half_width: usize,
    /// DP cells actually computed.
    pub cells: usize,
}

/// Banded alignment with a fixed half-width `w`: cell `(i, j)` is
/// computed iff `|j − i·m/n̂| ≤ w` around the rescaled main diagonal.
///
/// # Panics
/// Panics if the query is empty.
#[allow(clippy::needless_range_loop)] // DP boundary rows, indices intentional
pub fn banded_align(
    cfg: &AlignConfig,
    query: &Sequence,
    subject: &Sequence,
    half_width: usize,
) -> BandedScore {
    let t2 = cfg.table2();
    let q = query.indices();
    let s = subject.indices();
    let (m, n) = (q.len(), s.len());
    assert!(m > 0, "query must be non-empty");
    let w = half_width.max(1);

    // Band centre for row i: the rescaled diagonal.
    let centre = |i: usize| -> isize {
        if n == 0 {
            0
        } else {
            ((i as f64) * (m as f64) / (n as f64)).round() as isize
        }
    };
    let lo = |i: usize| -> usize { (centre(i) - w as isize).max(1) as usize };
    let hi = |i: usize| -> usize { usize::min((centre(i) + w as isize).max(0) as usize, m) };

    // Rows as (m+1)-wide vectors; out-of-band cells stay NEG_INF so
    // in-band neighbours read "impossible" rather than garbage.
    let mut t_prev = vec![NEG_INF; m + 1];
    let mut t_cur = vec![NEG_INF; m + 1];
    let mut e = vec![NEG_INF; m + 1];
    let mut cells = 0usize;

    // Boundary row 0 (restricted to the band around row 0).
    t_prev[0] = t2.init_t(0);
    for j in 1..=hi(0) {
        t_prev[j] = t2.init_col(j - 1);
    }

    let mut best = i32::MIN; // local max / semi-global last-row max
    let mut semi_best = t_prev[m];
    for i in 1..=n {
        t_cur.fill(NEG_INF);
        let (l, h) = (lo(i), hi(i));
        if l == 1 || t2.kind != AlignKind::Global || centre(i) - (w as isize) <= 0 {
            t_cur[0] = t2.init_t(i);
        }
        let mut f = NEG_INF;
        let row = cfg.matrix.row(s[i - 1]);
        for j in l..=h {
            cells += 1;
            let ej = (e[j].max(NEG_INF) + t2.gap_left_ext)
                .max(t_prev[j].max(NEG_INF) + t2.gap_left)
                .max(NEG_INF);
            e[j] = ej;
            f = (f + t2.gap_up_ext)
                .max(t_cur[j - 1].max(NEG_INF) + t2.gap_up)
                .max(NEG_INF);
            let d = t_prev[j - 1].max(NEG_INF) + row[q[j - 1] as usize];
            let mut v = d.max(ej).max(f);
            if t2.local {
                v = v.max(0);
            }
            v = v.max(NEG_INF);
            t_cur[j] = v;
            if v > best {
                best = v;
            }
        }
        // Clear E outside the band so stale values don't leak back in
        // as the band drifts.
        for j in (1..l).chain(h + 1..=m) {
            e[j] = NEG_INF;
        }
        if h == m {
            semi_best = semi_best.max(t_cur[m]);
        }
        core::mem::swap(&mut t_prev, &mut t_cur);
    }

    let score = match cfg.kind {
        AlignKind::Local => best.max(0),
        AlignKind::Global => t_prev[m],
        AlignKind::SemiGlobal => semi_best,
    };
    BandedScore {
        score,
        half_width: w,
        cells,
    }
}

/// Adaptive banding heuristic: start at `start_width`, double until
/// the score stops improving (or the band covers everything). Fast
/// and usually exact on near-diagonal alignments, but a score plateau
/// does not *prove* convergence — use [`banded_align_certified`] when
/// exactness must be guaranteed.
pub fn banded_align_auto(
    cfg: &AlignConfig,
    query: &Sequence,
    subject: &Sequence,
    start_width: usize,
) -> BandedScore {
    let m = query.len();
    let n = subject.len();
    let mut w = start_width.max(1).max(m.abs_diff(n));
    let mut last = banded_align(cfg, query, subject, w);
    loop {
        if w >= m + n {
            return last;
        }
        let wider = banded_align(cfg, query, subject, w * 2);
        if wider.score == last.score {
            return BandedScore {
                cells: last.cells + wider.cells,
                ..wider
            };
        }
        w *= 2;
        last = BandedScore {
            cells: last.cells + wider.cells,
            ..wider
        };
    }
}

/// Certified banding: runs [`banded_align_auto`], then derives a
/// provably sufficient half-width from the score found and verifies
/// with one final run.
///
/// ```
/// use aalign_core::{banded_align_certified, AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let s = Sequence::protein("s", b"HEAGAWGHE").unwrap();
/// let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
/// let r = banded_align_certified(&cfg, &q, &s, 2);
/// assert_eq!(r.score, 45); // nine matches (57) minus one 1-long end gap (−12)
/// ```
///
/// Any alignment scoring better than a known `S` can contain at most
/// `g = (min(m,n)·γmax + θ − S) / |β|` gapped positions (its ungapped
/// part cannot exceed `min(m,n)·γmax`), so its path deviates from the
/// rescaled diagonal by at most `g + |m−n|`. A band of that width
/// therefore contains every better-scoring path; if the final run
/// finds no improvement, its score is exactly the unrestricted one.
pub fn banded_align_certified(
    cfg: &AlignConfig,
    query: &Sequence,
    subject: &Sequence,
    start_width: usize,
) -> BandedScore {
    let m = query.len();
    let n = subject.len();
    let first = banded_align_auto(cfg, query, subject, start_width);
    let gamma_max = cfg.matrix.max_score().max(1) as i64;
    let theta = cfg.gap.theta() as i64;
    let beta = cfg.gap.beta().abs().max(1) as i64;
    let ungapped_cap = m.min(n) as i64 * gamma_max;
    let g = ((ungapped_cap + theta - first.score as i64) / beta).max(0) as usize;
    let w_cert = g + m.abs_diff(n) + 1;
    if w_cert <= first.half_width {
        return first;
    }
    let certified = banded_align(cfg, query, subject, w_cert);
    BandedScore {
        cells: first.cells + certified.cells,
        ..certified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GapModel;
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng};

    fn all_kinds(gap: GapModel) -> Vec<AlignConfig> {
        vec![
            AlignConfig::local(gap, &BLOSUM62),
            AlignConfig::global(gap, &BLOSUM62),
            AlignConfig::semi_global(gap, &BLOSUM62),
        ]
    }

    #[test]
    fn full_width_band_equals_full_dp() {
        let mut rng = seeded_rng(900);
        let q = named_query(&mut rng, 50);
        let s = named_query(&mut rng, 60);
        for gap in [GapModel::affine(-10, -2), GapModel::linear(-3)] {
            for cfg in all_kinds(gap) {
                let want = paradigm_dp(&cfg, &q, &s).score;
                let got = banded_align(&cfg, &q, &s, 200);
                assert_eq!(got.score, want, "{}", cfg.label());
            }
        }
    }

    #[test]
    fn similar_pairs_need_only_narrow_bands() {
        // A high-identity, on-diagonal pair (point mutations, no
        // flanks): a modest band is exact and computes far fewer
        // cells. (Banding assumes near-diagonal paths; flanked pairs
        // shift the diagonal and genuinely need wider bands.)
        use rand::RngExt;
        let mut rng = seeded_rng(901);
        let q = named_query(&mut rng, 400);
        let mutated: Vec<u8> = q
            .indices()
            .iter()
            .map(|&r| {
                if rng.random_bool(0.9) {
                    r
                } else {
                    aalign_bio::synth::random_residue(&mut rng)
                }
            })
            .collect();
        let s = aalign_bio::Sequence::from_indices("mut", q.alphabet(), mutated);
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let want = paradigm_dp(&cfg, &q, &s).score;
        let got = banded_align_auto(&cfg, &q, &s, 8);
        assert_eq!(got.score, want);
        assert!(
            got.cells < q.len() * s.len() / 4,
            "band computed {} of {} cells",
            got.cells,
            q.len() * s.len()
        );
    }

    #[test]
    fn narrow_band_is_a_lower_bound() {
        let mut rng = seeded_rng(902);
        let q = named_query(&mut rng, 80);
        let s = named_query(&mut rng, 120); // dissimilar, very gappy path
        for cfg in all_kinds(GapModel::affine(-10, -2)) {
            let full = paradigm_dp(&cfg, &q, &s).score;
            for w in [1usize, 2, 4, 8, 16, 64, 300] {
                let banded = banded_align(&cfg, &q, &s, w).score;
                assert!(
                    banded <= full,
                    "{} w={w}: banded {banded} > full {full}",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn certified_band_is_exact_on_arbitrary_pairs() {
        let mut rng = seeded_rng(903);
        for trial in 0..5 {
            let q = named_query(&mut rng, 40 + trial * 20);
            let s = named_query(&mut rng, 30 + trial * 25);
            for gap in [GapModel::affine(-8, -1), GapModel::linear(-3)] {
                for cfg in all_kinds(gap) {
                    let want = paradigm_dp(&cfg, &q, &s).score;
                    let got = banded_align_certified(&cfg, &q, &s, 2);
                    assert_eq!(got.score, want, "{} trial {trial}", cfg.label());
                }
            }
        }
    }

    #[test]
    fn length_mismatch_band_centres_on_rescaled_diagonal() {
        // Global alignment of very different lengths still converges.
        let mut rng = seeded_rng(904);
        let q = named_query(&mut rng, 30);
        let s = named_query(&mut rng, 90);
        let cfg = AlignConfig::global(GapModel::linear(-2), &BLOSUM62);
        let want = paradigm_dp(&cfg, &q, &s).score;
        assert_eq!(banded_align_certified(&cfg, &q, &s, 4).score, want);
    }
}
