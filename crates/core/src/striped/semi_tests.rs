//! Semantic tests specific to semi-global alignment (the extension
//! beyond the paper's local/global pair).

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, random_protein, seeded_rng};
use aalign_bio::Sequence;

use crate::config::{AlignConfig, GapModel};
use crate::kernel::{Aligner, Strategy, WidthPolicy};
use crate::paradigm::paradigm_dp;
use crate::traceback::traceback_align;

fn sg(gap: GapModel) -> AlignConfig {
    AlignConfig::semi_global(gap, &BLOSUM62)
}

#[test]
fn embedded_query_scores_like_self_alignment() {
    // Subject = noise + exact copy of query + noise: the free subject
    // ends mean the score equals the query's self-alignment score.
    let mut rng = seeded_rng(42);
    let q = named_query(&mut rng, 120);
    let head = random_protein(&mut rng, "h", 80);
    let tail = random_protein(&mut rng, "t", 60);
    let mut idx = Vec::new();
    idx.extend_from_slice(head.indices());
    idx.extend_from_slice(q.indices());
    idx.extend_from_slice(tail.indices());
    let s = Sequence::from_indices("embed", q.alphabet(), idx);

    let self_score: i32 = q.indices().iter().map(|&r| BLOSUM62.score(r, r)).sum();
    let cfg = sg(GapModel::affine(-10, -2));
    let out = Aligner::new(cfg.clone()).align(&q, &s).unwrap();
    assert!(
        out.score >= self_score,
        "embedded copy must reach self-score: {} < {self_score}",
        out.score
    );
    // And exactly equals unless flank residues extend the match.
    assert!(out.score <= self_score + 50);
    assert_eq!(out.score, paradigm_dp(&cfg, &q, &s).score);
}

#[test]
fn kind_ordering_local_ge_semi_ge_global() {
    let mut rng = seeded_rng(7);
    for trial in 0..10 {
        let q = named_query(&mut rng, 40 + trial * 11);
        let s = named_query(&mut rng, 30 + trial * 17);
        for gap in [GapModel::affine(-10, -2), GapModel::linear(-3)] {
            let local = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
                .align(&q, &s)
                .unwrap()
                .score;
            let semi = Aligner::new(sg(gap)).align(&q, &s).unwrap().score;
            let global = Aligner::new(AlignConfig::global(gap, &BLOSUM62))
                .align(&q, &s)
                .unwrap()
                .score;
            assert!(local >= semi, "local {local} < semi {semi} (trial {trial})");
            assert!(
                semi >= global,
                "semi {semi} < global {global} (trial {trial})"
            );
        }
    }
}

#[test]
fn empty_subject_pays_full_query_ramp() {
    let mut rng = seeded_rng(3);
    let q = named_query(&mut rng, 25);
    let s = Sequence::from_indices("e", q.alphabet(), Vec::new());
    let gap = GapModel::affine(-6, -2);
    let out = Aligner::new(sg(gap)).align(&q, &s).unwrap();
    assert_eq!(out.score, gap.gap_score(25));
}

#[test]
fn all_strategies_agree_on_semiglobal() {
    let mut rng = seeded_rng(11);
    let q = named_query(&mut rng, 90);
    let head = random_protein(&mut rng, "h", 40);
    let mut idx = head.indices().to_vec();
    idx.extend_from_slice(q.indices());
    let s = Sequence::from_indices("hs", q.alphabet(), idx);
    for gap in [GapModel::affine(-10, -2), GapModel::linear(-4)] {
        let cfg = sg(gap);
        let want = paradigm_dp(&cfg, &q, &s).score;
        for strat in [
            Strategy::Sequential,
            Strategy::StripedIterate,
            Strategy::StripedScan,
            Strategy::Hybrid,
        ] {
            let out = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_width(WidthPolicy::Fixed32)
                .align(&q, &s)
                .unwrap();
            assert_eq!(out.score, want, "{strat:?}");
        }
    }
}

#[test]
fn traceback_spans_full_query_and_partial_subject() {
    let mut rng = seeded_rng(21);
    let q = named_query(&mut rng, 50);
    let head = random_protein(&mut rng, "h", 30);
    let tail = random_protein(&mut rng, "t", 20);
    let mut idx = Vec::new();
    idx.extend_from_slice(head.indices());
    idx.extend_from_slice(q.indices());
    idx.extend_from_slice(tail.indices());
    let s = Sequence::from_indices("hqt", q.alphabet(), idx);

    let cfg = sg(GapModel::affine(-10, -2));
    let aln = traceback_align(&cfg, &q, &s);
    assert_eq!(aln.score, paradigm_dp(&cfg, &q, &s).score);
    // The whole query is consumed...
    assert_eq!(aln.query_span, (0, 50));
    let q_residues = aln.query_row.iter().filter(|&&c| c != b'-').count();
    assert_eq!(q_residues, 50);
    // ...but the subject is entered mid-way (free prefix) and left
    // before its end (free suffix).
    assert!(aln.subject_span.0 >= 20, "span {:?}", aln.subject_span);
    assert!(aln.subject_span.1 <= 90, "span {:?}", aln.subject_span);
}

#[test]
fn auto_width_works_for_semiglobal() {
    let mut rng = seeded_rng(31);
    let q = named_query(&mut rng, 60);
    let s = named_query(&mut rng, 80);
    let cfg = sg(GapModel::affine(-10, -2));
    let out = Aligner::new(cfg.clone()).align(&q, &s).unwrap();
    assert!(!out.saturated);
    assert_eq!(out.score, paradigm_dp(&cfg, &q, &s).score);
}
