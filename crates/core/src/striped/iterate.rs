//! Striped-iterate alignment (paper Alg. 2): the whole subject via
//! [`ColumnEngine::iterate_column`].

use aalign_bio::StripedProfile;
use aalign_vec::SimdEngine;

use crate::config::TableII;
use crate::striped::columns::{ColumnEngine, KernelResult, Workspace};

/// Align `subject` (as alphabet indices) against a striped profile
/// using the striped-iterate strategy.
#[inline(always)]
pub fn iterate_align<E: SimdEngine, const LOCAL: bool, const AFFINE: bool>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    ws: &mut Workspace<E::Elem>,
) -> KernelResult {
    let mut cols = ColumnEngine::<E, LOCAL, AFFINE>::new(eng, prof, t2, ws);
    for &s in subject {
        cols.iterate_column(s);
    }
    cols.finish()
}
