//! Striped-iterate alignment (paper Alg. 2): the whole subject via
//! [`ColumnEngine::iterate_column`].

use aalign_bio::StripedProfile;
use aalign_obs::{HybridEvent, NullSink, ProbeOutcome, StrategyKind, TraceSink};
use aalign_vec::SimdEngine;

use crate::config::TableII;
use crate::striped::columns::{ColumnEngine, KernelResult, Workspace};
use crate::striped::emit_col;

/// Align `subject` (as alphabet indices) against a striped profile
/// using the striped-iterate strategy.
#[inline(always)]
pub fn iterate_align<E: SimdEngine, const LOCAL: bool, const AFFINE: bool>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    ws: &mut Workspace<E::Elem>,
) -> KernelResult {
    iterate_align_sink::<E, LOCAL, AFFINE, _>(eng, prof, subject, t2, ws, &mut NullSink)
}

/// [`iterate_align`] with a per-column trace sink: each column emits
/// one `iterate` [`HybridEvent`] carrying its lazy-sweep count.
/// Monomorphized against [`NullSink`] this is exactly `iterate_align`.
#[inline(always)]
pub fn iterate_align_sink<E: SimdEngine, const LOCAL: bool, const AFFINE: bool, S: TraceSink>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    ws: &mut Workspace<E::Elem>,
    sink: &mut S,
) -> KernelResult {
    let mut cols = ColumnEngine::<E, LOCAL, AFFINE>::new(eng, prof, t2, ws);
    for (i, &s) in subject.iter().enumerate() {
        let sweeps = cols.iterate_column(s);
        emit_col(
            sink,
            HybridEvent {
                column: i as u64,
                strategy: StrategyKind::Iterate,
                lazy_sweeps: sweeps,
                switched: false,
                probe: ProbeOutcome::NotProbe,
            },
        );
        // A saturated run's scores are untrusted whatever the
        // remaining columns hold; stop early so the width-retry (or
        // the engine's overflow rescue) pays a prefix, not a sweep.
        if cols.saturated() {
            break;
        }
    }
    cols.finish()
}
