//! The shared column engine.
//!
//! [`ColumnEngine`] owns the per-column state of a striped alignment
//! (the `arr_T1`/`arr_T2`/`arr_L`/`arr_scan` buffers of Alg. 2/3, the
//! running maximum, and the boundary trackers) and advances it one
//! subject character at a time with either vectorization strategy.
//! The iterate/scan/hybrid entry points are thin loops over it.
//!
//! Type parameters `LOCAL` and `AFFINE` compile the four paradigm
//! configurations separately — the moral equivalent of the paper's
//! code generator dropping or keeping the asterisked statements.

use aalign_bio::StripedProfile;
use aalign_vec::scan::{wgt_max_scan_striped, ScanParams};
use aalign_vec::{SaturationGuard, ScoreElem, SimdEngine, StripedLayout};

use crate::config::TableII;

/// Reusable buffer set; keep one per thread and feed it to successive
/// alignments to avoid reallocating in database-search loops.
#[derive(Debug, Default)]
pub struct Workspace<T> {
    arr_t1: Vec<T>,
    arr_t2: Vec<T>,
    arr_e: Vec<T>,
    arr_scan: Vec<T>,
}

impl<T: ScoreElem> Workspace<T> {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self {
            arr_t1: Vec::new(),
            arr_t2: Vec::new(),
            arr_e: Vec::new(),
            arr_scan: Vec::new(),
        }
    }

    /// Total elements currently reserved across the four column
    /// buffers — the scratch-reuse observability hook behind
    /// [`AlignScratch::reserved_bytes`](crate::AlignScratch::reserved_bytes).
    pub fn reserved_elems(&self) -> usize {
        self.arr_t1.capacity()
            + self.arr_t2.capacity()
            + self.arr_e.capacity()
            + self.arr_scan.capacity()
    }

    fn ensure(&mut self, padded: usize) {
        for buf in [
            &mut self.arr_t1,
            &mut self.arr_t2,
            &mut self.arr_e,
            &mut self.arr_scan,
        ] {
            buf.clear();
            buf.resize(padded, T::ZERO);
        }
    }
}

/// Result of a full striped alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResult {
    /// Alignment score, widened to i32.
    pub score: i32,
    /// True if the score is too close to the element type's
    /// saturation limits to be trusted (retry at a wider type).
    pub saturated: bool,
    /// Total lazy-loop segment re-computations (iterate columns only).
    pub lazy_iters: u64,
    /// Total lazy-loop sweeps over the column (iterate columns only).
    pub lazy_sweeps: u64,
    /// Columns processed with the iterate strategy.
    pub iterate_columns: usize,
    /// Columns processed with the scan strategy.
    pub scan_columns: usize,
}

/// Per-column state for one alignment.
pub struct ColumnEngine<'a, E: SimdEngine, const LOCAL: bool, const AFFINE: bool> {
    eng: E,
    prof: &'a StripedProfile<E::Elem>,
    ws: &'a mut Workspace<E::Elem>,
    layout: StripedLayout,
    t2: TableII,

    // Splatted Table II constants.
    v_gap_left: E::Vec,
    v_gap_left_ext: E::Vec,
    v_gap_up: E::Vec,
    v_gap_up_ext: E::Vec,
    /// θ = GAP_UP − GAP_UP_EXT, the lazy-loop influence margin.
    v_theta: E::Vec,
    v_zero: E::Vec,
    /// k·β, the per-lane chunk weight of the striped layout.
    chunk_ext: E::Elem,

    // Running state.
    v_max: E::Vec,
    /// Semi-global: running lane-wise max of the segment holding the
    /// last query position, across all columns (only the lane of
    /// `m-1` is read at the end).
    v_semi: E::Vec,
    semi: bool,
    /// Buffer offset of the segment containing query position `m-1`.
    last_seg_off: usize,
    /// Lane of query position `m-1` within that segment.
    last_lane: usize,
    /// Subject characters consumed so far.
    col: usize,
    /// Ceiling register for the per-column sticky saturation check
    /// (local alignments track their running max, so lane overflow is
    /// observable as it happens rather than only at finish).
    guard: SaturationGuard<E>,
    /// Headroom used by both the sticky guard and the finish-time
    /// scalar check (largest single further add, plus one).
    headroom: i32,
    /// Sticky: set the first column any lane crosses the ceiling.
    saturated: bool,
    /// Lazy-loop statistics.
    lazy_iters: u64,
    lazy_sweeps: u64,
    iterate_columns: usize,
    scan_columns: usize,
}

impl<E: SimdEngine, const LOCAL: bool, const AFFINE: bool> core::fmt::Debug
    for ColumnEngine<'_, E, LOCAL, AFFINE>
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ColumnEngine")
            .field("col", &self.col)
            .field("semi", &self.semi)
            .field("lazy_iters", &self.lazy_iters)
            .field("lazy_sweeps", &self.lazy_sweeps)
            .field("iterate_columns", &self.iterate_columns)
            .field("scan_columns", &self.scan_columns)
            .finish_non_exhaustive()
    }
}

impl<'a, E: SimdEngine, const LOCAL: bool, const AFFINE: bool> ColumnEngine<'a, E, LOCAL, AFFINE> {
    /// Set up the engine: splat constants and write the column-0
    /// boundary into the buffers.
    #[inline(always)]
    pub fn new(
        eng: E,
        prof: &'a StripedProfile<E::Elem>,
        t2: TableII,
        ws: &'a mut Workspace<E::Elem>,
    ) -> Self {
        debug_assert_eq!(t2.local, LOCAL, "kind/constant mismatch");
        debug_assert_eq!(t2.affine, AFFINE, "gap/constant mismatch");
        let layout = prof.layout();
        assert_eq!(layout.lanes, E::LANES, "profile built for another width");
        ws.ensure(layout.padded_len());

        // Column-0 boundary: T_{0,q} ramp (zero for local), no gaps yet.
        for slot in 0..layout.padded_len() {
            let q = layout.query_pos_of(slot);
            ws.arr_t1[slot] = E::Elem::from_i32_sat(t2.init_col(q));
            ws.arr_e[slot] = E::Elem::NEG_INF;
        }

        let splat_i32 = |x: i32| eng.splat(E::Elem::from_i32_sat(x));
        let chunk_ext = E::Elem::from_i32_sat(t2.gap_up_ext.saturating_mul(layout.segments as i32));
        let last_slot = layout.slot_of(layout.len - 1);
        let last_seg_off = (last_slot / E::LANES) * E::LANES;
        let last_lane = last_slot % E::LANES;
        let semi = t2.kind == crate::config::AlignKind::SemiGlobal;
        let headroom = prof
            .max_matrix_score()
            .abs()
            .max(t2.gap_up.abs())
            .max(t2.gap_left.abs())
            + 1;
        let v_semi = if semi {
            // The boundary column participates (subject may be
            // consumed entirely by the free prefix).
            eng.load(&ws.arr_t1[last_seg_off..])
        } else {
            eng.splat(E::Elem::NEG_INF)
        };
        Self {
            eng,
            prof,
            ws,
            layout,
            t2,
            v_gap_left: splat_i32(t2.gap_left),
            v_gap_left_ext: splat_i32(t2.gap_left_ext),
            v_gap_up: splat_i32(t2.gap_up),
            v_gap_up_ext: splat_i32(t2.gap_up_ext),
            v_theta: splat_i32(t2.gap_up - t2.gap_up_ext),
            v_zero: eng.splat(E::Elem::ZERO),
            chunk_ext,
            v_max: eng.splat(E::Elem::NEG_INF),
            v_semi,
            semi,
            last_seg_off,
            last_lane,
            col: 0,
            guard: SaturationGuard::new(eng, headroom),
            headroom,
            saturated: false,
            lazy_iters: 0,
            lazy_sweeps: 0,
            iterate_columns: 0,
            scan_columns: 0,
        }
    }

    #[inline(always)]
    fn init_t_elem(&self, i: usize) -> E::Elem {
        E::Elem::from_i32_sat(self.t2.init_t(i))
    }

    /// Shared first pass: compute `D` and `E` (`L` in the paper) for
    /// every segment and store the partial `T`. When `WITH_F_BOUND`
    /// (iterate), a running lower-bound `F` vector is folded in and
    /// carried segment to segment; the final carry is returned for the
    /// lazy loop. When not (scan), `F` is ignored entirely.
    #[inline(always)]
    fn first_pass<const WITH_F_BOUND: bool>(&mut self, s_char: u8) -> E::Vec {
        let eng = self.eng;
        let lanes = E::LANES;
        let k = self.layout.segments;
        let prof = self.prof.stripe(s_char);

        // Diagonal carry: previous column's last segment, lanes moved
        // up one, boundary value T_{col,0} entering lane 0.
        let mut v_dia = eng.shift_insert_low(
            eng.load(&self.ws.arr_t1[(k - 1) * lanes..]),
            self.init_t_elem(self.col),
        );

        // F lower bound at each lane's first position: F(q=0) exactly,
        // plus a pure-extension ramp for higher lanes.
        let init_t_cur = self.init_t_elem(self.col + 1);
        let mut v_f = if WITH_F_BOUND {
            let f0 = init_t_cur.sat_add(E::Elem::from_i32_sat(self.t2.gap_up));
            eng.lower_bound(f0, self.chunk_ext)
        } else {
            eng.splat(E::Elem::NEG_INF)
        };

        for j in 0..k {
            let off = j * lanes;
            let t_prev = eng.load(&self.ws.arr_t1[off..]);
            v_dia = eng.add(v_dia, eng.load(&prof[off..]));

            // E (arr_L): horizontal gap from the previous column.
            let v_e = if AFFINE {
                let e_prev = eng.load(&self.ws.arr_e[off..]);
                let e = eng.max(
                    eng.add(e_prev, self.v_gap_left_ext),
                    eng.add(t_prev, self.v_gap_left),
                );
                eng.store(&mut self.ws.arr_e[off..], e);
                e
            } else {
                // Linear: E = T_prev + β' (T ≥ E makes the E chain
                // redundant — the paper's dropped asterisked lines).
                eng.add(t_prev, self.v_gap_left)
            };

            let mut v_t = eng.max(v_dia, v_e);
            if WITH_F_BOUND {
                v_t = eng.max(v_t, v_f);
            }
            if LOCAL {
                v_t = eng.max(v_t, self.v_zero);
            }
            eng.store(&mut self.ws.arr_t2[off..], v_t);
            if LOCAL {
                self.v_max = eng.max(self.v_max, v_t);
            }

            if WITH_F_BOUND {
                // F carry to the next query position (next segment).
                v_f = eng.max(eng.add(v_f, self.v_gap_up_ext), eng.add(v_t, self.v_gap_up));
            }
            v_dia = t_prev;
        }
        v_f
    }

    /// Advance one column with the **striped-iterate** strategy
    /// (Alg. 2). Returns the number of lazy sweeps this column needed
    /// — the hybrid's re-computation counter.
    #[inline(always)]
    pub fn iterate_column(&mut self, s_char: u8) -> u32 {
        let eng = self.eng;
        let lanes = E::LANES;
        let k = self.layout.segments;

        let mut v_f = self.first_pass::<true>(s_char);

        // Lazy correction loop: propagate the end-of-lane F carries
        // across the lane boundary until they stop influencing
        // (`influence_test`, Alg. 2 ln. 33).
        let mut iters = 0u64;
        v_f = eng.shift_insert_low(v_f, E::Elem::NEG_INF);
        let mut j = 0usize;
        loop {
            let off = j * lanes;
            let v_t = eng.load(&self.ws.arr_t2[off..]);
            // Influence iff vF > T + θ (covers both "improves T" and
            // "improves the next F beyond the open path").
            if !eng.any_gt(v_f, eng.add(v_t, self.v_theta)) {
                break;
            }
            let v_t = eng.max(v_t, v_f);
            eng.store(&mut self.ws.arr_t2[off..], v_t);
            if LOCAL {
                self.v_max = eng.max(self.v_max, v_t);
            }
            v_f = eng.add(v_f, self.v_gap_up_ext);
            iters += 1;
            j += 1;
            if j == k {
                j = 0;
                v_f = eng.shift_insert_low(v_f, E::Elem::NEG_INF);
            }
        }
        // The hybrid's re-computation counter: whole-column sweeps
        // this column's correction amounted to.
        let sweeps = iters.div_ceil(k as u64) as u32;
        self.lazy_iters += iters;
        self.lazy_sweeps += u64::from(sweeps);
        self.iterate_columns += 1;
        self.finish_column();
        sweeps
    }

    /// Advance one column with the **striped-scan** strategy (Alg. 3):
    /// tentative pass, weighted max-scan, correction pass.
    #[inline(always)]
    pub fn scan_column(&mut self, s_char: u8) {
        let eng = self.eng;
        let lanes = E::LANES;
        let k = self.layout.segments;

        let _ = self.first_pass::<false>(s_char);

        // Weighted max-scan turns the tentative column into the exact
        // up-gap table U (Alg. 3 ln. 18).
        let params = ScanParams {
            init: self.init_t_elem(self.col + 1),
            open: E::Elem::from_i32_sat(self.t2.gap_up),
            ext: E::Elem::from_i32_sat(self.t2.gap_up_ext),
        };
        wgt_max_scan_striped(
            eng,
            self.layout,
            &self.ws.arr_t2,
            &mut self.ws.arr_scan,
            params,
        );

        // Correction pass (Alg. 3 ln. 19–24).
        for j in 0..k {
            let off = j * lanes;
            let v_t = eng.max(
                eng.load(&self.ws.arr_t2[off..]),
                eng.load(&self.ws.arr_scan[off..]),
            );
            eng.store(&mut self.ws.arr_t2[off..], v_t);
            if LOCAL {
                self.v_max = eng.max(self.v_max, v_t);
            }
        }
        self.scan_columns += 1;
        self.finish_column();
    }

    #[inline(always)]
    fn finish_column(&mut self) {
        core::mem::swap(&mut self.ws.arr_t1, &mut self.ws.arr_t2);
        self.col += 1;
        if self.semi {
            let last = self.eng.load(&self.ws.arr_t1[self.last_seg_off..]);
            self.v_semi = self.eng.max(self.v_semi, last);
        }
        // Sticky saturation: local alignments carry their running max
        // in a register, so one `influence_test` compare per column
        // detects lane overflow as it happens. The verdict agrees with
        // the finish-time scalar check (same ceiling), it just arrives
        // early enough for the driver to abandon a doomed narrow run.
        // Global/semi scores can also saturate downward (NEG_INF
        // side); those are caught at finish as before.
        if LOCAL && !self.saturated {
            self.saturated = self.guard.check(self.eng, self.v_max);
        }
    }

    /// Sticky per-column saturation verdict (local alignments only;
    /// global/semi detect at [`finish`](Self::finish)). Once true, the
    /// run's scores are untrusted and the caller may stop feeding
    /// columns — the result will report `saturated` either way.
    #[inline(always)]
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Finish the alignment and extract the score.
    #[inline(always)]
    pub fn finish(self) -> KernelResult {
        let headroom = self.headroom;
        let (score_elem, saturated) = if LOCAL {
            let best = self.eng.reduce_max(self.v_max).max2(E::Elem::ZERO);
            let sat = self.saturated || aalign_vec::elem::near_saturation(best, headroom);
            (best, sat)
        } else if self.semi {
            // Semi-global: the lane of query position m-1 in the
            // running cross-column max.
            let mut buf = [E::Elem::ZERO; 64];
            self.eng.store(&mut buf[..E::LANES], self.v_semi);
            let fin = buf[self.last_lane];
            let sat = aalign_vec::elem::near_saturation(fin, headroom)
                || fin.to_i32() <= E::Elem::NEG_INF.to_i32() + headroom;
            (fin, sat)
        } else {
            // Global: the score sits at query position m-1 of the last
            // column (arr_t1 after the final swap).
            let slot = self.layout.slot_of(self.layout.len - 1);
            let fin = self.ws.arr_t1[slot];
            // Saturation on either end invalidates a global score.
            let sat = aalign_vec::elem::near_saturation(fin, headroom)
                || fin.to_i32() <= E::Elem::NEG_INF.to_i32() + headroom;
            (fin, sat)
        };
        KernelResult {
            score: score_elem.to_i32(),
            saturated,
            lazy_iters: self.lazy_iters,
            lazy_sweeps: self.lazy_sweeps,
            iterate_columns: self.iterate_columns,
            scan_columns: self.scan_columns,
        }
    }

    /// Subject characters consumed so far.
    pub fn columns_done(&self) -> usize {
        self.col
    }
}
