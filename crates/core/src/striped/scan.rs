//! Striped-scan alignment (paper Alg. 3): the whole subject via
//! [`ColumnEngine::scan_column`].

use aalign_bio::StripedProfile;
use aalign_obs::{HybridEvent, NullSink, ProbeOutcome, StrategyKind, TraceSink};
use aalign_vec::SimdEngine;

use crate::config::TableII;
use crate::striped::columns::{ColumnEngine, KernelResult, Workspace};
use crate::striped::emit_col;

/// Align `subject` (as alphabet indices) against a striped profile
/// using the striped-scan strategy.
#[inline(always)]
pub fn scan_align<E: SimdEngine, const LOCAL: bool, const AFFINE: bool>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    ws: &mut Workspace<E::Elem>,
) -> KernelResult {
    scan_align_sink::<E, LOCAL, AFFINE, _>(eng, prof, subject, t2, ws, &mut NullSink)
}

/// [`scan_align`] with a per-column trace sink: each column emits one
/// `scan` [`HybridEvent`] (scan columns have no lazy loop, so the
/// sweep count is always 0). Monomorphized against [`NullSink`] this
/// is exactly `scan_align`.
#[inline(always)]
pub fn scan_align_sink<E: SimdEngine, const LOCAL: bool, const AFFINE: bool, S: TraceSink>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    ws: &mut Workspace<E::Elem>,
    sink: &mut S,
) -> KernelResult {
    let mut cols = ColumnEngine::<E, LOCAL, AFFINE>::new(eng, prof, t2, ws);
    for (i, &s) in subject.iter().enumerate() {
        cols.scan_column(s);
        emit_col(
            sink,
            HybridEvent {
                column: i as u64,
                strategy: StrategyKind::Scan,
                lazy_sweeps: 0,
                switched: false,
                probe: ProbeOutcome::NotProbe,
            },
        );
        // Saturated: abandon the doomed narrow run early (see
        // `ColumnEngine::saturated`).
        if cols.saturated() {
            break;
        }
    }
    cols.finish()
}
