//! The striped SIMD kernels: AAlign's two vectorization strategies
//! plus the hybrid switcher.
//!
//! All three strategies share one column engine ([`columns`]): a
//! column of the DP table is advanced either by
//! [`columns::ColumnEngine::iterate_column`] (Alg. 2: lower-bound
//! pass + lazy correction loop) or by
//! [`columns::ColumnEngine::scan_column`] (Alg. 3: tentative pass +
//! weighted max-scan + correction pass). Because both operate on the
//! same buffers with the same semantics, any interleaving — which is
//! exactly what the hybrid does — produces bit-identical scores.

pub mod columns;
pub mod hybrid;
pub mod iterate;
pub mod scan;

pub use columns::{ColumnEngine, KernelResult, Workspace};
pub use hybrid::{hybrid_align, HybridPolicy, HybridReport, StrategyChoice};
pub use iterate::iterate_align;
pub use scan::scan_align;

#[cfg(test)]
mod tests;

#[cfg(test)]
mod semi_tests;
