//! The striped SIMD kernels: AAlign's two vectorization strategies
//! plus the hybrid switcher.
//!
//! All three strategies share one column engine ([`columns`]): a
//! column of the DP table is advanced either by
//! [`columns::ColumnEngine::iterate_column`] (Alg. 2: lower-bound
//! pass + lazy correction loop) or by
//! [`columns::ColumnEngine::scan_column`] (Alg. 3: tentative pass +
//! weighted max-scan + correction pass). Because both operate on the
//! same buffers with the same semantics, any interleaving — which is
//! exactly what the hybrid does — produces bit-identical scores.

pub mod columns;
pub mod hybrid;
pub mod iterate;
pub mod scan;

pub use columns::{ColumnEngine, KernelResult, Workspace};
pub use hybrid::{hybrid_align, hybrid_align_sink, HybridPolicy, HybridReport, StrategyChoice};
pub use iterate::{iterate_align, iterate_align_sink};
pub use scan::{scan_align, scan_align_sink};

/// Forward one per-column [`aalign_obs::HybridEvent`] to the sink.
///
/// Compiled out entirely when the `trace` cargo feature is off; with
/// it on, the sink's `enabled()` gate (constant `false` for
/// [`aalign_obs::NullSink`]) still deletes the call at monomorphization
/// time, so untraced kernels pay nothing either way.
#[cfg(feature = "trace")]
#[inline(always)]
pub(crate) fn emit_col<S: aalign_obs::TraceSink>(sink: &mut S, ev: aalign_obs::HybridEvent) {
    sink.on_hybrid(ev);
}

/// Trace feature disabled: the emission site vanishes.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub(crate) fn emit_col<S: aalign_obs::TraceSink>(_sink: &mut S, _ev: aalign_obs::HybridEvent) {}

#[cfg(test)]
mod tests;

#[cfg(test)]
mod semi_tests;
