//! Equivalence tests: every striped kernel on every engine must
//! reproduce the scalar paradigm DP bit-for-bit (scores), on every
//! paradigm configuration, across query/subject shapes with and
//! without padding, and across similarity classes (similar pairs
//! exercise the lazy loop hard; dissimilar ones exercise early exit).

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};
use aalign_bio::{Sequence, StripedProfile};
use aalign_vec::{EmuEngine, SimdEngine};

use crate::config::{AlignConfig, AlignKind, GapModel};
use crate::paradigm::paradigm_dp;
use crate::striped::{hybrid_align, iterate_align, scan_align, HybridPolicy, Workspace};

fn all_configs() -> Vec<AlignConfig> {
    let mut out = Vec::new();
    for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
        for gap in [
            GapModel::affine(-10, -2),
            GapModel::affine(-4, -4), // open == ext edge case (θ = 0 margin)
            GapModel::linear(-3),
        ] {
            out.push(AlignConfig::new(kind, gap, &BLOSUM62));
        }
    }
    out
}

/// Run iterate, scan and hybrid on engine `E` and compare all three
/// against the scalar DP.
fn check_engine<E: SimdEngine<Elem = i32>>(eng: E, q: &Sequence, s: &Sequence, label: &str) {
    for cfg in all_configs() {
        let want = paradigm_dp(&cfg, q, s).score;
        let t2 = cfg.table2();
        let prof = StripedProfile::<i32>::build(q, &cfg.matrix, E::LANES);
        let mut ws = Workspace::new();

        macro_rules! check4 {
            ($call:ident) => {
                match (t2.local, t2.affine) {
                    (true, true) => $call!(true, true),
                    (true, false) => $call!(true, false),
                    (false, true) => $call!(false, true),
                    (false, false) => $call!(false, false),
                }
            };
        }

        macro_rules! run_iterate {
            ($l:literal, $a:literal) => {
                iterate_align::<E, $l, $a>(eng, &prof, s.indices(), t2, &mut ws).score
            };
        }
        macro_rules! run_scan {
            ($l:literal, $a:literal) => {
                scan_align::<E, $l, $a>(eng, &prof, s.indices(), t2, &mut ws).score
            };
        }
        macro_rules! run_hybrid {
            ($l:literal, $a:literal) => {
                hybrid_align::<E, $l, $a>(
                    eng,
                    &prof,
                    s.indices(),
                    t2,
                    HybridPolicy {
                        threshold: 1,
                        probe_stride: 3,
                    },
                    &mut ws,
                    false,
                )
                .result
                .score
            };
        }

        let got_it = check4!(run_iterate);
        assert_eq!(
            got_it,
            want,
            "[{label}] iterate {} q={} s={}",
            cfg.label(),
            q.id(),
            s.id()
        );
        let got_sc = check4!(run_scan);
        assert_eq!(
            got_sc,
            want,
            "[{label}] scan {} q={} s={}",
            cfg.label(),
            q.id(),
            s.id()
        );
        let got_hy = check4!(run_hybrid);
        assert_eq!(
            got_hy,
            want,
            "[{label}] hybrid {} q={} s={}",
            cfg.label(),
            q.id(),
            s.id()
        );
    }
}

fn classic_pairs() -> Vec<(Sequence, Sequence)> {
    vec![
        (
            Sequence::protein("q", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("s", b"PAWHEAE").unwrap(),
        ),
        (
            Sequence::protein("ident", b"MKVLAARNDW").unwrap(),
            Sequence::protein("ident2", b"MKVLAARNDW").unwrap(),
        ),
        (
            // Query shorter than one vector.
            Sequence::protein("tiny", b"WW").unwrap(),
            Sequence::protein("tinys", b"AWWA").unwrap(),
        ),
        (
            // Subject of length 1.
            Sequence::protein("q1", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("s1", b"W").unwrap(),
        ),
        (
            // Empty subject: boundary-only result.
            Sequence::protein("qe", b"HEAGAWGHEE").unwrap(),
            Sequence::protein("se", b"").unwrap(),
        ),
    ]
}

#[test]
fn emu4_matches_dp_on_classic_pairs() {
    for (q, s) in classic_pairs() {
        check_engine(EmuEngine::<i32, 4>::new(), &q, &s, "emu4");
    }
}

#[test]
fn emu16_matches_dp_on_classic_pairs() {
    for (q, s) in classic_pairs() {
        check_engine(EmuEngine::<i32, 16>::new(), &q, &s, "emu16");
    }
}

#[test]
fn emu8_matches_dp_on_random_similarity_classes() {
    let mut rng = seeded_rng(1234);
    let q = named_query(&mut rng, 120);
    for spec in nine_similarity_specs() {
        let s = spec.generate(&mut rng, &q).subject;
        check_engine(EmuEngine::<i32, 8>::new(), &q, &s, "emu8");
    }
}

#[test]
fn padding_shapes_are_exact() {
    // Query lengths straddling segment boundaries for 4- and 8-lane
    // engines (m = k·v ± 1 exercises maximal/minimal padding).
    let mut rng = seeded_rng(77);
    for m in [3usize, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
        let q = named_query(&mut rng, m);
        let s = named_query(&mut rng, 23);
        check_engine(EmuEngine::<i32, 4>::new(), &q, &s, "pad4");
        check_engine(EmuEngine::<i32, 8>::new(), &q, &s, "pad8");
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_matches_dp() {
    let Some(eng) = aalign_vec::avx2::Avx2I32::new() else {
        eprintln!("skipping: no avx2");
        return;
    };
    let mut rng = seeded_rng(4242);
    let q = named_query(&mut rng, 150);
    for spec in nine_similarity_specs() {
        let s = spec.generate(&mut rng, &q).subject;
        check_engine(eng, &q, &s, "avx2");
    }
    for (q, s) in classic_pairs() {
        check_engine(eng, &q, &s, "avx2-classic");
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx512_matches_dp() {
    let Some(eng) = aalign_vec::avx512::Avx512I32::new() else {
        eprintln!("skipping: no avx512f");
        return;
    };
    let mut rng = seeded_rng(555);
    let q = named_query(&mut rng, 150);
    for spec in nine_similarity_specs() {
        let s = spec.generate(&mut rng, &q).subject;
        check_engine(eng, &q, &s, "avx512");
    }
    for (q, s) in classic_pairs() {
        check_engine(eng, &q, &s, "avx512-classic");
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn sse41_matches_dp() {
    let Some(eng) = aalign_vec::sse41::Sse41I32::new() else {
        eprintln!("skipping: no sse4.1");
        return;
    };
    let mut rng = seeded_rng(808);
    let q = named_query(&mut rng, 90);
    for spec in nine_similarity_specs().into_iter().take(4) {
        let s = spec.generate(&mut rng, &q).subject;
        check_engine(eng, &q, &s, "sse41");
    }
}

#[test]
fn i16_kernels_match_dp_when_in_range() {
    // Short sequences keep scores well inside i16.
    let mut rng = seeded_rng(31);
    let q = named_query(&mut rng, 64);
    let s = named_query(&mut rng, 50);
    for cfg in all_configs() {
        let want = paradigm_dp(&cfg, &q, &s).score;
        let t2 = cfg.table2();
        let prof = StripedProfile::<i16>::build(&q, &cfg.matrix, 16);
        let mut ws = Workspace::<i16>::new();
        let eng = EmuEngine::<i16, 16>::new();
        let got = match (t2.local, t2.affine) {
            (true, true) => iterate_align::<_, true, true>(eng, &prof, s.indices(), t2, &mut ws),
            (true, false) => iterate_align::<_, true, false>(eng, &prof, s.indices(), t2, &mut ws),
            (false, true) => iterate_align::<_, false, true>(eng, &prof, s.indices(), t2, &mut ws),
            (false, false) => {
                iterate_align::<_, false, false>(eng, &prof, s.indices(), t2, &mut ws)
            }
        };
        assert_eq!(got.score, want, "{}", cfg.label());
        assert!(!got.saturated);
    }
}

#[test]
fn i8_local_saturation_is_flagged() {
    // A long identical pair overflows i8 for local alignment.
    let text: Vec<u8> = std::iter::repeat_n(b'W', 100).collect();
    let q = Sequence::protein("q", &text).unwrap();
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let t2 = cfg.table2();
    let prof = StripedProfile::<i8>::build(&q, &cfg.matrix, 32);
    let mut ws = Workspace::<i8>::new();
    let eng = EmuEngine::<i8, 32>::new();
    let got = iterate_align::<_, true, true>(eng, &prof, q.indices(), t2, &mut ws);
    assert!(got.saturated, "score {} must be flagged", got.score);
}

#[test]
fn iterate_and_scan_agree_on_stats_columns() {
    let mut rng = seeded_rng(9);
    let q = named_query(&mut rng, 40);
    let s = named_query(&mut rng, 35);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let t2 = cfg.table2();
    let prof = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
    let mut ws = Workspace::new();
    let eng = EmuEngine::<i32, 8>::new();
    let it = iterate_align::<_, true, true>(eng, &prof, s.indices(), t2, &mut ws);
    assert_eq!(it.iterate_columns, 35);
    assert_eq!(it.scan_columns, 0);
    let sc = scan_align::<_, true, true>(eng, &prof, s.indices(), t2, &mut ws);
    assert_eq!(sc.scan_columns, 35);
    assert_eq!(sc.iterate_columns, 0);
    assert_eq!(sc.lazy_iters, 0);
}

#[test]
fn hybrid_trace_covers_every_column() {
    let mut rng = seeded_rng(13);
    let q = named_query(&mut rng, 60);
    let s = named_query(&mut rng, 95);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let t2 = cfg.table2();
    let prof = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
    let mut ws = Workspace::new();
    let eng = EmuEngine::<i32, 8>::new();
    let rep = hybrid_align::<_, true, true>(
        eng,
        &prof,
        s.indices(),
        t2,
        HybridPolicy {
            threshold: 0,
            probe_stride: 10,
        },
        &mut ws,
        true,
    );
    assert_eq!(rep.trace.len(), 95, "one event per subject character");
    assert_eq!(rep.result.iterate_columns + rep.result.scan_columns, 95);
}

#[test]
fn similar_pairs_need_more_lazy_sweeps_than_dissimilar() {
    // The paper's Sec. V-B observation, the basis of the hybrid.
    let mut rng = seeded_rng(2020);
    let q = named_query(&mut rng, 300);
    let similar = aalign_bio::synth::PairSpec::new(
        aalign_bio::synth::Level::Hi,
        aalign_bio::synth::Level::Hi,
    )
    .generate(&mut rng, &q)
    .subject;
    let dissimilar = named_query(&mut rng, 300);

    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let t2 = cfg.table2();
    let prof = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
    let mut ws = Workspace::new();
    let eng = EmuEngine::<i32, 8>::new();
    let sim = iterate_align::<_, true, true>(eng, &prof, similar.indices(), t2, &mut ws);
    let dis = iterate_align::<_, true, true>(eng, &prof, dissimilar.indices(), t2, &mut ws);
    assert!(
        sim.lazy_iters > dis.lazy_iters * 2,
        "similar {} vs dissimilar {}",
        sim.lazy_iters,
        dis.lazy_iters
    );
}

/// The hybrid's correctness rests on iterate and scan columns being
/// freely interleavable on shared buffers. Fuzz exactly that: a
/// random strategy choice per column must still be bit-identical to
/// the scalar DP, for every configuration.
#[test]
fn random_column_interleaving_is_exact() {
    use crate::striped::columns::ColumnEngine;
    use rand::RngExt;

    let mut rng = seeded_rng(31415);
    for trial in 0..12 {
        let q = named_query(&mut rng, 20 + trial * 7);
        let s = named_query(&mut rng, 30 + trial * 11);
        for cfg in all_configs() {
            let want = paradigm_dp(&cfg, &q, &s).score;
            let t2 = cfg.table2();
            let prof = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
            let mut ws = Workspace::new();
            let eng = EmuEngine::<i32, 8>::new();

            macro_rules! run_interleaved {
                ($l:literal, $a:literal) => {{
                    let mut cols = ColumnEngine::<_, $l, $a>::new(eng, &prof, t2, &mut ws);
                    for &c in s.indices() {
                        if rng.random_bool(0.5) {
                            cols.iterate_column(c);
                        } else {
                            cols.scan_column(c);
                        }
                    }
                    cols.finish().score
                }};
            }
            let got = match (t2.local, t2.affine) {
                (true, true) => run_interleaved!(true, true),
                (true, false) => run_interleaved!(true, false),
                (false, true) => run_interleaved!(false, true),
                (false, false) => run_interleaved!(false, false),
            };
            assert_eq!(got, want, "trial {trial} {}", cfg.label());
        }
    }
}

/// Width-equivalence on hardware engines: the i16 kernels must agree
/// with i32 whenever the score bound admits i16.
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_i16_matches_i32_in_range() {
    let (Some(e16), Some(e32)) = (
        aalign_vec::avx2::Avx2I16::new(),
        aalign_vec::avx2::Avx2I32::new(),
    ) else {
        eprintln!("skipping: no avx2");
        return;
    };
    let mut rng = seeded_rng(2718);
    let q = named_query(&mut rng, 75);
    for spec in nine_similarity_specs() {
        let s = spec.generate(&mut rng, &q).subject;
        for cfg in all_configs() {
            let t2 = cfg.table2();
            let p16 = StripedProfile::<i16>::build(&q, &cfg.matrix, 16);
            let p32 = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
            let mut w16 = Workspace::<i16>::new();
            let mut w32 = Workspace::<i32>::new();

            macro_rules! both {
                ($l:literal, $a:literal) => {{
                    let r16 = iterate_align::<_, $l, $a>(e16, &p16, s.indices(), t2, &mut w16);
                    let r32 = iterate_align::<_, $l, $a>(e32, &p32, s.indices(), t2, &mut w32);
                    (r16, r32)
                }};
            }
            let (r16, r32) = match (t2.local, t2.affine) {
                (true, true) => both!(true, true),
                (true, false) => both!(true, false),
                (false, true) => both!(false, true),
                (false, false) => both!(false, false),
            };
            assert!(!r16.saturated, "75-residue scores fit i16");
            assert_eq!(r16.score, r32.score, "{} {}", cfg.label(), spec.label());
        }
    }
}
