//! The hybrid vectorization strategy (paper Sec. V-B).
//!
//! Start in striped-iterate; per column, count how many lazy-loop
//! sweeps the correction needed. When the counter exceeds a threshold
//! the aligned region is "too similar" for iterate to pay off, so
//! switch to striped-scan for the next `stride` subject characters,
//! then *probe*: run one iterate column and let its counter decide
//! whether to stay in iterate or go back to scan.
//!
//! The switch is conservative (iterate → scan only on evidence) and
//! the return is aggressive (periodic probes) for the reason the
//! paper gives: most database subjects are dissimilar to the query,
//! where iterate converges much faster.

use aalign_bio::StripedProfile;
use aalign_obs::{HybridEvent, NullSink, ProbeOutcome, StrategyKind, TraceSink};
use aalign_vec::SimdEngine;

use crate::config::TableII;
use crate::striped::columns::{ColumnEngine, KernelResult, Workspace};
use crate::striped::emit_col;

/// Tuning of the hybrid switcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridPolicy {
    /// Switch to scan when a column's lazy sweeps exceed this.
    /// The paper calibrates 3 for 256-bit CPU and 2 for 512-bit MIC.
    pub threshold: u32,
    /// Scan columns to run before probing iterate again.
    pub probe_stride: usize,
}

impl HybridPolicy {
    /// The paper's calibrated defaults by vector width: threshold 2
    /// for 512-bit shapes (≥ 16 lanes), 3 otherwise; stride 128.
    pub fn for_lanes(lanes: usize) -> Self {
        Self {
            threshold: if lanes >= 16 { 2 } else { 3 },
            probe_stride: 128,
        }
    }
}

/// Which strategy handled a column (per-column trace for Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// Iterate column with its lazy-sweep count.
    Iterate(u32),
    /// Scan column.
    Scan,
}

/// Hybrid run report: the kernel result plus the decision trace.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// The alignment result (identical scores to pure iterate/scan).
    pub result: KernelResult,
    /// Number of iterate→scan switches taken.
    pub switches_to_scan: usize,
    /// Number of probes that returned to iterate.
    pub probes_stayed: usize,
    /// Optional per-column trace (populated when `trace` is true).
    pub trace: Vec<StrategyChoice>,
}

/// Align with the hybrid strategy under `policy`. Set `trace` to
/// record the per-column decisions (used by the Fig. 5 example).
///
/// ```
/// use aalign_core::striped::{hybrid_align, HybridPolicy, Workspace};
/// use aalign_core::{AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence, StripedProfile};
/// use aalign_vec::EmuEngine;
///
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let s = Sequence::protein("s", b"PAWHEAE").unwrap();
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// let prof = StripedProfile::<i32>::build(&q, &cfg.matrix, 8);
/// let mut ws = Workspace::new();
/// let rep = hybrid_align::<_, true, true>(
///     EmuEngine::<i32, 8>::new(),
///     &prof,
///     s.indices(),
///     cfg.table2(),
///     HybridPolicy { threshold: 2, probe_stride: 64 },
///     &mut ws,
///     true,
/// );
/// assert_eq!(rep.result.score, 17);
/// assert_eq!(rep.trace.len(), s.len());
/// ```
#[inline(always)]
pub fn hybrid_align<E: SimdEngine, const LOCAL: bool, const AFFINE: bool>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    policy: HybridPolicy,
    ws: &mut Workspace<E::Elem>,
    trace: bool,
) -> HybridReport {
    hybrid_align_sink::<E, LOCAL, AFFINE, _>(
        eng,
        prof,
        subject,
        t2,
        policy,
        ws,
        trace,
        &mut NullSink,
    )
}

/// [`hybrid_align`] with a per-column trace sink: every column emits
/// one [`HybridEvent`] recording the strategy that processed it, its
/// lazy-sweep count, whether it triggered an iterate→scan switch, and
/// — for post-burst probe columns — whether the probe stayed in
/// iterate or sent the kernel back to scan.
///
/// Monomorphized against [`NullSink`] (which is what [`hybrid_align`]
/// does) the emission sites compile away and this is exactly the
/// untraced kernel; the `obs_overhead` bench in `crates/bench` guards
/// that equivalence at <1% measured overhead.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn hybrid_align_sink<E: SimdEngine, const LOCAL: bool, const AFFINE: bool, S: TraceSink>(
    eng: E,
    prof: &StripedProfile<E::Elem>,
    subject: &[u8],
    t2: TableII,
    policy: HybridPolicy,
    ws: &mut Workspace<E::Elem>,
    trace: bool,
    sink: &mut S,
) -> HybridReport {
    let mut cols = ColumnEngine::<E, LOCAL, AFFINE>::new(eng, prof, t2, ws);
    let mut events = Vec::new();
    let mut switches_to_scan = 0usize;
    let mut probes_stayed = 0usize;

    let mut i = 0usize;
    let n = subject.len();
    // `true` while in iterate mode; scan mode runs in stride bursts.
    let mut iterating = true;
    // Saturated runs stop early (see `ColumnEngine::saturated`): the
    // scores are untrusted whatever the remaining columns hold.
    while i < n && !cols.saturated() {
        if iterating {
            let sweeps = cols.iterate_column(subject[i]);
            if trace {
                events.push(StrategyChoice::Iterate(sweeps));
            }
            let switched = sweeps > policy.threshold;
            emit_col(
                sink,
                HybridEvent {
                    column: i as u64,
                    strategy: StrategyKind::Iterate,
                    lazy_sweeps: sweeps,
                    switched,
                    probe: ProbeOutcome::NotProbe,
                },
            );
            i += 1;
            if switched {
                iterating = false;
                switches_to_scan += 1;
            }
        } else {
            // A burst of scan columns…
            let burst_end = (i + policy.probe_stride).min(n);
            while i < burst_end && !cols.saturated() {
                cols.scan_column(subject[i]);
                if trace {
                    events.push(StrategyChoice::Scan);
                }
                emit_col(
                    sink,
                    HybridEvent {
                        column: i as u64,
                        strategy: StrategyKind::Scan,
                        lazy_sweeps: 0,
                        switched: false,
                        probe: ProbeOutcome::NotProbe,
                    },
                );
                i += 1;
            }
            // …then a probe column decides the next mode.
            if i < n && !cols.saturated() {
                let sweeps = cols.iterate_column(subject[i]);
                if trace {
                    events.push(StrategyChoice::Iterate(sweeps));
                }
                let stayed = sweeps <= policy.threshold;
                emit_col(
                    sink,
                    HybridEvent {
                        column: i as u64,
                        strategy: StrategyKind::Iterate,
                        lazy_sweeps: sweeps,
                        switched: !stayed,
                        probe: if stayed {
                            ProbeOutcome::Stayed
                        } else {
                            ProbeOutcome::Returned
                        },
                    },
                );
                i += 1;
                if stayed {
                    iterating = true;
                    probes_stayed += 1;
                } else {
                    switches_to_scan += 1;
                }
            }
        }
    }

    HybridReport {
        result: cols.finish(),
        switches_to_scan,
        probes_stayed,
        trace: events,
    }
}
