//! Capped exponential backoff with deterministic jitter.
//!
//! One policy, used everywhere a dead thing is brought back:
//! shard-supervisor child respawn (`aalign-shard`) and client-side
//! reconnect/retry loops. The delay envelope doubles from `base`
//! until it hits `cap`; each emitted delay is the envelope minus a
//! bounded *subtractive* jitter so a delay never exceeds the
//! envelope (and therefore never exceeds `cap`).
//!
//! Jitter is deterministic: a splitmix64 stream seeded by the
//! caller. Two [`Backoff`] values built with the same parameters and
//! seed emit byte-identical delay sequences — chaos tests and the
//! supervisor's replay diagnostics depend on that.
//!
//! Properties (pinned by `crates/core/tests/retry_properties.rs`):
//!
//! * **monotone until cap** — while the envelope is still doubling,
//!   delays are non-decreasing (subtractive jitter ≤ 1/2 the
//!   envelope cannot cross consecutive doublings);
//! * **jitter bounded** — every delay `d_n` satisfies
//!   `envelope_n · (1 − j/100) ≤ d_n ≤ envelope_n ≤ cap`;
//! * **deterministic per seed** — same `(base, cap, jitter, seed)`
//!   ⇒ same sequence.

use core::time::Duration;

/// Default jitter fraction, percent of the envelope.
pub const DEFAULT_JITTER_PCT: u32 = 20;

/// splitmix64 — the same mixer the fault-injection plans use, so one
/// seed reproduces a whole chaos run.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Iterator-style capped exponential backoff.
///
/// ```
/// use aalign_core::retry::Backoff;
/// use core::time::Duration;
///
/// let mut b = Backoff::seeded(Duration::from_millis(50), Duration::from_secs(2), 7);
/// let first = b.next().unwrap();
/// assert!(first <= Duration::from_millis(50));
/// // Same seed ⇒ same sequence.
/// let mut b2 = Backoff::seeded(Duration::from_millis(50), Duration::from_secs(2), 7);
/// assert_eq!(b2.next().unwrap(), first);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    jitter_pct: u32,
    state: u64,
    attempt: u32,
}

impl Backoff {
    /// Policy with the default jitter ([`DEFAULT_JITTER_PCT`]) and a
    /// zero seed. `base` is clamped to ≥ 1 ms so the envelope always
    /// makes progress; `cap` is clamped to ≥ `base`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self::seeded(base, cap, 0)
    }

    /// Policy with an explicit jitter seed (deterministic stream).
    pub fn seeded(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            jitter_pct: DEFAULT_JITTER_PCT,
            state: seed,
            attempt: 0,
        }
    }

    /// Override the jitter fraction (percent of the envelope,
    /// clamped to ≤ 50 so monotonicity under doubling holds).
    #[must_use]
    pub fn with_jitter_pct(mut self, pct: u32) -> Self {
        self.jitter_pct = pct.min(50);
        self
    }

    /// Attempts emitted so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The un-jittered delay for attempt `n`: `min(base · 2ⁿ, cap)`.
    pub fn envelope(&self, n: u32) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let cap_ms = self.cap.as_millis() as u64;
        // Saturate the shift well before u64 overflow.
        let env_ms = if n >= 32 {
            cap_ms
        } else {
            (base_ms << n).min(cap_ms)
        };
        Duration::from_millis(env_ms.max(1))
    }

    /// True once the envelope has reached `cap` for the *next*
    /// attempt — past this point delays fluctuate in
    /// `[cap·(1−j), cap]` instead of growing.
    pub fn saturated(&self) -> bool {
        self.envelope(self.attempt) >= self.cap
    }

    /// Reset the attempt counter (e.g. after a child stays healthy
    /// long enough to be trusted again). The jitter stream keeps
    /// advancing — resets do not replay delays.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    /// Never returns `None` — the *caller's* circuit breaker decides
    /// when to stop retrying.
    fn next(&mut self) -> Option<Duration> {
        let env = self.envelope(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        let env_ms = env.as_millis() as u64;
        let span = env_ms * u64::from(self.jitter_pct) / 100;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(&mut self.state) % (span + 1)
        };
        Some(Duration::from_millis(env_ms - jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_doubles_then_caps() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_millis(75));
        assert_eq!(b.envelope(0), Duration::from_millis(10));
        assert_eq!(b.envelope(1), Duration::from_millis(20));
        assert_eq!(b.envelope(2), Duration::from_millis(40));
        assert_eq!(b.envelope(3), Duration::from_millis(75));
        assert_eq!(b.envelope(63), Duration::from_millis(75));
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        let d = b.next().unwrap();
        assert!(d >= Duration::from_micros(800), "{d:?}");
        assert!(d <= Duration::from_millis(1));
    }

    #[test]
    fn reset_restarts_the_envelope_but_not_the_stream() {
        let mut b = Backoff::seeded(Duration::from_millis(8), Duration::from_secs(1), 3);
        let first: Vec<_> = (0..4).map(|_| b.next().unwrap()).collect();
        b.reset();
        assert_eq!(b.attempt(), 0);
        let again = b.next().unwrap();
        // Envelope restarted: back inside the first attempt's band.
        assert!(again <= b.envelope(0));
        // Stream advanced: not necessarily equal to the original first delay.
        let _ = (first, again);
    }
}
