//! Optimized sequential kernels — the paper's Fig. 9 baselines.
//!
//! Column-major, double-buffered (O(m) space), structured exactly like
//! the vector kernels so the comparison measures vectorization, not
//! algorithmic differences. Linear configurations skip the `E` buffer
//! the same way the generated vector code drops the asterisked lines.

use aalign_bio::{Sequence, SubstMatrix};

use crate::config::{AlignConfig, AlignKind};
use crate::paradigm::{RefScore, NEG_INF};

/// Sequential alignment with column double-buffering.
///
/// ```
/// use aalign_core::scalar::scalar_column_align;
/// use aalign_core::{AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let s = Sequence::protein("s", b"PAWHEAE").unwrap();
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// let r = scalar_column_align(&cfg, &q, &s);
/// assert_eq!(r.score, 17);
/// assert_eq!(r.end, (6, 3)); // subject pos 6, query pos 3 (1-based)
/// ```
pub fn scalar_column_align(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> RefScore {
    let t2 = cfg.table2();
    if t2.affine {
        if t2.local {
            scalar_impl::<true, true>(cfg, query, subject)
        } else {
            scalar_impl::<false, true>(cfg, query, subject)
        }
    } else if t2.local {
        scalar_impl::<true, false>(cfg, query, subject)
    } else {
        scalar_impl::<false, false>(cfg, query, subject)
    }
}

#[allow(clippy::needless_range_loop)] // column DP, indices intentional
fn scalar_impl<const LOCAL: bool, const AFFINE: bool>(
    cfg: &AlignConfig,
    query: &Sequence,
    subject: &Sequence,
) -> RefScore {
    let t2 = cfg.table2();
    let matrix: &SubstMatrix = &cfg.matrix;
    let q = query.indices();
    let s = subject.indices();
    let (m, n) = (q.len(), s.len());

    // Double-buffered T columns (index 0 = boundary row).
    let mut t_prev: Vec<i32> = (0..=m)
        .map(|j| {
            if j == 0 {
                t2.init_t(0)
            } else {
                t2.init_col(j - 1)
            }
        })
        .collect();
    let mut t_cur = vec![0i32; m + 1];
    let mut e = vec![NEG_INF; m + 1];

    let mut best = i32::MIN;
    let mut best_end = (0usize, 0usize);
    // Semi-global: best value ever seen at the last query row.
    let mut semi_best = t_prev[m];
    let mut semi_end = 0usize;
    for (i, &sc) in s.iter().enumerate() {
        let row = matrix.row(sc);
        t_cur[0] = t2.init_t(i + 1);
        let mut f = NEG_INF;
        for j in 1..=m {
            let ej = if AFFINE {
                let v = (e[j] + t2.gap_left_ext).max(t_prev[j] + t2.gap_left);
                e[j] = v;
                v
            } else {
                t_prev[j] + t2.gap_left
            };
            f = if AFFINE {
                (f + t2.gap_up_ext).max(t_cur[j - 1] + t2.gap_up)
            } else {
                f.max(t_cur[j - 1]) + t2.gap_up_ext
            };
            let d = t_prev[j - 1] + row[q[j - 1] as usize];
            let mut v = d.max(ej).max(f);
            if LOCAL {
                v = v.max(0);
                if v > best {
                    best = v;
                    best_end = (i + 1, j);
                }
            }
            t_cur[j] = v;
        }
        if t_cur[m] > semi_best {
            semi_best = t_cur[m];
            semi_end = i + 1;
        }
        core::mem::swap(&mut t_prev, &mut t_cur);
    }

    match cfg.kind {
        AlignKind::Local => {
            if best <= 0 {
                RefScore {
                    score: 0,
                    end: (0, 0),
                }
            } else {
                RefScore {
                    score: best,
                    end: best_end,
                }
            }
        }
        AlignKind::Global => RefScore {
            score: t_prev[m],
            end: (n, m),
        },
        AlignKind::SemiGlobal => RefScore {
            score: semi_best,
            end: (semi_end, m),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GapModel;
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};

    #[test]
    fn matches_paradigm_dp_on_all_configs() {
        let mut rng = seeded_rng(21);
        let q = named_query(&mut rng, 83);
        let subjects: Vec<_> = nine_similarity_specs()
            .iter()
            .map(|spec| spec.generate(&mut rng, &q).subject)
            .collect();
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            for gap in [GapModel::affine(-10, -2), GapModel::linear(-3)] {
                let cfg = AlignConfig::new(kind, gap, &BLOSUM62);
                for s in &subjects {
                    let want = paradigm_dp(&cfg, &q, s);
                    let got = scalar_column_align(&cfg, &q, s);
                    assert_eq!(got.score, want.score, "{} vs {}", cfg.label(), s.id());
                }
            }
        }
    }

    #[test]
    fn local_end_position_matches_dp() {
        let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
        let s = Sequence::protein("s", b"PAWHEAE").unwrap();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let a = paradigm_dp(&cfg, &q, &s);
        let b = scalar_column_align(&cfg, &q, &s);
        assert_eq!(a.score, b.score);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn empty_subject_global_pays_gap_ramp() {
        let q = Sequence::protein("q", b"HEAG").unwrap();
        let s = Sequence::protein("s", b"").unwrap();
        let cfg = AlignConfig::global(GapModel::affine(-5, -1), &BLOSUM62);
        let r = scalar_column_align(&cfg, &q, &s);
        assert_eq!(r.score, -5 - 4); // θ + 4β
    }

    #[test]
    fn empty_subject_local_scores_zero() {
        let q = Sequence::protein("q", b"HEAG").unwrap();
        let s = Sequence::protein("s", b"").unwrap();
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        assert_eq!(scalar_column_align(&cfg, &q, &s).score, 0);
    }
}
