//! Alignment configuration and the Table II parameter derivation.
//!
//! The paper's generalized paradigm (Sec. IV) is parameterized by:
//! the alignment kind (local = Smith-Waterman, global =
//! Needleman-Wunsch — the presence of the `0` operand in Eq. 2), the
//! gap system (linear: θ = 0, affine: θ < 0), and the substitution
//! matrix γ. From those, Table II derives the concrete expressions
//! the vector code constructs are rewritten with (`GAP_LEFT`,
//! `GAP_UP_EXT`, `INIT_T`, …); here that derivation is
//! [`AlignConfig::table2`].
//!
//! # Sign convention
//! Penalties are **score deltas ≤ 0**: a gap of length `L` contributes
//! `θ + L·β`. `GapModel::affine(-10, -2)` therefore means "opening
//! costs 10, each gapped residue costs another 2" — i.e. a 1-long gap
//! scores −12 (the combined `GAP_OPEN` of the paper's Alg. 1).

use std::sync::Arc;

use aalign_bio::{Sequence, SubstMatrix};

use crate::kernel::AlignError;

/// Local (Smith-Waterman), global (Needleman-Wunsch) or semi-global
/// alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignKind {
    /// Local alignment: scores clamp at 0; result is the table max.
    Local,
    /// Global alignment: both sequences consumed end to end.
    Global,
    /// Semi-global ("glocal", extension beyond the paper): the query
    /// is consumed end to end, but the subject's prefix and suffix
    /// are free — the read-mapping configuration. In paradigm terms:
    /// no `0` operand, `INIT_T(i) = 0` (free subject prefix), result
    /// read as the maximum over the last query row (free suffix).
    SemiGlobal,
}

impl AlignKind {
    /// Short name (`sw` / `nw` / `sg`) used in reports.
    pub fn short(self) -> &'static str {
        match self {
            AlignKind::Local => "sw",
            AlignKind::Global => "nw",
            AlignKind::SemiGlobal => "sg",
        }
    }
}

/// Gap penalty system of the generalized paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GapModel {
    /// Linear gaps: θ = 0, each gapped residue scores `ext`.
    Linear {
        /// Per-residue gap score (< 0).
        ext: i32,
    },
    /// Affine gaps: opening scores `open` (θ ≤ 0) once, plus `ext`
    /// (β < 0) per gapped residue.
    Affine {
        /// Gap initiation score θ (≤ 0), charged once per gap.
        open: i32,
        /// Gap extension score β (< 0), charged per gapped residue.
        ext: i32,
    },
}

impl GapModel {
    /// Linear gap model.
    ///
    /// # Panics
    /// Panics unless `ext < 0`.
    pub fn linear(ext: i32) -> Self {
        assert!(ext < 0, "gap extension must be negative, got {ext}");
        GapModel::Linear { ext }
    }

    /// Affine gap model.
    ///
    /// # Panics
    /// Panics unless `open ≤ 0` and `ext < 0`.
    pub fn affine(open: i32, ext: i32) -> Self {
        assert!(open <= 0, "gap open must be ≤ 0, got {open}");
        assert!(ext < 0, "gap extension must be negative, got {ext}");
        GapModel::Affine { open, ext }
    }

    /// θ: the initiation-only part (0 for linear).
    pub fn theta(self) -> i32 {
        match self {
            GapModel::Linear { .. } => 0,
            GapModel::Affine { open, .. } => open,
        }
    }

    /// β: the per-residue part.
    pub fn beta(self) -> i32 {
        match self {
            GapModel::Linear { ext } | GapModel::Affine { ext, .. } => ext,
        }
    }

    /// True for the affine variant.
    pub fn is_affine(self) -> bool {
        matches!(self, GapModel::Affine { .. })
    }

    /// Total score of a gap of length `len ≥ 1`.
    pub fn gap_score(self, len: usize) -> i32 {
        self.theta() + self.beta() * len as i32
    }

    /// Short name (`lin` / `aff`) used in reports.
    pub fn short(self) -> &'static str {
        if self.is_affine() {
            "aff"
        } else {
            "lin"
        }
    }
}

/// The Table II expressions: everything a kernel construct needs,
/// derived once from an [`AlignConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableII {
    /// `GAP_LEFT` = θ' + β': score of a fresh 1-gap in the subject
    /// direction (applied to the previous column's `T`).
    pub gap_left: i32,
    /// `GAP_LEFT_EXT` = β'.
    pub gap_left_ext: i32,
    /// `GAP_UP` = θ + β: fresh 1-gap in the query direction.
    pub gap_up: i32,
    /// `GAP_UP_EXT` = β.
    pub gap_up_ext: i32,
    /// Whether the `0` operand participates (`MAX_OPRD` includes zero).
    pub local: bool,
    /// Whether the asterisked (affine-only) statements are kept.
    pub affine: bool,
    /// The alignment kind (drives boundary values and where the
    /// result is read from).
    pub kind: AlignKind,
}

impl TableII {
    /// `INIT_T(i)`: boundary value `T_{i,0}` — 0 for local and
    /// semi-global (free subject prefix); the subject-direction gap
    /// ramp for global.
    #[inline]
    pub fn init_t(&self, i: usize) -> i32 {
        match self.kind {
            AlignKind::Local | AlignKind::SemiGlobal => 0,
            AlignKind::Global => {
                if i == 0 {
                    0
                } else {
                    self.gap_left + (i as i32 - 1) * self.gap_left_ext
                }
            }
        }
    }

    /// Boundary value `T_{0,q+1}` along the query (the initial column
    /// buffer) — 0 for local; the query-direction gap ramp for global
    /// and semi-global (the query must be consumed).
    #[inline]
    pub fn init_col(&self, q: usize) -> i32 {
        match self.kind {
            AlignKind::Local => 0,
            AlignKind::Global | AlignKind::SemiGlobal => self.gap_up + q as i32 * self.gap_up_ext,
        }
    }
}

/// Full alignment configuration: kind × gap model × matrix.
#[derive(Debug, Clone)]
pub struct AlignConfig {
    /// Local or global.
    pub kind: AlignKind,
    /// Gap penalty system.
    pub gap: GapModel,
    /// Substitution matrix (shared).
    pub matrix: Arc<SubstMatrix>,
}

impl AlignConfig {
    /// Configuration from parts.
    pub fn new(kind: AlignKind, gap: GapModel, matrix: &SubstMatrix) -> Self {
        Self {
            kind,
            gap,
            matrix: Arc::new(matrix.clone()),
        }
    }

    /// Local (Smith-Waterman) configuration.
    pub fn local(gap: GapModel, matrix: &SubstMatrix) -> Self {
        Self::new(AlignKind::Local, gap, matrix)
    }

    /// Global (Needleman-Wunsch) configuration.
    pub fn global(gap: GapModel, matrix: &SubstMatrix) -> Self {
        Self::new(AlignKind::Global, gap, matrix)
    }

    /// Semi-global configuration (query consumed fully, subject ends
    /// free) — the read-mapping mode; an extension beyond the paper.
    pub fn semi_global(gap: GapModel, matrix: &SubstMatrix) -> Self {
        Self::new(AlignKind::SemiGlobal, gap, matrix)
    }

    /// Derive the Table II expressions (same gap system in both
    /// directions, as in the paper's evaluation).
    pub fn table2(&self) -> TableII {
        let theta = self.gap.theta();
        let beta = self.gap.beta();
        TableII {
            gap_left: theta + beta,
            gap_left_ext: beta,
            gap_up: theta + beta,
            gap_up_ext: beta,
            local: self.kind == AlignKind::Local,
            affine: self.gap.is_affine(),
            kind: self.kind,
        }
    }

    /// A conservative bound on `|score|` for sequences of the given
    /// lengths — used by the width policy to decide whether a narrow
    /// element type can represent every intermediate value.
    pub fn score_bound(&self, query_len: usize, subject_len: usize) -> i64 {
        let gamma = self
            .matrix
            .max_score()
            .abs()
            .max(self.matrix.min_score().abs()) as i64;
        let gap = (self.gap.theta().abs() + self.gap.beta().abs()) as i64;
        let len = query_len.max(subject_len) as i64;
        (gamma + gap) * (len + 1)
    }

    /// Short label like `sw-aff` used in reports.
    pub fn label(&self) -> String {
        format!("{}-{}", self.kind.short(), self.gap.short())
    }

    /// Verify `s` is encoded over this configuration's matrix
    /// alphabet — the shared precondition of every kernel entry point
    /// ([`Aligner::align`](crate::Aligner::align), the prepared path,
    /// the inter-sequence engine, and the search drivers all call
    /// this).
    pub fn check_seq(&self, s: &Sequence) -> Result<(), AlignError> {
        if core::ptr::eq(s.alphabet(), self.matrix.alphabet()) {
            Ok(())
        } else {
            Err(AlignError::AlphabetMismatch {
                id: s.id().to_string(),
            })
        }
    }

    /// Interval analysis of the recurrences: conservative bounds on
    /// every T/U/L cell for sequences up to the given lengths. See
    /// [`ScoreBounds`].
    pub fn score_bounds(&self, max_query: usize, max_subject: usize) -> ScoreBounds {
        ScoreBounds::analyze(self, max_query, max_subject)
    }
}

/// Conservative per-table value bounds from interval arithmetic over
/// the generalized recurrences (Eq. 2–6), plus the arithmetic headroom
/// the kernels need around them.
///
/// The intervals come from path arguments rather than cell-by-cell
/// iteration, so they are closed forms:
///
/// * `T` is bounded above by a perfect-match path: at most
///   `min(m, n)` diagonal steps each contributing at most γ⁺
///   (`matrix.max_score()`). Local kernels clamp below at 0; global
///   and semi-global cells are bounded below by the worst path, which
///   takes at most `m + n` steps each losing at most
///   `max(|γ⁻|, γ⁺, |β|)` plus two gap openings.
/// * `U`/`L` read `T + θ + β` or themselves `+ β`, so their interval
///   is `T`'s shifted down by `|θ| + |β|` (they never exceed `T`'s
///   maximum: a gap never gains score).
/// * [`headroom`](ScoreBounds::headroom) covers what the kernels add
///   *around* the mathematical values: the `NEG_INF` sentinel has gap
///   penalties added to it before saturation/clamping catches up, and
///   biased unsigned arithmetic shifts by up to γ⁺ + |θ| + |β|.
///
/// [`fits`](ScoreBounds::fits) is the single source of truth for
/// width selection: the runtime `Aligner` consults it per
/// query/subject pair, and `aalign-analyzer range` reports it
/// offline from a `KernelSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreBounds {
    /// Smallest value any `T` cell can take.
    pub t_min: i64,
    /// Largest value any `T` cell can take.
    pub t_max: i64,
    /// Smallest value any `U`/`L` cell can take (gaps are symmetric,
    /// so the two tables share bounds).
    pub ul_min: i64,
    /// Largest value any `U`/`L` cell can take.
    pub ul_max: i64,
    /// Extra representable range the kernels need beyond the value
    /// bounds (sentinel arithmetic, bias shifts, saturation margin).
    pub headroom: i64,
}

impl ScoreBounds {
    /// Run the interval analysis for `cfg` on sequences of length at
    /// most `max_query` × `max_subject`.
    pub fn analyze(cfg: &AlignConfig, max_query: usize, max_subject: usize) -> Self {
        let (m, n) = (max_query as i64, max_subject as i64);
        let gamma_pos = cfg.matrix.max_score().max(1) as i64;
        let gamma_neg = cfg.matrix.min_score().abs() as i64;
        let theta = cfg.gap.theta().abs() as i64;
        let beta = cfg.gap.beta().abs() as i64;

        // Upper bound: a path has at most min(m, n) diagonal steps and
        // gaps only lose score. (+1 absorbs the empty-prefix cell.)
        let t_max = gamma_pos * (m.min(n) + 1);
        let t_min = match cfg.kind {
            // Eq. 2's `0` operand clamps local cells from below.
            AlignKind::Local => 0,
            AlignKind::Global | AlignKind::SemiGlobal => {
                // Worst path: ≤ m+n+2 steps, each losing the worst
                // per-step amount, plus one gap opening per direction.
                let step = gamma_neg.max(gamma_pos).max(beta);
                -((m + n + 2) * step + theta)
            }
        };
        // U/L = max(T + θ + β, self + β): one opening below T at worst,
        // and never above it (Eq. 3–4 only subtract).
        let ul_max = t_max;
        let ul_min = t_min - (theta + beta);
        // Sentinel + bias margin, both directions. The kernel's
        // saturation-detection margin is `|max matrix entry| + 1`
        // (striped/columns.rs) even when every entry is negative —
        // `gamma_pos` alone under-covers an all-negative matrix, so
        // the magnitude of the extreme entry participates too
        // (keeps `fits` at least as strict as the certify prover).
        let gamma_hr = (cfg.matrix.max_score().abs() as i64).max(gamma_pos);
        let headroom = 2 * (gamma_hr + theta + beta + 2);
        Self {
            t_min,
            t_max,
            ul_min,
            ul_max,
            headroom,
        }
    }

    /// Largest magnitude any kernel intermediate can reach, headroom
    /// included.
    pub fn magnitude(&self) -> i64 {
        self.t_max
            .abs()
            .max(self.t_min.abs())
            .max(self.ul_min.abs())
            .max(self.ul_max.abs())
            + self.headroom
    }

    /// Can a `bits`-wide signed element provably represent every
    /// intermediate value? For 8/16-bit elements the cap is the type's
    /// max; 32-bit kernels clamp at `i32::MAX / 4` (the `NEG_INF`
    /// sentinel convention), so even i32 can wrap for astronomically
    /// long inputs — that is the "reject outright" case.
    pub fn fits(&self, bits: u32) -> bool {
        let cap: i64 = match bits {
            8 => i8::MAX as i64,
            16 => i16::MAX as i64,
            32 => (i32::MAX / 4) as i64,
            _ => return true,
        };
        // U/L overshoot below T is ≤ |θ| + |β|, which headroom
        // already double-covers; the T-range test is therefore the
        // same threshold the width policy has always used.
        self.t_max.abs().max(self.t_min.abs()) + self.headroom < cap
    }

    /// Smallest lane width (8, 16 or 32 bits) that provably holds
    /// every intermediate, or `None` when even i32 would wrap — such
    /// a configuration must be rejected, not run.
    pub fn min_lane_bits(&self) -> Option<u32> {
        [8u32, 16, 32].into_iter().find(|&b| self.fits(b))
    }

    /// Bias constant for unsigned-arithmetic lanes: shifting every
    /// value up by this much makes the whole interval non-negative.
    pub fn bias(&self) -> i64 {
        (-self.t_min.min(self.ul_min)).max(0)
    }

    /// Saturation ceiling for a `bits`-wide lane: scores at or above
    /// this trigger the retry-wider path.
    pub fn saturation_ceiling(&self, bits: u32) -> i64 {
        let cap: i64 = match bits {
            8 => i8::MAX as i64,
            16 => i16::MAX as i64,
            _ => (i32::MAX / 4) as i64,
        };
        cap - self.headroom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalign_bio::matrices::BLOSUM62;

    #[test]
    fn table2_affine_matches_paper_alg1() {
        // Alg. 1 uses GAP_OPEN (= θ+β) from T cells and GAP_EXT (= β)
        // from L/U cells.
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let t2 = cfg.table2();
        assert_eq!(t2.gap_left, -12);
        assert_eq!(t2.gap_left_ext, -2);
        assert_eq!(t2.gap_up, -12);
        assert_eq!(t2.gap_up_ext, -2);
        assert!(t2.local);
        assert!(t2.affine);
    }

    #[test]
    fn table2_linear_sets_theta_zero() {
        let cfg = AlignConfig::global(GapModel::linear(-3), &BLOSUM62);
        let t2 = cfg.table2();
        assert_eq!(t2.gap_left, -3);
        assert_eq!(t2.gap_left_ext, -3);
        assert!(!t2.affine);
        assert!(!t2.local);
    }

    #[test]
    fn local_boundaries_are_zero() {
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let t2 = cfg.table2();
        for i in 0..5 {
            assert_eq!(t2.init_t(i), 0);
            assert_eq!(t2.init_col(i), 0);
        }
    }

    #[test]
    fn global_boundaries_are_gap_ramps() {
        let cfg = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let t2 = cfg.table2();
        assert_eq!(t2.init_t(0), 0);
        assert_eq!(t2.init_t(1), -12); // one subject char vs nothing
        assert_eq!(t2.init_t(2), -14);
        assert_eq!(t2.init_col(0), -12); // one query char vs nothing
        assert_eq!(t2.init_col(1), -14);
    }

    #[test]
    fn gap_score_totals() {
        let aff = GapModel::affine(-10, -2);
        assert_eq!(aff.gap_score(1), -12);
        assert_eq!(aff.gap_score(5), -20);
        let lin = GapModel::linear(-4);
        assert_eq!(lin.gap_score(3), -12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn zero_extension_rejected() {
        let _ = GapModel::linear(0);
    }

    #[test]
    #[should_panic(expected = "≤ 0")]
    fn positive_open_rejected() {
        let _ = GapModel::affine(1, -2);
    }

    #[test]
    fn score_bound_dominates_reality() {
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        // A perfect 100-long W match scores 1100 < bound.
        assert!(cfg.score_bound(100, 100) >= 1100);
    }

    #[test]
    fn headroom_covers_kernel_detection_margin() {
        // The striped kernels reserve `|max matrix entry| + 1` of
        // detection margin (columns.rs). `headroom` must dominate it
        // for every matrix shape, or `fits` could approve a width the
        // kernel immediately rescues out of.
        use aalign_bio::{alphabet::DNA, SubstMatrix};
        let cases = [
            ("all-max", SubstMatrix::new("all-max", &DNA, vec![11; 25])),
            ("all-neg", SubstMatrix::new("all-neg", &DNA, vec![-127; 25])),
            ("dna", SubstMatrix::dna(2, -3)),
            ("blosum62", BLOSUM62.clone()),
        ];
        let gaps = [
            GapModel::affine(-10, -2),
            GapModel::affine(0, -1), // θ-boundary: zero-open affine
            GapModel::linear(-1),    // minimal extension
        ];
        for (name, matrix) in &cases {
            for gap in gaps {
                let cfg = AlignConfig::local(gap, matrix);
                let t2 = cfg.table2();
                let kernel_margin = (matrix.max_score().abs())
                    .max(t2.gap_up.abs())
                    .max(t2.gap_left.abs()) as i64
                    + 1;
                let b = cfg.score_bounds(64, 64);
                assert!(
                    b.headroom >= kernel_margin,
                    "{name}/{gap:?}: headroom {} < kernel margin {kernel_margin}",
                    b.headroom
                );
            }
        }
    }

    #[test]
    fn all_negative_matrix_does_not_fit_i8() {
        // Regression for the historic `fits`/prover divergence: with
        // entries of −127 the i8 detection threshold is negative, so
        // rescue fires on every local input — `fits(8)` must say no.
        use aalign_bio::{alphabet::DNA, SubstMatrix};
        let m = SubstMatrix::new("all-neg", &DNA, vec![-127; 25]);
        let cfg = AlignConfig::local(GapModel::linear(-1), &m);
        let b = cfg.score_bounds(10, 10);
        assert!(!b.fits(8));
        assert!(b.fits(16));
        assert_eq!(b.min_lane_bits(), Some(16));
    }

    #[test]
    fn theta_boundary_affine_fits_like_linear() {
        // affine(0, β) and linear(β) derive identical Table II
        // constants, so their bounds and width verdicts must agree.
        let a = AlignConfig::local(GapModel::affine(0, -2), &BLOSUM62);
        let l = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let (ba, bl) = (a.score_bounds(100, 100), l.score_bounds(100, 100));
        assert_eq!(ba, bl);
        assert_eq!(a.table2().gap_up, l.table2().gap_up);
    }

    #[test]
    fn labels() {
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        assert_eq!(cfg.label(), "sw-aff");
        let cfg = AlignConfig::global(GapModel::linear(-2), &BLOSUM62);
        assert_eq!(cfg.label(), "nw-lin");
    }
}
