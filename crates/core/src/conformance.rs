//! Bounded-exhaustive differential verification of the vector kernels
//! (the **conformance harness**; `conformance` cargo feature).
//!
//! The rest of the crate trusts the striped/banded/inter/traceback
//! kernels on property tests over random pairs. This module removes
//! the randomness: it enumerates **every** query/subject pair up to a
//! length bound over a tiny alphabet — in the spirit of loom's
//! bounded-exhaustive schedule exploration — and checks every kernel
//! variant **bit-exactly** against [`paradigm_dp`], the executable
//! Eq. (3–6) ground truth. Because the pair space is enumerated
//! completely, a kernel that diverges from the paradigm on *any*
//! input within the bound is caught deterministically, not
//! probabilistically.
//!
//! Three design rules keep the harness honest:
//!
//! 1. **Determinism.** Enumeration order is a pure function of the
//!    bounds (length-then-lexicographic); variant and config grids
//!    are fixed vectors. Two runs of [`run_harness`] with equal
//!    options produce identical reports (property-tested).
//! 2. **Report, don't panic.** Divergences come back as
//!    [`Mismatch`] records so the analyzer CLI can print them (and CI
//!    can upload them) instead of dying mid-enumeration.
//! 3. **Self-test with teeth.** [`Mutation`] perturbs exactly one
//!    max/gap term of the configuration handed to the kernels (the
//!    reference keeps the pristine one). A harness that cannot
//!    *catch* every such mutation is vacuous; the
//!    mutation-self-test in `tests/static_verification.rs` proves
//!    ours can.
//!
//! The harness also checks the **lazy-F sweep bound** the analyzer's
//! `lazy-f-bound` obligation derives symbolically: a striped-iterate
//! column's correction loop runs at most `LANES` whole-column sweeps,
//! so a run's total `lazy_sweeps` is bounded by
//! `iterate_columns × LANES`. Violations are reported like score
//! mismatches.

use aalign_bio::{Sequence, StripedProfile, SubstMatrix};
use aalign_vec::{EmuEngine, ScoreElem};

use crate::banded::banded_align_certified;
use crate::config::{AlignConfig, AlignKind, GapModel};
use crate::inter::{inter_align_batch, InterWorkspace};
use crate::paradigm::paradigm_dp;
use crate::striped::{hybrid_align, iterate_align, scan_align, HybridPolicy, Workspace};
use crate::traceback::traceback_align;

/// Enumeration bounds: all sequences over the first `alphabet_size`
/// letters of the matrix alphabet, of length `0..=max_len` (subjects)
/// and `1..=max_len` (queries — the kernels require a non-empty
/// query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumBounds {
    /// Letters used (≤ the alphabet size of the matrix; 2 keeps the
    /// pair count small while still distinguishing match/mismatch).
    pub alphabet_size: u8,
    /// Maximum sequence length `k`.
    pub max_len: usize,
}

impl EnumBounds {
    /// The CI-sized default: 2 letters × length ≤ 3 → 14 queries ×
    /// 15 subjects = 210 pairs per configuration.
    pub fn ci() -> Self {
        Self {
            alphabet_size: 2,
            max_len: 3,
        }
    }

    /// Number of index vectors of length `0..=max_len` (resp.
    /// `1..=max_len` for queries).
    pub fn sequence_count(&self, include_empty: bool) -> usize {
        let a = self.alphabet_size as usize;
        let mut total = usize::from(include_empty);
        let mut pow = 1usize;
        for _ in 1..=self.max_len {
            pow *= a;
            total += pow;
        }
        total
    }
}

/// All index vectors over `alphabet_size` letters with length
/// `min_len..=max_len`, in **deterministic** order: by length
/// ascending, then lexicographically. This order is part of the
/// harness contract (the determinism proptests pin it), so reports
/// and baselines are reproducible across hosts.
pub fn enumerate_indices(alphabet_size: u8, min_len: usize, max_len: usize) -> Vec<Vec<u8>> {
    assert!(alphabet_size >= 1, "need at least one letter");
    let a = alphabet_size as usize;
    let mut out = Vec::new();
    for len in min_len..=max_len {
        // Decode 0..a^len as `len` base-`a` digits, most significant
        // first — counting up is lexicographic by construction.
        let count = a.pow(len as u32);
        for i in 0..count {
            let mut digits = vec![0u8; len];
            let mut x = i;
            for pos in (0..len).rev() {
                digits[pos] = (x % a) as u8;
                x /= a;
            }
            out.push(digits);
        }
    }
    out
}

/// Which striped strategy a [`Variant`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripedStrat {
    /// Alg. 2: lower-bound pass + lazy correction loop.
    Iterate,
    /// Alg. 3: tentative pass + weighted max-scan + correction.
    Scan,
    /// The runtime switcher (forced to switch often: threshold 1,
    /// probe stride 2, so tiny inputs still exercise both paths).
    Hybrid,
}

impl StripedStrat {
    fn name(self) -> &'static str {
        match self {
            StripedStrat::Iterate => "striped-iterate",
            StripedStrat::Scan => "striped-scan",
            StripedStrat::Hybrid => "striped-hybrid",
        }
    }
}

/// One kernel shape under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// A striped kernel at a concrete element width × lane count
    /// (run on [`EmuEngine`], the semantics oracle every hardware
    /// backend is property-tested against).
    Striped {
        /// Which strategy.
        strat: StripedStrat,
        /// Element bits: 8, 16 or 32.
        bits: u8,
        /// Lane count (2 forces multi-segment stripes even at tiny
        /// query lengths, which is where the lazy loop earns its keep).
        lanes: u8,
    },
    /// Inter-sequence kernel (one lane per subject) at a width.
    Inter {
        /// Element bits.
        bits: u8,
    },
    /// Certified banded alignment (provably exact band width).
    Banded,
    /// Scalar traceback: the reconstructed path's score.
    Traceback,
}

impl Variant {
    /// Stable display name, e.g. `striped-iterate/i16x4`.
    pub fn name(&self) -> String {
        match self {
            Variant::Striped { strat, bits, lanes } => {
                format!("{}/i{bits}x{lanes}", strat.name())
            }
            Variant::Inter { bits } => format!("inter/i{bits}x{INTER_LANES}"),
            Variant::Banded => "banded-certified".to_string(),
            Variant::Traceback => "traceback".to_string(),
        }
    }
}

const INTER_LANES: usize = 4;

/// The fixed variant grid: every striped strategy × the width/lane
/// shapes {i8×2, i16×2, i16×4, i32×4}, the inter kernel at i16 and
/// i32, certified banded, and traceback. Order is deterministic and
/// pinned by `conformance_baseline.txt`.
pub fn all_variants() -> Vec<Variant> {
    let mut v = Vec::new();
    for strat in [
        StripedStrat::Iterate,
        StripedStrat::Scan,
        StripedStrat::Hybrid,
    ] {
        for (bits, lanes) in [(8u8, 2u8), (16, 2), (16, 4), (32, 4)] {
            v.push(Variant::Striped { strat, bits, lanes });
        }
    }
    v.push(Variant::Inter { bits: 16 });
    v.push(Variant::Inter { bits: 32 });
    v.push(Variant::Banded);
    v.push(Variant::Traceback);
    v
}

/// A single-term perturbation of the configuration handed to the
/// kernels under test (the scalar reference keeps the pristine
/// configuration). Every variant is constructed to keep the mutated
/// configuration *valid* — the point is a wrong score, not a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// β ← β − 1 (the extension term of every `GAP_*_EXT` constant).
    GapExt,
    /// θ ← θ − 1 (linear configurations become affine(−1, β): the
    /// harness must notice the extra open term).
    GapOpen,
    /// γ(0,0) ← γ(0,0) + 1 (one diagonal max operand).
    MatchScore,
    /// γ(0,1) ← γ(0,1) − 1 (one off-diagonal max operand).
    MismatchScore,
}

impl Mutation {
    /// All mutations, in seed order.
    pub const ALL: [Mutation; 4] = [
        Mutation::GapExt,
        Mutation::GapOpen,
        Mutation::MatchScore,
        Mutation::MismatchScore,
    ];

    /// Pick a mutation from a seed (splitmix64 over the seed, so
    /// nearby seeds still select different variants).
    pub fn from_seed(seed: u64) -> Mutation {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::ALL[(z % Self::ALL.len() as u64) as usize]
    }

    /// Stable display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::GapExt => "gap-ext-minus-1",
            Mutation::GapOpen => "gap-open-minus-1",
            Mutation::MatchScore => "match-score-plus-1",
            Mutation::MismatchScore => "mismatch-score-minus-1",
        }
    }

    /// Apply the perturbation, producing the configuration the
    /// kernels (and only the kernels) will run.
    pub fn apply(&self, cfg: &AlignConfig) -> AlignConfig {
        match self {
            Mutation::GapExt => {
                let gap = match cfg.gap {
                    GapModel::Linear { ext } => GapModel::linear(ext - 1),
                    GapModel::Affine { open, ext } => GapModel::affine(open, ext - 1),
                };
                AlignConfig::new(cfg.kind, gap, &cfg.matrix)
            }
            Mutation::GapOpen => {
                let gap = match cfg.gap {
                    GapModel::Linear { ext } => GapModel::affine(-1, ext),
                    GapModel::Affine { open, ext } => GapModel::affine(open - 1, ext),
                };
                AlignConfig::new(cfg.kind, gap, &cfg.matrix)
            }
            Mutation::MatchScore => perturb_matrix(cfg, 0, 0, 1),
            Mutation::MismatchScore => perturb_matrix(cfg, 0, 1, -1),
        }
    }
}

fn perturb_matrix(cfg: &AlignConfig, a: u8, b: u8, delta: i32) -> AlignConfig {
    let n = cfg.matrix.size();
    assert!(
        (a as usize) < n && (b as usize) < n,
        "mutation outside matrix"
    );
    let mut scores = Vec::with_capacity(n * n);
    for row in 0..n as u8 {
        scores.extend_from_slice(cfg.matrix.row(row));
    }
    scores[a as usize * n + b as usize] += delta;
    let mutated = SubstMatrix::new(
        format!("{}-mut", cfg.matrix.name()),
        cfg.matrix.alphabet(),
        scores,
    );
    AlignConfig::new(cfg.kind, cfg.gap, &mutated)
}

/// One bit-exactness failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Kernel variant that diverged.
    pub variant: String,
    /// Configuration label (`sw-aff`, …).
    pub config: String,
    /// Query indices.
    pub query: Vec<u8>,
    /// Subject indices.
    pub subject: Vec<u8>,
    /// Kernel score.
    pub got: i32,
    /// `paradigm_dp` score.
    pub want: i32,
}

impl core::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} {} q={:?} s={:?}: got {}, want {}",
            self.config, self.variant, self.query, self.subject, self.got, self.want
        )
    }
}

/// Per-variant counters for one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantStat {
    /// Variant display name.
    pub variant: String,
    /// Score comparisons performed.
    pub checks: u64,
    /// Narrow runs excluded because the kernel reported saturation
    /// (the rescue-ladder premise: such scores are *retried wider*,
    /// never trusted — a wider variant in the grid re-checks the same
    /// pair).
    pub skipped_saturated: u64,
}

/// Differential result for one configuration over the full pair
/// enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigReport {
    /// Configuration label (`sw-aff`, …).
    pub config: String,
    /// Query × subject pairs enumerated.
    pub pairs: usize,
    /// Per-variant counters (same order as [`all_variants`]).
    pub stats: Vec<VariantStat>,
    /// Score divergences (capped at [`MISMATCH_CAP`] records;
    /// `mismatch_count` has the true total).
    pub mismatches: Vec<Mismatch>,
    /// Total divergences found (may exceed `mismatches.len()`).
    pub mismatch_count: u64,
    /// Structural violations (lazy-sweep bound, i32 saturation):
    /// failures of *derived invariants* rather than score equality.
    pub violations: Vec<String>,
}

/// Keep at most this many [`Mismatch`] records per configuration.
pub const MISMATCH_CAP: usize = 8;

/// Full harness outcome across the configuration grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// One report per configuration, grid order.
    pub configs: Vec<ConfigReport>,
    /// The mutation applied to the kernel side, if any.
    pub mutation: Option<String>,
}

impl ConformanceReport {
    /// True when every kernel matched `paradigm_dp` bit-exactly and
    /// no derived invariant was violated.
    pub fn is_bit_exact(&self) -> bool {
        self.configs
            .iter()
            .all(|c| c.mismatch_count == 0 && c.violations.is_empty())
    }

    /// Total score comparisons across the whole run.
    pub fn total_checks(&self) -> u64 {
        self.configs
            .iter()
            .flat_map(|c| c.stats.iter())
            .map(|s| s.checks)
            .sum()
    }

    /// Total divergences across the whole run.
    pub fn total_mismatches(&self) -> u64 {
        self.configs.iter().map(|c| c.mismatch_count).sum()
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "conformance harness: {} configs × {} pairs, {} checks, {} mismatches{}",
            self.configs.len(),
            self.configs.first().map_or(0, |c| c.pairs),
            self.total_checks(),
            self.total_mismatches(),
            self.mutation
                .as_deref()
                .map(|m| format!(" (mutation: {m})"))
                .unwrap_or_default(),
        )
    }
}

/// Harness options: enumeration bounds × the configuration grid.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Enumeration bounds.
    pub bounds: EnumBounds,
    /// Alignment kinds to grid over.
    pub kinds: Vec<AlignKind>,
    /// Gap systems to grid over.
    pub gaps: Vec<GapModel>,
    /// Substitution scores for the tiny-alphabet matrix
    /// (`SubstMatrix::dna(match, mismatch)`).
    pub match_score: i32,
    /// Mismatch score.
    pub mismatch_score: i32,
    /// Optional kernel-side perturbation (mutation self-test).
    pub mutation: Option<Mutation>,
}

impl HarnessOptions {
    /// The CI grid: {sw, nw, sg} × {lin(−2), aff(−3, −1)} over
    /// DNA(+2/−3), bounds [`EnumBounds::ci`].
    pub fn ci() -> Self {
        Self {
            bounds: EnumBounds::ci(),
            kinds: vec![AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal],
            gaps: vec![GapModel::linear(-2), GapModel::affine(-3, -1)],
            match_score: 2,
            mismatch_score: -3,
            mutation: None,
        }
    }
}

/// Run the harness over the full configuration grid.
pub fn run_harness(opts: &HarnessOptions) -> ConformanceReport {
    let matrix = SubstMatrix::dna(opts.match_score, opts.mismatch_score);
    let mut configs = Vec::new();
    for &kind in &opts.kinds {
        for &gap in &opts.gaps {
            let cfg = AlignConfig::new(kind, gap, &matrix);
            configs.push(run_config(&cfg, &opts.bounds, opts.mutation));
        }
    }
    ConformanceReport {
        configs,
        mutation: opts.mutation.map(|m| m.name().to_string()),
    }
}

/// Run every variant for **one** configuration over the enumeration.
/// This is the entry point the analyzer uses for codegen-extracted
/// configurations ([`spec_to_config`] output): "verify, then
/// generate".
///
/// [`spec_to_config`]: https://docs.rs/aalign-codegen
pub fn run_config(
    cfg: &AlignConfig,
    bounds: &EnumBounds,
    mutation: Option<Mutation>,
) -> ConfigReport {
    let alphabet = cfg.matrix.alphabet();
    assert!(
        (bounds.alphabet_size as usize) <= alphabet.len(),
        "enumeration alphabet larger than the matrix alphabet"
    );
    let kernel_cfg = mutation.map_or_else(|| cfg.clone(), |m| m.apply(cfg));

    let queries: Vec<Sequence> = enumerate_indices(bounds.alphabet_size, 1, bounds.max_len)
        .into_iter()
        .enumerate()
        .map(|(i, idx)| Sequence::from_indices(format!("q{i}"), alphabet, idx))
        .collect();
    let subjects: Vec<Sequence> = enumerate_indices(bounds.alphabet_size, 0, bounds.max_len)
        .into_iter()
        .enumerate()
        .map(|(i, idx)| Sequence::from_indices(format!("s{i}"), alphabet, idx))
        .collect();

    // Reference scores, once per pair (query-major).
    let want: Vec<Vec<i32>> = queries
        .iter()
        .map(|q| {
            subjects
                .iter()
                .map(|s| paradigm_dp(cfg, q, s).score)
                .collect()
        })
        .collect();

    let mut report = ConfigReport {
        config: cfg.label(),
        pairs: queries.len() * subjects.len(),
        stats: Vec::new(),
        mismatches: Vec::new(),
        mismatch_count: 0,
        violations: Vec::new(),
    };

    for variant in all_variants() {
        let mut stat = VariantStat {
            variant: variant.name(),
            checks: 0,
            skipped_saturated: 0,
        };
        match variant {
            Variant::Striped { strat, bits, lanes } => {
                run_striped_variant(
                    &kernel_cfg,
                    &queries,
                    &subjects,
                    &want,
                    strat,
                    bits,
                    lanes,
                    &mut stat,
                    &mut report,
                );
            }
            Variant::Inter { bits } => {
                run_inter_variant(
                    &kernel_cfg,
                    &queries,
                    &subjects,
                    &want,
                    bits,
                    &mut stat,
                    &mut report,
                );
            }
            Variant::Banded => {
                for (qi, q) in queries.iter().enumerate() {
                    for (si, s) in subjects.iter().enumerate() {
                        let got = banded_align_certified(&kernel_cfg, q, s, 1).score;
                        stat.checks += 1;
                        record(&mut report, &variant.name(), q, s, got, want[qi][si]);
                    }
                }
            }
            Variant::Traceback => {
                for (qi, q) in queries.iter().enumerate() {
                    for (si, s) in subjects.iter().enumerate() {
                        let got = traceback_align(&kernel_cfg, q, s).score;
                        stat.checks += 1;
                        record(&mut report, &variant.name(), q, s, got, want[qi][si]);
                    }
                }
            }
        }
        report.stats.push(stat);
    }
    report
}

fn record(
    report: &mut ConfigReport,
    variant: &str,
    q: &Sequence,
    s: &Sequence,
    got: i32,
    want: i32,
) {
    if got != want {
        report.mismatch_count += 1;
        if report.mismatches.len() < MISMATCH_CAP {
            report.mismatches.push(Mismatch {
                variant: variant.to_string(),
                config: report.config.clone(),
                query: q.indices().to_vec(),
                subject: s.indices().to_vec(),
                got,
                want,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_striped_variant(
    kernel_cfg: &AlignConfig,
    queries: &[Sequence],
    subjects: &[Sequence],
    want: &[Vec<i32>],
    strat: StripedStrat,
    bits: u8,
    lanes: u8,
    stat: &mut VariantStat,
    report: &mut ConfigReport,
) {
    match (bits, lanes) {
        (8, 2) => striped_elem::<i8, 2>(kernel_cfg, queries, subjects, want, strat, stat, report),
        (16, 2) => striped_elem::<i16, 2>(kernel_cfg, queries, subjects, want, strat, stat, report),
        (16, 4) => striped_elem::<i16, 4>(kernel_cfg, queries, subjects, want, strat, stat, report),
        (32, 4) => striped_elem::<i32, 4>(kernel_cfg, queries, subjects, want, strat, stat, report),
        other => unreachable!("unsupported striped shape {other:?}"),
    }
}

fn striped_elem<T: ScoreElem, const LANES: usize>(
    kernel_cfg: &AlignConfig,
    queries: &[Sequence],
    subjects: &[Sequence],
    want: &[Vec<i32>],
    strat: StripedStrat,
    stat: &mut VariantStat,
    report: &mut ConfigReport,
) {
    let t2 = kernel_cfg.table2();
    let variant = Variant::Striped {
        strat,
        bits: T::BITS as u8,
        lanes: LANES as u8,
    }
    .name();
    let eng = EmuEngine::<T, LANES>::new();
    // Aggressive switching so the hybrid exercises both strategies
    // even on length-3 subjects.
    let policy = HybridPolicy {
        threshold: 1,
        probe_stride: 2,
    };
    let mut ws = Workspace::new();
    for (qi, q) in queries.iter().enumerate() {
        let prof = StripedProfile::<T>::build(q, &kernel_cfg.matrix, LANES);
        for (si, s) in subjects.iter().enumerate() {
            let res = match strat {
                StripedStrat::Iterate => run_iterate::<T, LANES>(
                    eng,
                    &prof,
                    s.indices(),
                    t2,
                    &mut ws,
                    t2.local,
                    t2.affine,
                ),
                StripedStrat::Scan => {
                    run_scan::<T, LANES>(eng, &prof, s.indices(), t2, &mut ws, t2.local, t2.affine)
                }
                StripedStrat::Hybrid => run_hybrid::<T, LANES>(
                    eng,
                    &prof,
                    s.indices(),
                    t2,
                    policy,
                    &mut ws,
                    t2.local,
                    t2.affine,
                ),
            };
            // Lazy-F sweep bound (the analyzer's derived ≤ P): each
            // iterate column corrects in at most LANES sweeps.
            let sweep_cap = res.iterate_columns as u64 * LANES as u64;
            if res.lazy_sweeps > sweep_cap {
                report.violations.push(format!(
                    "{variant} q={:?} s={:?}: {} lazy sweeps exceed the ≤ P bound ({} iterate \
                     columns × {} lanes = {sweep_cap})",
                    q.indices(),
                    s.indices(),
                    res.lazy_sweeps,
                    res.iterate_columns,
                    LANES,
                ));
            }
            if res.saturated {
                if T::BITS == 32 {
                    report.violations.push(format!(
                        "{variant} q={:?} s={:?}: i32 lanes reported saturation at \
                         conformance bounds",
                        q.indices(),
                        s.indices(),
                    ));
                }
                // Rescue-ladder premise: a saturated narrow score is
                // retried wider, never trusted — the wider shapes in
                // the grid re-check this pair.
                stat.skipped_saturated += 1;
                continue;
            }
            stat.checks += 1;
            record(report, &variant, q, s, res.score, want[qi][si]);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_iterate<T: ScoreElem, const LANES: usize>(
    eng: EmuEngine<T, LANES>,
    prof: &StripedProfile<T>,
    subject: &[u8],
    t2: crate::config::TableII,
    ws: &mut Workspace<T>,
    local: bool,
    affine: bool,
) -> crate::striped::KernelResult {
    match (local, affine) {
        (true, true) => iterate_align::<_, true, true>(eng, prof, subject, t2, ws),
        (true, false) => iterate_align::<_, true, false>(eng, prof, subject, t2, ws),
        (false, true) => iterate_align::<_, false, true>(eng, prof, subject, t2, ws),
        (false, false) => iterate_align::<_, false, false>(eng, prof, subject, t2, ws),
    }
}

fn run_scan<T: ScoreElem, const LANES: usize>(
    eng: EmuEngine<T, LANES>,
    prof: &StripedProfile<T>,
    subject: &[u8],
    t2: crate::config::TableII,
    ws: &mut Workspace<T>,
    local: bool,
    affine: bool,
) -> crate::striped::KernelResult {
    match (local, affine) {
        (true, true) => scan_align::<_, true, true>(eng, prof, subject, t2, ws),
        (true, false) => scan_align::<_, true, false>(eng, prof, subject, t2, ws),
        (false, true) => scan_align::<_, false, true>(eng, prof, subject, t2, ws),
        (false, false) => scan_align::<_, false, false>(eng, prof, subject, t2, ws),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_hybrid<T: ScoreElem, const LANES: usize>(
    eng: EmuEngine<T, LANES>,
    prof: &StripedProfile<T>,
    subject: &[u8],
    t2: crate::config::TableII,
    policy: HybridPolicy,
    ws: &mut Workspace<T>,
    local: bool,
    affine: bool,
) -> crate::striped::KernelResult {
    let rep = match (local, affine) {
        (true, true) => hybrid_align::<_, true, true>(eng, prof, subject, t2, policy, ws, false),
        (true, false) => hybrid_align::<_, true, false>(eng, prof, subject, t2, policy, ws, false),
        (false, true) => hybrid_align::<_, false, true>(eng, prof, subject, t2, policy, ws, false),
        (false, false) => {
            hybrid_align::<_, false, false>(eng, prof, subject, t2, policy, ws, false)
        }
    };
    rep.result
}

fn run_inter_variant(
    kernel_cfg: &AlignConfig,
    queries: &[Sequence],
    subjects: &[Sequence],
    want: &[Vec<i32>],
    bits: u8,
    stat: &mut VariantStat,
    report: &mut ConfigReport,
) {
    match bits {
        16 => inter_elem::<i16>(kernel_cfg, queries, subjects, want, stat, report),
        32 => inter_elem::<i32>(kernel_cfg, queries, subjects, want, stat, report),
        other => unreachable!("unsupported inter width i{other}"),
    }
}

fn inter_elem<T: ScoreElem>(
    kernel_cfg: &AlignConfig,
    queries: &[Sequence],
    subjects: &[Sequence],
    want: &[Vec<i32>],
    stat: &mut VariantStat,
    report: &mut ConfigReport,
) {
    let t2 = kernel_cfg.table2();
    let variant = Variant::Inter {
        bits: T::BITS as u8,
    }
    .name();
    let eng = EmuEngine::<T, INTER_LANES>::new();
    let mut ws = InterWorkspace::new();
    for (qi, q) in queries.iter().enumerate() {
        for (chunk_start, chunk) in subjects.chunks(INTER_LANES).enumerate() {
            let refs: Vec<&Sequence> = chunk.iter().collect();
            let batch = inter_align_batch(eng, t2, &kernel_cfg.matrix, q, &refs, &mut ws);
            for (lane, &got) in batch.scores.iter().enumerate() {
                let si = chunk_start * INTER_LANES + lane;
                if batch.saturated[lane] {
                    stat.skipped_saturated += 1;
                    continue;
                }
                stat.checks += 1;
                record(report, &variant, q, &subjects[si], got, want[qi][si]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_complete_and_ordered() {
        let seqs = enumerate_indices(2, 0, 3);
        assert_eq!(seqs.len(), 1 + 2 + 4 + 8);
        // Deterministic: by length, then lexicographic.
        for w in seqs.windows(2) {
            let key = |v: &Vec<u8>| (v.len(), v.clone());
            assert!(key(&w[0]) < key(&w[1]), "{w:?} out of order");
        }
        // Completeness at length 2 over 2 letters.
        let len2: Vec<Vec<u8>> = seqs.iter().filter(|v| v.len() == 2).cloned().collect();
        assert_eq!(len2, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn sequence_count_matches_enumeration() {
        let b = EnumBounds {
            alphabet_size: 3,
            max_len: 2,
        };
        assert_eq!(b.sequence_count(true), enumerate_indices(3, 0, 2).len());
        assert_eq!(b.sequence_count(false), enumerate_indices(3, 1, 2).len());
    }

    #[test]
    fn ci_harness_is_bit_exact() {
        let report = run_harness(&HarnessOptions::ci());
        assert!(
            report.is_bit_exact(),
            "mismatches: {:?}\nviolations: {:?}",
            report
                .configs
                .iter()
                .flat_map(|c| c.mismatches.iter())
                .collect::<Vec<_>>(),
            report
                .configs
                .iter()
                .flat_map(|c| c.violations.iter())
                .collect::<Vec<_>>(),
        );
        assert_eq!(report.configs.len(), 6, "3 kinds × 2 gap systems");
        assert!(report.total_checks() > 0);
    }

    #[test]
    fn every_mutation_is_caught() {
        for m in Mutation::ALL {
            let mut opts = HarnessOptions::ci();
            opts.mutation = Some(m);
            let report = run_harness(&opts);
            assert!(
                report.total_mismatches() > 0,
                "mutation {} slipped through the harness",
                m.name()
            );
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let a = run_harness(&HarnessOptions::ci());
        let b = run_harness(&HarnessOptions::ci());
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_seed_selection_is_total() {
        for seed in 0..32 {
            let _ = Mutation::from_seed(seed); // no panic, any seed maps
        }
    }
}
