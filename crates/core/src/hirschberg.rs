//! Hirschberg linear-space alignment (extension).
//!
//! [`crate::traceback`] reconstructs paths from full `O(m·n)`
//! matrices — fine for re-aligning database hits, prohibitive for two
//! chromosome-scale sequences. Hirschberg's divide-and-conquer
//! (CACM 1975) produces the same optimal **global, linear-gap**
//! alignment in `O(m+n)` space: compute the last DP row of the left
//! half forwards and of the right half backwards, join at the best
//! split point, recurse.
//!
//! Scope: global alignment with linear gaps (the classic algorithm).
//! The affine extension (Myers–Miller) needs gap-state bookkeeping at
//! every join and is left out; for affine paths use
//! [`crate::traceback`] (full matrices) or band the problem first
//! ([`crate::banded`]).

use aalign_bio::Sequence;

use crate::config::{AlignConfig, AlignKind, GapModel};
use crate::traceback::{traceback_align, Alignment};

/// Linear-space optimal global alignment with linear gaps.
///
/// Produces an [`Alignment`] identical in score (and equivalent in
/// path quality) to [`traceback_align`], using `O(m+n)` working
/// memory for the scoring phase.
///
/// ```
/// use aalign_core::{hirschberg_align, AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let s = Sequence::protein("s", b"HEAGAWGHE").unwrap();
/// let cfg = AlignConfig::global(GapModel::linear(-4), &BLOSUM62);
/// let aln = hirschberg_align(&cfg, &q, &s);
/// assert_eq!(aln.score, 57 - 4); // nine matches minus one gap column
/// ```
///
/// # Panics
/// Panics unless `cfg` is global with a linear gap model, or if the
/// query is empty.
pub fn hirschberg_align(cfg: &AlignConfig, query: &Sequence, subject: &Sequence) -> Alignment {
    assert_eq!(
        cfg.kind,
        AlignKind::Global,
        "hirschberg_align is global-only"
    );
    assert!(
        matches!(cfg.gap, GapModel::Linear { .. }),
        "hirschberg_align requires linear gaps (use traceback_align for affine)"
    );
    assert!(!query.is_empty(), "query must be non-empty");

    let ext = cfg.gap.beta();
    let q = query.indices();
    let s = subject.indices();
    let alpha = query.alphabet();

    let mut qr: Vec<u8> = Vec::with_capacity(q.len() + s.len());
    let mut sr: Vec<u8> = Vec::with_capacity(q.len() + s.len());
    rec(cfg, q, s, ext, &mut qr, &mut sr);

    // Marker row + identity from the assembled rows.
    let mut mk = Vec::with_capacity(qr.len());
    let mut matches = 0usize;
    for (&qc, &sc) in qr.iter().zip(&sr) {
        if qc == b'-' || sc == b'-' {
            mk.push(b' ');
        } else if qc == sc {
            mk.push(b'|');
            matches += 1;
        } else if cfg
            .matrix
            .score(alpha.ctoi(sc).unwrap(), alpha.ctoi(qc).unwrap())
            > 0
        {
            mk.push(b'+');
        } else {
            mk.push(b' ');
        }
    }

    // Re-score the assembled path (cheap, and the score every test
    // compares against the DP).
    let mut score = 0i32;
    for (&qc, &sc) in qr.iter().zip(&sr) {
        score += if qc == b'-' || sc == b'-' {
            ext
        } else {
            cfg.matrix
                .score(alpha.ctoi(sc).unwrap(), alpha.ctoi(qc).unwrap())
        };
    }

    let cols = qr.len().max(1);
    Alignment {
        score,
        identity: matches as f64 / cols as f64,
        query_row: qr,
        subject_row: sr,
        marker_row: mk,
        query_span: (0, q.len()),
        subject_span: (0, s.len()),
    }
}

/// Recursive worker: append the alignment of `q` vs `s` to the rows.
fn rec(cfg: &AlignConfig, q: &[u8], s: &[u8], ext: i32, qr: &mut Vec<u8>, sr: &mut Vec<u8>) {
    let alpha = cfg.matrix.alphabet();
    if q.is_empty() {
        for &c in s {
            qr.push(b'-');
            sr.push(alpha.itoc(c));
        }
        return;
    }
    if s.is_empty() {
        for &c in q {
            qr.push(alpha.itoc(c));
            sr.push(b'-');
        }
        return;
    }
    if q.len() == 1 || s.len() == 1 {
        // Base case: full DP on a 1×n or m×1 strip is already linear
        // space; reuse the standard traceback.
        let sub_q = Sequence::from_indices("hq", alpha, q.to_vec());
        let sub_s = Sequence::from_indices("hs", alpha, s.to_vec());
        let aln = traceback_align(cfg, &sub_q, &sub_s);
        qr.extend_from_slice(&aln.query_row);
        sr.extend_from_slice(&aln.subject_row);
        return;
    }

    // Split the query; find the best subject split point.
    let mid = q.len() / 2;
    let left = last_row(cfg, &q[..mid], s, ext, false);
    let right = last_row(cfg, &q[mid..], s, ext, true);
    let n = s.len();
    let mut best_j = 0usize;
    let mut best = i32::MIN;
    for j in 0..=n {
        let v = left[j].saturating_add(right[n - j]);
        if v > best {
            best = v;
            best_j = j;
        }
    }
    rec(cfg, &q[..mid], &s[..best_j], ext, qr, sr);
    rec(cfg, &q[mid..], &s[best_j..], ext, qr, sr);
}

/// Last row of the global linear-gap DP of `q` against every prefix
/// of `s` (suffixes of both when `reversed`). `O(|s|)` space.
fn last_row(cfg: &AlignConfig, q: &[u8], s: &[u8], ext: i32, reversed: bool) -> Vec<i32> {
    let n = s.len();
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * ext).collect();
    let mut cur = vec![0i32; n + 1];
    let q_iter: Box<dyn Iterator<Item = &u8>> = if reversed {
        Box::new(q.iter().rev())
    } else {
        Box::new(q.iter())
    };
    for (i, &qc) in q_iter.enumerate() {
        cur[0] = (i as i32 + 1) * ext;
        let row = cfg.matrix.row(qc);
        for j in 1..=n {
            let sc = if reversed { s[n - j] } else { s[j - 1] };
            let d = prev[j - 1] + row[sc as usize];
            let up = prev[j] + ext;
            let lf = cur[j - 1] + ext;
            cur[j] = d.max(up).max(lf);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};

    fn cfg(ext: i32) -> AlignConfig {
        AlignConfig::global(GapModel::linear(ext), &BLOSUM62)
    }

    #[test]
    fn matches_full_dp_scores() {
        let mut rng = seeded_rng(1111);
        for trial in 0..8 {
            let q = named_query(&mut rng, 10 + trial * 13);
            let s = named_query(&mut rng, 8 + trial * 17);
            for ext in [-1, -3, -6] {
                let c = cfg(ext);
                let want = paradigm_dp(&c, &q, &s).score;
                let aln = hirschberg_align(&c, &q, &s);
                assert_eq!(aln.score, want, "trial {trial} ext {ext}");
            }
        }
    }

    #[test]
    fn rows_consume_both_sequences_fully() {
        let mut rng = seeded_rng(1112);
        let q = named_query(&mut rng, 90);
        let s = PairSpec::new(Level::Md, Level::Md)
            .generate(&mut rng, &q)
            .subject;
        let c = cfg(-4);
        let aln = hirschberg_align(&c, &q, &s);
        let q_res = aln.query_row.iter().filter(|&&c| c != b'-').count();
        let s_res = aln.subject_row.iter().filter(|&&c| c != b'-').count();
        assert_eq!(q_res, q.len());
        assert_eq!(s_res, s.len());
        assert_eq!(aln.query_row.len(), aln.subject_row.len());
        assert_eq!(aln.score, paradigm_dp(&c, &q, &s).score);
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let mut rng = seeded_rng(1113);
        let q = named_query(&mut rng, 64);
        let aln = hirschberg_align(&cfg(-2), &q, &q);
        assert!((aln.identity - 1.0).abs() < 1e-12);
        assert!(!aln.query_row.contains(&b'-'));
    }

    #[test]
    fn degenerate_shapes() {
        let mut rng = seeded_rng(1114);
        let q = named_query(&mut rng, 25);
        let one = named_query(&mut rng, 1);
        let empty = Sequence::from_indices("e", q.alphabet(), Vec::new());
        for (a, b) in [(&q, &one), (&one, &q), (&q, &empty)] {
            let c = cfg(-3);
            let aln = hirschberg_align(&c, a, b);
            assert_eq!(aln.score, paradigm_dp(&c, a, b).score);
        }
    }

    #[test]
    #[should_panic(expected = "linear gaps")]
    fn affine_rejected() {
        let q = Sequence::protein("q", b"HEAG").unwrap();
        let c = AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62);
        let _ = hirschberg_align(&c, &q, &q);
    }

    #[test]
    fn agrees_with_full_traceback_rescoring() {
        let mut rng = seeded_rng(1115);
        let q = named_query(&mut rng, 120);
        let s = named_query(&mut rng, 100);
        let c = cfg(-2);
        let full = traceback_align(&c, &q, &s);
        let lin = hirschberg_align(&c, &q, &s);
        assert_eq!(lin.score, full.score, "same optimum, different memory");
    }
}
