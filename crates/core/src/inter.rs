//! Inter-sequence vectorization (extension; paper Sec. VI-C).
//!
//! SWAPHI — the paper's MIC comparator — offers two vectorization
//! modes: *intra-sequence* (one alignment per vector, the striped
//! kernels of this crate) and *inter-sequence* (one **lane per
//! subject**, aligning a query against `LANES` subjects at once).
//! The paper benchmarks only the intra mode; this module implements
//! the inter mode as well. Its structural appeal: lanes are
//! independent alignments, so there are **no wavefront dependencies
//! to repair** — no lazy loop, no scan, no hybrid. Its structural
//! cost: a per-cell *gather* (each lane needs the matrix score of its
//! own subject character) plus idle lanes once short subjects finish.
//!
//! **Measured honestly** (`ablation_inter` bench): with 32-bit lanes
//! and the portable scalar gather used here, the gather dominates and
//! the intra-sequence hybrid is ~2× faster at every subject length on
//! the development host. Production inter-sequence tools (SWIPE,
//! SWAPHI's inter mode) win by pairing byte-wide lanes with
//! SIMD-shuffled score profiles — a further optimization this module
//! deliberately leaves on the table in favour of width-generic
//! clarity. The kernel remains valuable as a second, structurally
//! independent implementation (it cross-checks the striped kernels in
//! the test suite) and as the base for such an optimization.
//!
//! Works for all three [`AlignKind`]s and both gap systems, on any
//! [`SimdEngine`]; results are bit-identical to the scalar reference
//! per lane (property-tested).

use aalign_bio::{Sequence, SubstMatrix};
use aalign_vec::{ScoreElem, SimdEngine};

use crate::config::{AlignKind, TableII};

/// Reusable buffers for [`inter_align_batch`].
#[derive(Debug, Default)]
pub struct InterWorkspace<V, T = i32> {
    h: Vec<V>,
    e: Vec<V>,
    /// Per-column lane gather of substitution scores, query-major.
    scores: Vec<T>,
}

impl<V, T> InterWorkspace<V, T> {
    /// Fresh workspace.
    pub fn new() -> Self {
        Self {
            h: Vec::new(),
            e: Vec::new(),
            scores: Vec::new(),
        }
    }
}

/// One batch's outcome: widened scores plus per-lane saturation
/// flags (narrow element types only; i32 never saturates on
/// realistic inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterBatchResult {
    /// One score per subject, in input order, widened to i32.
    pub scores: Vec<i32>,
    /// True where the lane's score is too close to the element
    /// type's limits to be trusted (rerun that subject wider).
    pub saturated: Vec<bool>,
}

/// Align `query` against up to `E::LANES` subjects simultaneously,
/// one lane per subject, at any element width.
///
/// # Panics
/// Panics if `subjects.len() > E::LANES`, the query is empty, or any
/// sequence uses a different alphabet than `matrix`.
pub fn inter_align_batch<E: SimdEngine>(
    eng: E,
    t2: TableII,
    matrix: &SubstMatrix,
    query: &Sequence,
    subjects: &[&Sequence],
    ws: &mut InterWorkspace<E::Vec, E::Elem>,
) -> InterBatchResult {
    type T<E> = <E as SimdEngine>::Elem;
    let lanes = E::LANES;
    assert!(!query.is_empty(), "query must be non-empty");
    assert!(
        subjects.len() <= lanes,
        "batch of {} exceeds {lanes} lanes",
        subjects.len()
    );
    for s in subjects {
        assert!(
            core::ptr::eq(s.alphabet(), matrix.alphabet())
                && core::ptr::eq(query.alphabet(), matrix.alphabet()),
            "alphabet mismatch"
        );
    }
    let m = query.len();
    let q = query.indices();
    let n_max = subjects.iter().map(|s| s.len()).max().unwrap_or(0);
    let neg_inf = eng.splat(T::<E>::NEG_INF);

    // Column 0 boundary.
    ws.h.clear();
    ws.h.push(eng.splat(T::<E>::from_i32_sat(t2.init_t(0))));
    ws.h.extend((0..m).map(|j| eng.splat(T::<E>::from_i32_sat(t2.init_col(j)))));
    ws.e.clear();
    ws.e.resize(m + 1, neg_inf);
    ws.scores.resize(m * lanes, T::<E>::ZERO);

    let v_gl = eng.splat(T::<E>::from_i32_sat(t2.gap_left));
    let v_gle = eng.splat(T::<E>::from_i32_sat(t2.gap_left_ext));
    let v_gu = eng.splat(T::<E>::from_i32_sat(t2.gap_up));
    let v_gue = eng.splat(T::<E>::from_i32_sat(t2.gap_up_ext));
    let v_zero = eng.splat(T::<E>::ZERO);

    let mut v_local_max = neg_inf;
    // Per-lane bookkeeping for global/semi-global result extraction.
    let mut finals = vec![T::<E>::NEG_INF; subjects.len()];
    let mut lane_buf = vec![T::<E>::ZERO; lanes];
    if matches!(t2.kind, AlignKind::Global | AlignKind::SemiGlobal) {
        // Seed every lane with the boundary column's last-row value:
        // final for zero-length subjects, the i=0 contribution for
        // semi-global, overwritten at each lane's end column for
        // global.
        eng.store(&mut lane_buf, ws.h[m]);
        finals.copy_from_slice(&lane_buf[..subjects.len()]);
    }

    for i in 0..n_max {
        // Gather this column's substitution scores: lane l needs
        // matrix[s_l[i]][q[j]]. Finished lanes keep a NEG_INF row so
        // their garbage can never win (and cannot wrap: the E-path
        // bounds the per-column decrease).
        for (l, s) in subjects.iter().enumerate() {
            let idx = s.indices();
            if i < idx.len() {
                let row = matrix.row(idx[i]);
                for (j, &qr) in q.iter().enumerate() {
                    ws.scores[j * lanes + l] = T::<E>::from_i32_sat(row[qr as usize]);
                }
            } else {
                for j in 0..m {
                    ws.scores[j * lanes + l] = T::<E>::NEG_INF;
                }
            }
        }
        // Unused high lanes: keep them frozen at NEG_INF too.
        for l in subjects.len()..lanes {
            for j in 0..m {
                ws.scores[j * lanes + l] = T::<E>::NEG_INF;
            }
        }

        let mut h_diag = ws.h[0];
        let h0 = eng.splat(T::<E>::from_i32_sat(t2.init_t(i + 1)));
        ws.h[0] = h0;
        let mut v_f = neg_inf;
        for j in 1..=m {
            let e = eng.max(eng.add(ws.e[j], v_gle), eng.add(ws.h[j], v_gl));
            ws.e[j] = e;
            v_f = eng.max(eng.add(v_f, v_gue), eng.add(ws.h[j - 1], v_gu));
            let d = eng.add(h_diag, eng.load(&ws.scores[(j - 1) * lanes..]));
            let mut v = eng.max(d, eng.max(e, v_f));
            if t2.local {
                v = eng.max(v, v_zero);
            }
            h_diag = ws.h[j];
            ws.h[j] = v;
            if t2.local {
                v_local_max = eng.max(v_local_max, v);
            }
        }

        // Result extraction at each lane's own end column.
        match t2.kind {
            AlignKind::Local => {}
            AlignKind::Global => {
                eng.store(&mut lane_buf, ws.h[m]);
                for (l, s) in subjects.iter().enumerate() {
                    if s.len() == i + 1 {
                        finals[l] = lane_buf[l];
                    }
                }
            }
            AlignKind::SemiGlobal => {
                eng.store(&mut lane_buf, ws.h[m]);
                for (l, s) in subjects.iter().enumerate() {
                    if i < s.len() {
                        finals[l] = finals[l].max2(lane_buf[l]);
                    }
                }
            }
        }
    }

    let headroom = matrix.max_score().abs().max(t2.gap_up.abs()) + 1;
    let elems: Vec<T<E>> = match t2.kind {
        AlignKind::Local => {
            eng.store(&mut lane_buf, v_local_max);
            subjects
                .iter()
                .enumerate()
                .map(|(l, _)| lane_buf[l].max2(T::<E>::ZERO))
                .collect()
        }
        AlignKind::Global | AlignKind::SemiGlobal => finals,
    };
    let saturated = elems
        .iter()
        .map(|&v| {
            aalign_vec::elem::near_saturation(v, headroom)
                || (t2.kind != AlignKind::Local
                    && v.to_i32() <= T::<E>::NEG_INF.to_i32() + headroom)
        })
        .collect();
    InterBatchResult {
        scores: elems.iter().map(|v| v.to_i32()).collect(),
        saturated,
    }
}

/// Convenience: align a query against any number of subjects with the
/// widest available i32 engine, batching internally. Subjects should
/// be pre-sorted by length (longest first) so batches stay dense.
///
/// ```
/// use aalign_core::{inter_align_all, AlignConfig, GapModel};
/// use aalign_bio::{matrices::BLOSUM62, Sequence};
/// let q = Sequence::protein("q", b"HEAGAWGHEE").unwrap();
/// let a = Sequence::protein("a", b"HEAGAWGHEE").unwrap();
/// let b = Sequence::protein("b", b"PAWHEAE").unwrap();
/// let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
/// let scores = inter_align_all(cfg.table2(), &BLOSUM62, &q, &[&a, &b]);
/// assert_eq!(scores[0], 62); // exact self-match
/// assert_eq!(scores[1], 17);
/// ```
pub fn inter_align_all(
    t2: TableII,
    matrix: &SubstMatrix,
    query: &Sequence,
    subjects: &[&Sequence],
) -> Vec<i32> {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(eng) = aalign_vec::avx512::Avx512I32::new() {
            // SAFETY: engine construction proves avx512f.
            return unsafe { inter_all_avx512(eng, t2, matrix, query, subjects) };
        }
        if let Some(eng) = aalign_vec::avx2::Avx2I32::new() {
            // SAFETY: engine construction proves avx2.
            return unsafe { inter_all_avx2(eng, t2, matrix, query, subjects) };
        }
    }
    inter_all_generic(
        aalign_vec::EmuEngine::<i32, 16>::new(),
        t2,
        matrix,
        query,
        subjects,
    )
}

#[inline(always)]
fn inter_all_generic<E: SimdEngine<Elem = i32>>(
    eng: E,
    t2: TableII,
    matrix: &SubstMatrix,
    query: &Sequence,
    subjects: &[&Sequence],
) -> Vec<i32> {
    let mut ws = InterWorkspace::new();
    let mut out = Vec::with_capacity(subjects.len());
    for chunk in subjects.chunks(E::LANES) {
        out.extend(inter_align_batch(eng, t2, matrix, query, chunk, &mut ws).scores);
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn inter_all_avx512(
    eng: aalign_vec::avx512::Avx512I32,
    t2: TableII,
    matrix: &SubstMatrix,
    query: &Sequence,
    subjects: &[&Sequence],
) -> Vec<i32> {
    inter_all_generic(eng, t2, matrix, query, subjects)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn inter_all_avx2(
    eng: aalign_vec::avx2::Avx2I32,
    t2: TableII,
    matrix: &SubstMatrix,
    query: &Sequence,
    subjects: &[&Sequence],
) -> Vec<i32> {
    inter_all_generic(eng, t2, matrix, query, subjects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlignConfig, GapModel};
    use crate::paradigm::paradigm_dp;
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
    use aalign_vec::EmuEngine;

    fn all_configs() -> Vec<AlignConfig> {
        let mut out = Vec::new();
        for kind in [AlignKind::Local, AlignKind::Global, AlignKind::SemiGlobal] {
            for gap in [GapModel::affine(-10, -2), GapModel::linear(-3)] {
                out.push(AlignConfig::new(kind, gap, &BLOSUM62));
            }
        }
        out
    }

    #[test]
    fn batch_matches_scalar_reference_per_lane() {
        let mut rng = seeded_rng(500);
        let q = named_query(&mut rng, 45);
        // Mixed-length batch, including an empty subject.
        let mut subjects: Vec<Sequence> =
            (0..7).map(|i| named_query(&mut rng, 10 + i * 9)).collect();
        subjects.push(Sequence::from_indices("empty", q.alphabet(), Vec::new()));
        let refs: Vec<&Sequence> = subjects.iter().collect();

        for cfg in all_configs() {
            let t2 = cfg.table2();
            let eng = EmuEngine::<i32, 8>::new();
            let mut ws = InterWorkspace::new();
            let got = inter_align_batch(eng, t2, &BLOSUM62, &q, &refs, &mut ws);
            for (l, s) in subjects.iter().enumerate() {
                let want = paradigm_dp(&cfg, &q, s).score;
                assert_eq!(got.scores[l], want, "{} lane {l} ({})", cfg.label(), s.id());
                assert!(!got.saturated[l]);
            }
        }
    }

    #[test]
    fn partial_batches_and_chunking() {
        let mut rng = seeded_rng(501);
        let q = named_query(&mut rng, 30);
        let db = swissprot_like_db(502, 21); // not a multiple of any lane count
        let subjects: Vec<&Sequence> = db.sequences().iter().collect();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let got = inter_align_all(cfg.table2(), &BLOSUM62, &q, &subjects);
        assert_eq!(got.len(), 21);
        for (l, s) in subjects.iter().enumerate() {
            assert_eq!(got[l], paradigm_dp(&cfg, &q, s).score, "{}", s.id());
        }
    }

    #[test]
    fn hardware_engines_match_emulated() {
        let mut rng = seeded_rng(503);
        let q = named_query(&mut rng, 40);
        let subjects: Vec<Sequence> = (0..16).map(|i| named_query(&mut rng, 20 + i * 3)).collect();
        let refs: Vec<&Sequence> = subjects.iter().collect();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let t2 = cfg.table2();

        let want: Vec<i32> = subjects
            .iter()
            .map(|s| paradigm_dp(&cfg, &q, s).score)
            .collect();
        let got = inter_align_all(t2, &BLOSUM62, &q, &refs);
        assert_eq!(got, want);
    }

    #[test]
    fn i16_batches_match_i32_and_flag_saturation() {
        let mut rng = seeded_rng(505);
        let q = named_query(&mut rng, 50);
        let subjects: Vec<Sequence> = (0..8).map(|i| named_query(&mut rng, 20 + i * 7)).collect();
        let refs: Vec<&Sequence> = subjects.iter().collect();
        let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
        let t2 = cfg.table2();

        let mut ws16 = InterWorkspace::new();
        let got16 = inter_align_batch(
            EmuEngine::<i16, 8>::new(),
            t2,
            &BLOSUM62,
            &q,
            &refs,
            &mut ws16,
        );
        for (l, s) in subjects.iter().enumerate() {
            assert!(!got16.saturated[l]);
            assert_eq!(
                got16.scores[l],
                paradigm_dp(&cfg, &q, s).score,
                "{}",
                s.id()
            );
        }

        // A long identical pair must saturate i16 and be flagged.
        let big = Sequence::from_indices(
            "big",
            q.alphabet(),
            std::iter::repeat_n(17u8, 3100).collect(), // 3100 × W: 34100 > i16::MAX
        );
        let refs = vec![&big];
        let got = inter_align_batch(
            EmuEngine::<i16, 8>::new(),
            cfg.table2(),
            &BLOSUM62,
            &big,
            &refs,
            &mut InterWorkspace::new(),
        );
        assert!(got.saturated[0], "34100 > i16::MAX must be flagged");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_rejected() {
        let mut rng = seeded_rng(504);
        let q = named_query(&mut rng, 10);
        let subjects: Vec<Sequence> = (0..5).map(|_| named_query(&mut rng, 8)).collect();
        let refs: Vec<&Sequence> = subjects.iter().collect();
        let cfg = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let eng = EmuEngine::<i32, 4>::new();
        let mut ws = InterWorkspace::new();
        let _ = inter_align_batch(eng, cfg.table2(), &BLOSUM62, &q, &refs, &mut ws);
    }
}
