//! Trace integrity at the kernel boundary.
//!
//! Two guarantees, both load-bearing for the observability layer:
//!
//! 1. **Equivalence** — running with a live trace sink changes
//!    nothing observable: scores, backends, and `RunStats` are
//!    bit-identical to the untraced path.
//! 2. **Reconciliation** — the per-column `HybridEvent` stream
//!    *exactly* explains the `RunStats` the kernel reports: column
//!    counts per strategy, switch counts, probe outcomes, and the
//!    lazy-sweep total all match, and columns arrive in order.

#![cfg(feature = "trace")]

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};
use aalign_core::striped::HybridPolicy;
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, RunStats, Strategy, WidthPolicy};
use aalign_obs::{CollectorSink, ProbeOutcome, StrategyKind, TraceEvent};

/// Totals recomputed from a column-event stream.
#[derive(Debug, Default, PartialEq, Eq)]
struct Counted {
    iterate_columns: usize,
    scan_columns: usize,
    switches_to_scan: usize,
    probes_stayed: usize,
    lazy_sweeps: u64,
}

fn count(events: &[TraceEvent]) -> Counted {
    let mut c = Counted::default();
    for (i, ev) in events.iter().enumerate() {
        let h = match ev {
            TraceEvent::Hybrid(h) => h,
            other => panic!("kernel emitted a non-column event: {other:?}"),
        };
        assert_eq!(h.column, i as u64, "columns must arrive in order");
        match h.strategy {
            StrategyKind::Iterate => c.iterate_columns += 1,
            StrategyKind::Scan => {
                c.scan_columns += 1;
                assert_eq!(h.lazy_sweeps, 0, "scan columns have no lazy loop");
            }
        }
        if h.switched {
            c.switches_to_scan += 1;
        }
        if h.probe == ProbeOutcome::Stayed {
            c.probes_stayed += 1;
        }
        c.lazy_sweeps += u64::from(h.lazy_sweeps);
    }
    c
}

fn reconciles(counted: &Counted, stats: &RunStats, subject_len: usize) {
    assert_eq!(counted.iterate_columns, stats.iterate_columns);
    assert_eq!(counted.scan_columns, stats.scan_columns);
    assert_eq!(counted.switches_to_scan, stats.switches_to_scan);
    assert_eq!(counted.probes_stayed, stats.probes_stayed);
    assert_eq!(counted.lazy_sweeps, stats.lazy_sweeps);
    assert_eq!(
        counted.iterate_columns + counted.scan_columns,
        subject_len,
        "every subject column is accounted for exactly once"
    );
}

#[test]
fn traced_runs_are_bit_identical_and_reconcile() {
    let mut rng = seeded_rng(4242);
    let q = named_query(&mut rng, 150);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    // Aggressive switching so hybrid traces exercise all arms.
    let policy = HybridPolicy {
        threshold: 1,
        probe_stride: 16,
    };
    for strat in [
        Strategy::Hybrid,
        Strategy::StripedIterate,
        Strategy::StripedScan,
    ] {
        let aligner = Aligner::new(cfg.clone())
            .with_strategy(strat)
            .with_hybrid_policy(policy);
        let pq = aligner.prepare(&q).unwrap();
        let mut scratch = AlignScratch::new();
        for spec in nine_similarity_specs() {
            let s = spec.generate(&mut rng, &q).subject;
            let plain = aligner.align_prepared(&pq, &s, &mut scratch).unwrap();
            let mut sink = CollectorSink::new();
            let traced = aligner
                .align_prepared_sink(&pq, &s, &mut scratch, &mut sink)
                .unwrap();

            assert_eq!(traced.score, plain.score, "{strat:?}");
            assert_eq!(traced.stats, plain.stats, "{strat:?}");
            assert_eq!(traced.backend, plain.backend, "{strat:?}");
            assert_eq!(traced.elem_bits, plain.elem_bits, "{strat:?}");

            let counted = count(&sink.events);
            reconciles(&counted, &traced.stats, s.len());
        }
    }
}

#[test]
fn hybrid_trace_contains_switches_and_probes() {
    let mut rng = seeded_rng(77);
    let q = named_query(&mut rng, 200);
    // A highly similar subject forces the lazy loop to run long,
    // guaranteeing iterate→scan switches and probe columns.
    let s = aalign_bio::synth::PairSpec::new(
        aalign_bio::synth::Level::Hi,
        aalign_bio::synth::Level::Hi,
    )
    .generate(&mut rng, &q)
    .subject;
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let aligner = Aligner::new(cfg)
        .with_strategy(Strategy::Hybrid)
        .with_width(WidthPolicy::Fixed32)
        .with_hybrid_policy(HybridPolicy {
            threshold: 1,
            probe_stride: 16,
        });
    let pq = aligner.prepare(&q).unwrap();
    let mut scratch = AlignScratch::new();
    let mut sink = CollectorSink::new();
    let out = aligner
        .align_prepared_sink(&pq, &s, &mut scratch, &mut sink)
        .unwrap();
    assert!(out.stats.switches_to_scan > 0, "{:?}", out.stats);
    assert!(out.stats.scan_columns > 0);
    let counted = count(&sink.events);
    reconciles(&counted, &out.stats, s.len());
    // At least one probe column must be marked as such.
    let probes = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::Hybrid(h) if h.probe != ProbeOutcome::NotProbe))
        .count();
    assert!(probes > 0, "scan bursts must end in probe columns");
}

#[test]
fn global_and_semiglobal_traces_reconcile_too() {
    let mut rng = seeded_rng(909);
    let q = named_query(&mut rng, 90);
    let s = named_query(&mut rng, 120);
    for cfg in [
        AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62),
        AlignConfig::semi_global(GapModel::linear(-3), &BLOSUM62),
    ] {
        let aligner = Aligner::new(cfg).with_strategy(Strategy::Hybrid);
        let pq = aligner.prepare(&q).unwrap();
        let mut scratch = AlignScratch::new();
        let mut sink = CollectorSink::new();
        let out = aligner
            .align_prepared_sink(&pq, &s, &mut scratch, &mut sink)
            .unwrap();
        reconciles(&count(&sink.events), &out.stats, s.len());
    }
}
