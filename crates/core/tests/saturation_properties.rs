//! The static width analysis vs the kernels' runtime truth.
//!
//! [`ScoreBounds::fits`] is the promise the whole width machinery
//! leans on: when it clears a lane width, the engine runs that width
//! *without* a wider fallback prepared — `WidthPolicy::Auto` narrows
//! on its say-so, and the overflow-rescue ladder only watches widths
//! it did **not** clear. A single optimistic answer would mean a
//! silently clamped score. These properties pin the contract from
//! both sides:
//!
//! 1. **Cleared ⇒ clean** — whenever `fits(bits)` is true for a
//!    query/subject length pair, aligning at that fixed width neither
//!    reports lane saturation nor diverges from the 32-bit reference
//!    score, across alignment kinds, gap models, and compositions
//!    (including adversarial max-score runs).
//! 2. **Saturating ⇒ rejected** — inputs that provably saturate a
//!    width at runtime are inputs the analysis had already refused to
//!    clear.
//! 3. **Shape** — `fits` is monotone in both lane width and sequence
//!    length, so "the next wider width" (the rescue ladder's move) is
//!    always at least as safe.

use proptest::prelude::*;

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::Sequence;
use aalign_core::{AlignConfig, AlignOutput, Aligner, GapModel, WidthPolicy};

fn config(kind: u8, open: i32, ext: i32) -> AlignConfig {
    let gap = GapModel::affine(open, ext);
    match kind % 3 {
        0 => AlignConfig::local(gap, &BLOSUM62),
        1 => AlignConfig::global(gap, &BLOSUM62),
        _ => AlignConfig::semi_global(gap, &BLOSUM62),
    }
}

fn align_at(cfg: AlignConfig, policy: WidthPolicy, q: &Sequence, s: &Sequence) -> AlignOutput {
    Aligner::new(cfg).with_width(policy).align(q, s).unwrap()
}

proptest! {
    /// Property 1: a width the analysis clears is bit-exact at
    /// runtime. The `pad` arm splices in runs of W (the BLOSUM62
    /// max-scorer, 11 per residue) so local scores actually press
    /// against the 8-bit ceiling instead of idling far below it.
    #[test]
    fn cleared_widths_never_saturate_and_match_the_reference(
        kind in 0u8..3,
        open in -15i32..=0,
        ext in -6i32..=-1,
        qs in "[ACDEFGHIKLMNPQRSTVWY]{1,90}",
        ss in "[ACDEFGHIKLMNPQRSTVWY]{1,90}",
        pad in 0usize..100,
    ) {
        let mut qtext = qs.into_bytes();
        qtext.extend(std::iter::repeat_n(b'W', pad));
        let mut stext = ss.into_bytes();
        stext.extend(std::iter::repeat_n(b'W', pad));
        let q = Sequence::protein("q", &qtext).unwrap();
        let s = Sequence::protein("s", &stext).unwrap();
        let bounds = config(kind, open, ext).score_bounds(q.len(), s.len());
        let reference = align_at(config(kind, open, ext), WidthPolicy::Fixed32, &q, &s);
        prop_assert!(!reference.saturated, "32-bit must hold these lengths");
        for (bits, policy) in [(8, WidthPolicy::Fixed8), (16, WidthPolicy::Fixed16)] {
            if bounds.fits(bits) {
                let out = align_at(config(kind, open, ext), policy, &q, &s);
                prop_assert!(
                    !out.saturated,
                    "fits({bits}) promised no saturation for {}x{} (kind {kind})",
                    q.len(), s.len()
                );
                prop_assert_eq!(
                    out.score, reference.score,
                    "fits({bits}) promised the exact score for {}x{} (kind {kind})",
                    q.len(), s.len()
                );
            }
        }
    }

    /// Property 3: monotone in width (a narrower clearance implies
    /// every wider one) and antitone in length (clearing a pair
    /// clears every shorter pair) — the rescue ladder's "go wider"
    /// step and the engine's per-subject re-check both assume this.
    #[test]
    fn fits_is_monotone_in_width_and_antitone_in_length(
        kind in 0u8..3,
        open in -15i32..=0,
        ext in -6i32..=-1,
        m in 1usize..4000,
        n in 1usize..4000,
    ) {
        let cfg = config(kind, open, ext);
        let b = cfg.score_bounds(m, n);
        prop_assert!(!b.fits(8) || b.fits(16), "8-bit cleared but 16 refused");
        prop_assert!(!b.fits(16) || b.fits(32), "16-bit cleared but 32 refused");
        let wider = cfg.score_bounds(m * 2, n * 2);
        for bits in [8u32, 16, 32] {
            prop_assert!(
                !wider.fits(bits) || b.fits(bits),
                "doubling the lengths cannot make {bits}-bit lanes safer"
            );
        }
    }
}

/// Property 2, pinned on known-saturating inputs: runs of W long
/// enough to overflow a lane width at runtime are exactly the inputs
/// `fits` refuses to clear. (The 16-bit case mirrors the kernel test
/// `fixed16_reports_saturation_without_fallback`.)
#[test]
fn runtime_saturation_only_happens_where_the_analysis_said_no() {
    let cfg = || AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    // 40 W's: T reaches ~440, past the 8-bit ceiling of 127.
    let short = Sequence::protein("w40", &[b'W'; 40]).unwrap();
    let out8 = align_at(cfg(), WidthPolicy::Fixed8, &short, &short);
    assert!(out8.saturated, "a 440-ish local score must saturate i8");
    assert!(!cfg().score_bounds(40, 40).fits(8), "fits(8) must refuse");
    // 4000 W's: T reaches ~44000, past the 16-bit ceiling of 32767.
    let long = Sequence::protein("w4000", &vec![b'W'; 4000]).unwrap();
    let out16 = align_at(cfg(), WidthPolicy::Fixed16, &long, &long);
    assert!(out16.saturated, "a 44000-ish local score must saturate i16");
    let bounds = cfg().score_bounds(4000, 4000);
    assert!(!bounds.fits(16), "fits(16) must refuse");
    // ... while the next rung of the rescue ladder is cleared and
    // indeed recovers the exact score.
    assert!(bounds.fits(32));
    let out32 = align_at(cfg(), WidthPolicy::Fixed32, &long, &long);
    assert!(!out32.saturated);
    assert_eq!(out32.score, 4000 * 11);
}
