//! Properties of the shared backoff policy (`aalign_core::retry`).
//!
//! The shard supervisor trusts three things about [`Backoff`] when it
//! brings dead children back: the delays it sleeps grow (no respawn
//! storm), never exceed the configured cap (bounded recovery
//! latency), and replay exactly under one seed (chaos runs are
//! reproducible). Each property is pinned here over randomized
//! `(base, cap, jitter, seed)` tuples.

use core::time::Duration;

use aalign_core::retry::Backoff;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotone until cap: while the envelope is still doubling, the
    /// jittered delays never decrease. (Subtractive jitter ≤ 50% of
    /// the envelope cannot undercut the previous attempt once the
    /// envelope has doubled past it.)
    #[test]
    fn delays_are_monotone_until_the_cap(
        base_ms in 1u64..500,
        cap_mult in 1u64..64,
        jitter in 0u32..=50,
        seed in 0u64..u64::MAX,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(base_ms * cap_mult);
        let mut b = Backoff::seeded(base, cap, seed).with_jitter_pct(jitter);
        let mut prev: Option<Duration> = None;
        for _ in 0..12 {
            let saturated = b.saturated();
            let d = b.next().unwrap();
            if let Some(p) = prev {
                if !saturated {
                    prop_assert!(
                        d >= p,
                        "delay shrank below a pre-cap predecessor: {p:?} -> {d:?}"
                    );
                }
            }
            prev = Some(d);
            if saturated {
                break;
            }
        }
    }

    /// Jitter bounded: every delay sits inside
    /// `[envelope·(1 − j/100), envelope]`, and therefore never
    /// exceeds the cap.
    #[test]
    fn every_delay_is_inside_the_jitter_band(
        base_ms in 1u64..500,
        cap_mult in 1u64..64,
        jitter in 0u32..=50,
        seed in 0u64..u64::MAX,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(base_ms * cap_mult);
        let mut b = Backoff::seeded(base, cap, seed).with_jitter_pct(jitter);
        for n in 0..16u32 {
            let env = b.envelope(n);
            let d = b.next().unwrap();
            let floor_ms = env.as_millis() as u64 - env.as_millis() as u64 * u64::from(jitter) / 100;
            prop_assert!(d <= env, "attempt {n}: {d:?} above envelope {env:?}");
            prop_assert!(d <= cap.max(Duration::from_millis(1)), "attempt {n}: {d:?} above cap");
            prop_assert!(
                d.as_millis() as u64 >= floor_ms,
                "attempt {n}: {d:?} below jitter floor {floor_ms}ms (envelope {env:?})"
            );
        }
    }

    /// Deterministic per seed: two iterators built from the same
    /// parameters emit identical sequences; a different seed (with
    /// nonzero jitter and a wide envelope) is allowed to differ.
    #[test]
    fn sequences_replay_exactly_per_seed(
        base_ms in 1u64..500,
        cap_mult in 1u64..64,
        jitter in 0u32..=50,
        seed in 0u64..u64::MAX,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(base_ms * cap_mult);
        let a: Vec<_> = Backoff::seeded(base, cap, seed)
            .with_jitter_pct(jitter)
            .take(20)
            .collect();
        let b: Vec<_> = Backoff::seeded(base, cap, seed)
            .with_jitter_pct(jitter)
            .take(20)
            .collect();
        prop_assert_eq!(&a, &b);
    }
}

/// The supervisor's actual respawn policy (50 ms base, 2 s cap):
/// attempt delays double, then plateau at the cap band. A plain
/// deterministic pin alongside the properties.
#[test]
fn supervisor_policy_shape() {
    let mut b = Backoff::seeded(Duration::from_millis(50), Duration::from_secs(2), 42);
    let delays: Vec<u64> = (0..10)
        .map(|_| b.next().unwrap().as_millis() as u64)
        .collect();
    // Envelopes: 50 100 200 400 800 1600 2000 2000 …
    for (n, d) in delays.iter().enumerate() {
        let env = [50u64, 100, 200, 400, 800, 1600, 2000, 2000, 2000, 2000][n];
        assert!(*d <= env, "attempt {n}: {d} > {env}");
        assert!(*d >= env - env / 5, "attempt {n}: {d} < floor of {env}");
    }
    assert!(b.saturated());
}
