//! Property tests for [`RunStats::merge`]: saturating accumulation
//! makes the merge associative and commutative, so the search
//! engine's per-worker stats can be folded in any order.

use proptest::prelude::*;

use aalign_core::RunStats;

/// Strategy producing a fully arbitrary `RunStats`.
fn arb_stats() -> impl Strategy<Value = RunStats> {
    (
        (any::<u64>(), any::<u64>(), any::<usize>()),
        (any::<usize>(), any::<usize>(), any::<usize>()),
    )
        .prop_map(
            |((lazy_iters, lazy_sweeps, iterate_columns), rest)| RunStats {
                lazy_iters,
                lazy_sweeps,
                iterate_columns,
                scan_columns: rest.0,
                switches_to_scan: rest.1,
                probes_stayed: rest.2,
            },
        )
}

fn merged(a: &RunStats, b: &RunStats) -> RunStats {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_stats(), b in arb_stats()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_saturates_never_wraps(a in arb_stats()) {
        let ceiling = RunStats {
            lazy_iters: u64::MAX,
            lazy_sweeps: u64::MAX,
            iterate_columns: usize::MAX,
            scan_columns: usize::MAX,
            switches_to_scan: usize::MAX,
            probes_stayed: usize::MAX,
        };
        let m = merged(&a, &ceiling);
        prop_assert_eq!(m, ceiling);
    }

    #[test]
    fn identity_element_is_default(a in arb_stats()) {
        prop_assert_eq!(merged(&a, &RunStats::default()), a);
        prop_assert_eq!(merged(&RunStats::default(), &a), a);
    }
}
