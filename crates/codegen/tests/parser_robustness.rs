//! Robustness: the front end must never panic — arbitrary input
//! produces `Ok` or a structured error.

use aalign_codegen::{analyze, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes-as-text never panic the lexer/parser, and any
    /// error points inside the input.
    #[test]
    fn parser_never_panics(input in ".*") {
        if let Err(e) = parse_program(&input) {
            let span = e.span();
            prop_assert!(span.start <= input.len() + 1, "error span {span} outside input");
        }
    }

    /// Arbitrary strings from the language's own token alphabet —
    /// much likelier to reach deep parser states.
    #[test]
    fn tokenish_soup_never_panics(
        input in proptest::collection::vec(
            prop_oneof![
                Just("for".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("{".to_string()), Just("}".to_string()),
                Just("[".to_string()), Just("]".to_string()),
                Just(";".to_string()), Just(",".to_string()),
                Just("=".to_string()), Just("<".to_string()),
                Just("+".to_string()), Just("-".to_string()),
                Just("*".to_string()),
                Just("T".to_string()), Just("i".to_string()),
                Just("max".to_string()), Just("ctoi".to_string()),
                Just("42".to_string()),
            ],
            0..60,
        )
    ) {
        let text = input.join(" ");
        if let Ok(ast) = parse_program(&text) {
            // Whatever parses must analyze without panicking too, and
            // any analysis error must carry an in-bounds span whose
            // rendered diagnostic never panics.
            if let Err(e) = analyze(&ast) {
                if let Some(span) = e.span {
                    prop_assert!(span.start <= span.end, "inverted span {span}");
                    prop_assert!(span.end <= text.len(), "span {span} outside input");
                    let rendered = e.render(&text);
                    prop_assert!(rendered.contains("-->"), "spanned render has location");
                }
                let _ = e.render(&text);
            }
        }
    }

    /// Mutating the canonical kernel (truncation) never panics.
    #[test]
    fn truncated_alg1_never_panics(cut in 0usize..600) {
        let src = aalign_codegen::ALG1_SMITH_WATERMAN_AFFINE;
        let cut = cut.min(src.len());
        // Cut at a char boundary.
        let mut end = cut;
        while !src.is_char_boundary(end) {
            end -= 1;
        }
        if let Ok(ast) = parse_program(&src[..end]) {
            let _ = analyze(&ast);
        }
    }
}
