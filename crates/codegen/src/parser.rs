//! Recursive-descent parser for the sequential-paradigm language.

use crate::ast::{BinOp, Expr, Stmt};
use crate::lexer::{lex, LexError, TokKind, Token};

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token.
    Unexpected {
        /// What was found (debug form).
        found: String,
        /// What was expected.
        expected: &'static str,
        /// Byte offset.
        pos: usize,
    },
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Lex(e) => write!(f, "{e}"),
            Self::Unexpected {
                found,
                expected,
                pos,
            } => write!(f, "expected {expected}, found {found} at offset {pos}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        Self::Lex(e)
    }
}

/// Parse a whole program (a list of statements).
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut out = Vec::new();
    while p.peek() != &TokKind::Eof {
        out.push(p.stmt()?);
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.at].kind
    }

    fn pos(&self) -> usize {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.at].kind.clone();
        self.at += 1;
        k
    }

    fn expect(&mut self, want: TokKind, what: &'static str) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &'static str) -> ParseError {
        ParseError::Unexpected {
            found: format!("{:?}", self.peek()),
            expected,
            pos: self.pos(),
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.peek() {
            TokKind::Ident(_) => {
                if let TokKind::Ident(s) = self.bump() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if *self.peek() == TokKind::KwFor {
            return self.for_stmt();
        }
        // assignment: ident subs* = expr ;
        let table = self.ident("table name")?;
        let mut subs = Vec::new();
        while *self.peek() == TokKind::LBracket {
            self.bump();
            subs.push(self.expr()?);
            self.expect(TokKind::RBracket, "]")?;
        }
        self.expect(TokKind::Assign, "=")?;
        let value = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        Ok(Stmt::Assign { table, subs, value })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokKind::KwFor, "for")?;
        self.expect(TokKind::LParen, "(")?;
        let var = self.ident("loop variable")?;
        self.expect(TokKind::Assign, "=")?;
        let lo = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        let var2 = self.ident("loop variable")?;
        if var2 != var {
            return Err(self.unexpected("same loop variable in condition"));
        }
        self.expect(TokKind::Lt, "<")?;
        let hi = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        // increment: either `i = i + 1` or `i++` is not lexable; accept
        // `i = i + 1` only.
        let var3 = self.ident("loop variable")?;
        if var3 != var {
            return Err(self.unexpected("same loop variable in increment"));
        }
        self.expect(TokKind::Assign, "=")?;
        let _inc = self.expr()?; // shape-checked by the analyzer if needed
        self.expect(TokKind::RParen, ")")?;

        let mut body = Vec::new();
        if *self.peek() == TokKind::LBrace {
            self.bump();
            while *self.peek() != TokKind::RBrace {
                body.push(self.stmt()?);
            }
            self.bump();
        } else {
            body.push(self.stmt()?);
        }
        Ok(Stmt::For { var, lo, hi, body })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => BinOp::Add,
                TokKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        while *self.peek() == TokKind::Star {
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokKind::RParen, ")")?;
                Ok(e)
            }
            TokKind::Ident(_) => {
                let name = self.ident("identifier")?;
                match self.peek() {
                    TokKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != TokKind::RParen {
                            args.push(self.expr()?);
                            while *self.peek() == TokKind::Comma {
                                self.bump();
                                args.push(self.expr()?);
                            }
                        }
                        self.expect(TokKind::RParen, ")")?;
                        Ok(Expr::Call { name, args })
                    }
                    TokKind::LBracket => {
                        let mut subs = Vec::new();
                        while *self.peek() == TokKind::LBracket {
                            self.bump();
                            subs.push(self.expr()?);
                            self.expect(TokKind::RBracket, "]")?;
                        }
                        Ok(Expr::Index { base: name, subs })
                    }
                    _ => Ok(Expr::Ident(name)),
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt};

    #[test]
    fn parses_alg1() {
        let prog = parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap();
        assert_eq!(prog.len(), 3, "two init loops + main loop nest");
        let Stmt::For { var, body, .. } = &prog[2] else {
            panic!("main loop expected")
        };
        assert_eq!(var, "i");
        let Stmt::For { var, body, .. } = &body[0] else {
            panic!("inner loop expected")
        };
        assert_eq!(var, "j");
        assert_eq!(body.len(), 4, "L, U, D, T assignments");
    }

    #[test]
    fn parses_max_with_many_args() {
        let prog = parse_program("T[i][j] = max(0, A[i][j], B[i][j], C[i][j]);").unwrap();
        let Stmt::Assign { value, .. } = &prog[0] else {
            panic!()
        };
        assert_eq!(value.max_args().unwrap().len(), 4);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let prog = parse_program("x = 1 + 2 * 3;").unwrap();
        let Stmt::Assign { value, .. } = &prog[0] else {
            panic!()
        };
        // (1 + (2*3)) — Add at the root.
        assert!(matches!(
            value,
            Expr::Bin {
                op: crate::ast::BinOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_negative_literals() {
        let prog = parse_program("x = -12;").unwrap();
        let Stmt::Assign { value, .. } = &prog[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Neg(_)));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("T[i][j] = ;").unwrap_err();
        match err {
            ParseError::Unexpected { pos, .. } => assert_eq!(pos, 10),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn loop_variable_must_match() {
        let err = parse_program("for (i = 0; j < n; i = i + 1) { x = 1; }").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn all_builtin_kernels_parse() {
        for src in [
            crate::ALG1_SMITH_WATERMAN_AFFINE,
            crate::NEEDLEMAN_WUNSCH_AFFINE,
            crate::SMITH_WATERMAN_LINEAR,
            crate::NEEDLEMAN_WUNSCH_LINEAR,
        ] {
            parse_program(src).unwrap();
        }
    }
}
