//! Recursive-descent parser for the sequential-paradigm language.

use crate::ast::{BinOp, Expr, ExprKind, Span, Stmt, StmtKind};
use crate::lexer::{lex, LexError, TokKind, Token};

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token.
    Unexpected {
        /// What was found (debug form).
        found: String,
        /// What was expected.
        expected: &'static str,
        /// Byte offset.
        pos: usize,
    },
}

impl ParseError {
    /// Source span of the failure.
    pub fn span(&self) -> Span {
        match self {
            Self::Lex(e) => Span::new(e.pos, e.pos + 1),
            Self::Unexpected { pos, .. } => Span::point(*pos),
        }
    }
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Lex(e) => write!(f, "{e}"),
            Self::Unexpected {
                found,
                expected,
                pos,
            } => write!(f, "expected {expected}, found {found} at offset {pos}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        Self::Lex(e)
    }
}

/// Parse a whole program (a list of statements).
pub fn parse_program(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        at: 0,
        last_end: 0,
    };
    let mut out = Vec::new();
    while p.peek() != &TokKind::Eof {
        out.push(p.stmt()?);
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
    /// End offset of the most recently consumed token; together with a
    /// remembered start offset this spans any just-parsed node.
    last_end: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.at].kind
    }

    fn pos(&self) -> usize {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> TokKind {
        let t = &self.toks[self.at];
        let k = t.kind.clone();
        self.last_end = t.end;
        self.at += 1;
        k
    }

    /// Span from `start` to the end of the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.last_end)
    }

    fn expect(&mut self, want: TokKind, what: &'static str) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &'static str) -> ParseError {
        ParseError::Unexpected {
            found: format!("{:?}", self.peek()),
            expected,
            pos: self.pos(),
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.peek() {
            TokKind::Ident(_) => {
                if let TokKind::Ident(s) = self.bump() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if *self.peek() == TokKind::KwFor {
            return self.for_stmt();
        }
        // assignment: ident subs* = expr ;
        let start = self.pos();
        let table = self.ident("table name")?;
        let mut subs = Vec::new();
        while *self.peek() == TokKind::LBracket {
            self.bump();
            subs.push(self.expr()?);
            self.expect(TokKind::RBracket, "]")?;
        }
        self.expect(TokKind::Assign, "=")?;
        let value = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        Ok(Stmt {
            kind: StmtKind::Assign { table, subs, value },
            span: self.span_from(start),
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.pos();
        self.expect(TokKind::KwFor, "for")?;
        self.expect(TokKind::LParen, "(")?;
        let var = self.ident("loop variable")?;
        self.expect(TokKind::Assign, "=")?;
        let lo = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        let var2 = self.ident("loop variable")?;
        if var2 != var {
            return Err(self.unexpected("same loop variable in condition"));
        }
        self.expect(TokKind::Lt, "<")?;
        let hi = self.expr()?;
        self.expect(TokKind::Semi, ";")?;
        // increment: either `i = i + 1` or `i++` is not lexable; accept
        // `i = i + 1` only.
        let var3 = self.ident("loop variable")?;
        if var3 != var {
            return Err(self.unexpected("same loop variable in increment"));
        }
        self.expect(TokKind::Assign, "=")?;
        let _inc = self.expr()?; // shape-checked by the analyzer if needed
        self.expect(TokKind::RParen, ")")?;

        let mut body = Vec::new();
        if *self.peek() == TokKind::LBrace {
            self.bump();
            while *self.peek() != TokKind::RBrace {
                body.push(self.stmt()?);
            }
            self.bump();
        } else {
            body.push(self.stmt()?);
        }
        Ok(Stmt {
            kind: StmtKind::For { var, lo, hi, body },
            span: self.span_from(start),
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => BinOp::Add,
                TokKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        while *self.peek() == TokKind::Star {
            self.bump();
            let rhs = self.factor()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Bin {
                    op: BinOp::Mul,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let start = self.pos();
        match self.peek().clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    span: self.span_from(start),
                })
            }
            TokKind::Minus => {
                self.bump();
                let inner = self.factor()?;
                let span = Span::new(start, inner.span.end);
                Ok(Expr {
                    kind: ExprKind::Neg(Box::new(inner)),
                    span,
                })
            }
            TokKind::LParen => {
                self.bump();
                let mut e = self.expr()?;
                self.expect(TokKind::RParen, ")")?;
                // widen to include the parentheses
                e.span = self.span_from(start);
                Ok(e)
            }
            TokKind::Ident(_) => {
                let name = self.ident("identifier")?;
                match self.peek() {
                    TokKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != TokKind::RParen {
                            args.push(self.expr()?);
                            while *self.peek() == TokKind::Comma {
                                self.bump();
                                args.push(self.expr()?);
                            }
                        }
                        self.expect(TokKind::RParen, ")")?;
                        Ok(Expr {
                            kind: ExprKind::Call { name, args },
                            span: self.span_from(start),
                        })
                    }
                    TokKind::LBracket => {
                        let mut subs = Vec::new();
                        while *self.peek() == TokKind::LBracket {
                            self.bump();
                            subs.push(self.expr()?);
                            self.expect(TokKind::RBracket, "]")?;
                        }
                        Ok(Expr {
                            kind: ExprKind::Index { base: name, subs },
                            span: self.span_from(start),
                        })
                    }
                    _ => Ok(Expr {
                        kind: ExprKind::Ident(name),
                        span: self.span_from(start),
                    }),
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, ExprKind, StmtKind};

    #[test]
    fn parses_alg1() {
        let prog = parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap();
        assert_eq!(prog.len(), 3, "two init loops + main loop nest");
        let StmtKind::For { var, body, .. } = &prog[2].kind else {
            panic!("main loop expected")
        };
        assert_eq!(var, "i");
        let StmtKind::For { var, body, .. } = &body[0].kind else {
            panic!("inner loop expected")
        };
        assert_eq!(var, "j");
        assert_eq!(body.len(), 4, "L, U, D, T assignments");
    }

    #[test]
    fn parses_max_with_many_args() {
        let prog = parse_program("T[i][j] = max(0, A[i][j], B[i][j], C[i][j]);").unwrap();
        let StmtKind::Assign { value, .. } = &prog[0].kind else {
            panic!()
        };
        assert_eq!(value.max_args().unwrap().len(), 4);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let prog = parse_program("x = 1 + 2 * 3;").unwrap();
        let StmtKind::Assign { value, .. } = &prog[0].kind else {
            panic!()
        };
        // (1 + (2*3)) — Add at the root.
        assert!(matches!(value.kind, ExprKind::Bin { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_negative_literals() {
        let prog = parse_program("x = -12;").unwrap();
        let StmtKind::Assign { value, .. } = &prog[0].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Neg(_)));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("T[i][j] = ;").unwrap_err();
        match err {
            ParseError::Unexpected { pos, .. } => assert_eq!(pos, 10),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn loop_variable_must_match() {
        let err = parse_program("for (i = 0; j < n; i = i + 1) { x = 1; }").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn all_builtin_kernels_parse() {
        for src in [
            crate::ALG1_SMITH_WATERMAN_AFFINE,
            crate::NEEDLEMAN_WUNSCH_AFFINE,
            crate::SMITH_WATERMAN_LINEAR,
            crate::NEEDLEMAN_WUNSCH_LINEAR,
        ] {
            parse_program(src).unwrap();
        }
    }

    #[test]
    fn spans_cover_source_text() {
        let src = "T[i][j] = max(0, D[i][j] + GAP);";
        let prog = parse_program(src).unwrap();
        // Statement span covers the whole assignment including `;`.
        assert_eq!(&src[prog[0].span.start..prog[0].span.end], src);
        let StmtKind::Assign { subs, value, .. } = &prog[0].kind else {
            panic!()
        };
        assert_eq!(&src[subs[0].span.start..subs[0].span.end], "i");
        assert_eq!(
            &src[value.span.start..value.span.end],
            "max(0, D[i][j] + GAP)"
        );
        // Call arguments carry their own spans.
        let ExprKind::Call { args, .. } = &value.kind else {
            panic!()
        };
        assert_eq!(&src[args[1].span.start..args[1].span.end], "D[i][j] + GAP");
    }

    #[test]
    fn spans_survive_loops_and_line_col() {
        let src = "for (i = 1; i < m; i = i + 1)\n  T[i][0] = 0;";
        let prog = parse_program(src).unwrap();
        let StmtKind::For { body, .. } = &prog[0].kind else {
            panic!()
        };
        let inner = &body[0];
        assert_eq!(&src[inner.span.start..inner.span.end], "T[i][0] = 0;");
        assert_eq!(inner.span.line_col(src), (2, 3));
    }
}
