//! The Sec. V-D analysis: recover a [`KernelSpec`] from the AST.
//!
//! Following the paper's four steps:
//! 1. local vs global — is the constant `0` an operand of the result
//!    `max`?
//! 2. linear vs affine — are there separate U/L recurrences (θ ≠ 0),
//!    or do gaps come straight off `T` (θ = 0)?
//! 3. boundary initialization — validated against step 1;
//! 4. vector-organization info — table/array/constant names feeding
//!    the Table II expressions.

use crate::ast::{BinOp, Expr, ExprKind, Span, Stmt, StmtKind};
use crate::spec::KernelSpec;

/// What went wrong during analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeErrorKind {
    /// No doubly nested loop found.
    NoMainLoopNest,
    /// No diagonal assignment `D = T[i-1][j-1] + matrix[...]` found.
    NoDiagonalRule,
    /// No result assignment `T[i][j] = max(...)` found.
    NoResultRule,
    /// A helper-table recurrence was malformed.
    BadHelperRule(String),
    /// A max operand could not be classified.
    UnclassifiedOperand(String),
    /// U and L use different constants (unsupported by GapModel).
    AsymmetricGaps,
    /// The matrix subscripts don't use `ctoi(Q[...])`/`ctoi(S[...])`.
    BadMatrixAccess,
    /// Local kernels must initialize boundaries to 0.
    BadBoundary(String),
}

impl AnalyzeErrorKind {
    /// Attach a source span.
    pub fn at(self, span: Span) -> AnalyzeError {
        AnalyzeError {
            kind: self,
            span: Some(span),
        }
    }

    /// No meaningful source location (e.g. something is *missing*).
    pub fn bare(self) -> AnalyzeError {
        AnalyzeError {
            kind: self,
            span: None,
        }
    }
}

impl core::fmt::Display for AnalyzeErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoMainLoopNest => write!(f, "no doubly nested main loop found"),
            Self::NoDiagonalRule => {
                write!(f, "no diagonal rule (T[i-1][j-1] + matrix[...]) found")
            }
            Self::NoResultRule => write!(f, "no result rule (T[i][j] = max(...)) found"),
            Self::BadHelperRule(t) => write!(f, "helper table {t} has a malformed recurrence"),
            Self::UnclassifiedOperand(e) => write!(f, "cannot classify max operand: {e}"),
            Self::AsymmetricGaps => {
                write!(f, "U and L use different gap constants (unsupported)")
            }
            Self::BadMatrixAccess => {
                write!(f, "matrix access must be M[ctoi(S[i-1])][ctoi(Q[j-1])]")
            }
            Self::BadBoundary(why) => write!(f, "bad boundary initialization: {why}"),
        }
    }
}

/// Analysis failure: a structured [`kind`](AnalyzeErrorKind) plus the
/// source [`Span`] it points at (when one exists — "X is missing"
/// errors have nowhere to point).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    /// What went wrong.
    pub kind: AnalyzeErrorKind,
    /// Where, as a byte range into the analyzed source.
    pub span: Option<Span>,
}

impl AnalyzeError {
    /// Render a compiler-style diagnostic against the original source:
    /// message, `line:col` location, the offending line, and a caret
    /// underline. Falls back to the bare message when the error has no
    /// span (or an out-of-range one).
    pub fn render(&self, src: &str) -> String {
        let Some(span) = self.span else {
            return format!("error: {}", self.kind);
        };
        if span.start > src.len() {
            return format!("error: {}", self.kind);
        }
        let (line, col) = span.line_col(src);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        let width = span
            .end
            .saturating_sub(span.start)
            .clamp(1, line_text.len().saturating_sub(col - 1).max(1));
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.kind));
        out.push_str(&format!("  --> {line}:{col}\n"));
        out.push_str(&format!("   |\n{line:3}| {line_text}\n"));
        out.push_str(&format!(
            "   | {}{}",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

impl core::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.span {
            Some(s) => write!(f, "{} at offset {s}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyze a parsed program into a [`KernelSpec`].
///
/// ```
/// use aalign_codegen::{analyze, parse_program, ALG1_SMITH_WATERMAN_AFFINE};
/// let ast = parse_program(ALG1_SMITH_WATERMAN_AFFINE).unwrap();
/// let spec = analyze(&ast).unwrap();
/// assert!(spec.local && spec.affine);
/// assert_eq!(spec.matrix_name, "BLOSUM62");
/// ```
pub fn analyze(prog: &[Stmt]) -> Result<KernelSpec, AnalyzeError> {
    // --- find the main (doubly nested) loop ---
    let nest = find_main_nest(prog).ok_or_else(|| AnalyzeErrorKind::NoMainLoopNest.bare())?;
    let (outer_var, inner_var, inner_body) = (nest.outer_var, nest.inner_var, nest.body);

    // --- the diagonal rule names the matrix, T and the sequences ---
    let diag = find_diag(inner_body, &outer_var, &inner_var)
        .ok_or_else(|| AnalyzeErrorKind::NoDiagonalRule.at(nest.inner_span))?;

    // --- the result rule: T[i][j] = max(...) ---
    let result_value = inner_body
        .iter()
        .rev()
        .find_map(|st| match &st.kind {
            StmtKind::Assign { table, subs, value } if *table == diag.t_table => {
                let ok = subs.len() == 2
                    && subs[0].index_offset(&outer_var) == Some(0)
                    && subs[1].index_offset(&inner_var) == Some(0);
                ok.then_some(value)
            }
            _ => None,
        })
        .ok_or_else(|| AnalyzeErrorKind::NoResultRule.at(nest.inner_span))?;
    let max_args = result_value
        .max_args()
        .ok_or_else(|| AnalyzeErrorKind::NoResultRule.at(result_value.span))?;

    // --- classify the max operands ---
    let mut local = false;
    let mut helper_refs: Vec<String> = Vec::new();
    let mut direct_gap_names: Vec<String> = Vec::new();
    for arg in &max_args {
        if arg.is_int(0) {
            local = true;
            continue;
        }
        match &arg.kind {
            // Reference to a helper table or the D table.
            ExprKind::Index { base, .. } if *base == diag.d_table => {}
            ExprKind::Index { base, .. } => helper_refs.push(base.clone()),
            // Direct linear-gap operand: T[i-1][j] + C or T[i][j-1] + C —
            // or the inlined diagonal expression itself.
            ExprKind::Bin { .. } => {
                if diag_from_expr(arg, &outer_var, &inner_var).is_some() {
                    continue; // the inlined D term
                }
                if let Some((base_expr, cname)) = arg.as_plus_const() {
                    if let ExprKind::Index { base, .. } = &base_expr.kind {
                        if *base == diag.t_table {
                            direct_gap_names.push(cname.to_string());
                            continue;
                        }
                    }
                }
                return Err(
                    AnalyzeErrorKind::UnclassifiedOperand(format!("{:?}", arg.kind)).at(arg.span),
                );
            }
            other => {
                return Err(
                    AnalyzeErrorKind::UnclassifiedOperand(format!("{other:?}")).at(arg.span)
                );
            }
        }
    }

    // --- affine: helper recurrences; linear: direct T-derived gaps ---
    let spec = if !helper_refs.is_empty() {
        let mut u_info = None; // (table, open, ext) — inner-var direction
        let mut l_info = None; // outer-var direction
        for href in &helper_refs {
            let rule = find_helper_rule(inner_body, href, &diag.t_table)
                .ok_or_else(|| AnalyzeErrorKind::BadHelperRule(href.clone()).at(nest.inner_span))?;
            // Direction: which variable is offset by -1 in the
            // self-reference subscripts.
            if rule.inner_dir(&inner_var) {
                u_info = Some(rule);
            } else if rule.outer_dir(&outer_var) {
                l_info = Some(rule);
            } else {
                return Err(AnalyzeErrorKind::BadHelperRule(href.clone()).at(rule.span));
            }
        }
        let u = u_info
            .ok_or_else(|| AnalyzeErrorKind::BadHelperRule("U".into()).at(nest.inner_span))?;
        let l = l_info
            .ok_or_else(|| AnalyzeErrorKind::BadHelperRule("L".into()).at(nest.inner_span))?;
        if u.open_name != l.open_name || u.ext_name != l.ext_name {
            return Err(AnalyzeErrorKind::AsymmetricGaps.at(u.span.to(l.span)));
        }
        KernelSpec {
            local,
            affine: true,
            t_table: diag.t_table,
            u_table: Some(u.table),
            l_table: Some(l.table),
            matrix_name: diag.matrix_name,
            query_name: diag.query_name,
            subject_name: diag.subject_name,
            gap_open_name: Some(u.open_name),
            gap_ext_name: u.ext_name,
        }
    } else {
        if direct_gap_names.len() != 2 {
            return Err(AnalyzeErrorKind::NoResultRule.at(result_value.span));
        }
        if direct_gap_names[0] != direct_gap_names[1] {
            return Err(AnalyzeErrorKind::AsymmetricGaps.at(result_value.span));
        }
        KernelSpec {
            local,
            affine: false,
            t_table: diag.t_table,
            u_table: None,
            l_table: None,
            matrix_name: diag.matrix_name,
            query_name: diag.query_name,
            subject_name: diag.subject_name,
            gap_open_name: None,
            gap_ext_name: direct_gap_names[0].clone(),
        }
    };

    // --- step 3: boundary validation for local kernels ---
    if spec.local {
        validate_local_boundaries(prog, &spec.t_table)?;
    }
    Ok(spec)
}

struct MainNest<'a> {
    outer_var: String,
    inner_var: String,
    body: &'a [Stmt],
    /// Span of the inner `for`, for "nothing matched inside here"
    /// diagnostics.
    inner_span: Span,
}

fn find_main_nest(prog: &[Stmt]) -> Option<MainNest<'_>> {
    for st in prog {
        if let StmtKind::For { var, body, .. } = &st.kind {
            for inner in body {
                if let StmtKind::For {
                    var: ivar,
                    body: ibody,
                    ..
                } = &inner.kind
                {
                    return Some(MainNest {
                        outer_var: var.clone(),
                        inner_var: ivar.clone(),
                        body: ibody,
                        inner_span: inner.span,
                    });
                }
            }
        }
    }
    None
}

struct DiagInfo {
    d_table: String,
    t_table: String,
    matrix_name: String,
    query_name: String,
    subject_name: String,
}

fn find_diag(body: &[Stmt], outer: &str, inner: &str) -> Option<DiagInfo> {
    // A diagonal rule may be a standalone assignment (Alg. 1's D) or
    // inlined as a max() operand of the result rule.
    for st in body {
        let StmtKind::Assign { table, value, .. } = &st.kind else {
            continue;
        };
        if let Some(args) = value.max_args() {
            for arg in args {
                if let Some(info) = diag_from_expr(arg, outer, inner) {
                    // Inlined: the "D table" is the result table itself,
                    // so the operand classifier treats it as covered.
                    return Some(DiagInfo {
                        d_table: table.clone(),
                        ..info
                    });
                }
            }
            continue;
        }
        if let Some(info) = diag_from_expr(value, outer, inner) {
            return Some(DiagInfo {
                d_table: table.clone(),
                ..info
            });
        }
    }
    None
}

/// Match `T[i-1][j-1] + M[ctoi(..)][ctoi(..)]` and extract the names.
fn diag_from_expr(value: &Expr, outer: &str, inner: &str) -> Option<DiagInfo> {
    {
        // Shape: T[i-1][j-1] + M[ctoi(..)][ctoi(..)]
        let ExprKind::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } = &value.kind
        else {
            return None;
        };
        let (diag_ref, matrix_ref) = match (&lhs.kind, &rhs.kind) {
            (ExprKind::Index { base: _, subs }, ExprKind::Index { .. }) if subs.len() == 2 => {
                (&**lhs, &**rhs)
            }
            _ => return None,
        };
        let ExprKind::Index { base: t, subs } = &diag_ref.kind else {
            return None;
        };
        if subs.len() != 2
            || subs[0].index_offset(outer) != Some(-1)
            || subs[1].index_offset(inner) != Some(-1)
        {
            return None;
        }
        let ExprKind::Index {
            base: matrix,
            subs: msubs,
        } = &matrix_ref.kind
        else {
            return None;
        };
        if msubs.len() != 2 {
            return None;
        }
        // Each matrix subscript is ctoi(ARRAY[var-1]).
        let arr = |e: &Expr| -> Option<(String, String)> {
            let ExprKind::Call { name, args } = &e.kind else {
                return None;
            };
            if name != "ctoi" || args.len() != 1 {
                return None;
            }
            let ExprKind::Index { base, subs } = &args[0].kind else {
                return None;
            };
            if subs.len() != 1 {
                return None;
            }
            let var = subs[0].as_ident().map(str::to_string).or_else(|| {
                // var - 1 shape
                if subs[0].index_offset(outer) == Some(-1) {
                    Some(outer.to_string())
                } else if subs[0].index_offset(inner) == Some(-1) {
                    Some(inner.to_string())
                } else {
                    None
                }
            })?;
            Some((base.clone(), var))
        };
        let (a0, v0) = arr(&msubs[0])?;
        let (a1, v1) = arr(&msubs[1])?;
        // The array indexed by the inner variable is the query.
        let (query_name, subject_name) = if v0 == inner && v1 == outer {
            (a0, a1)
        } else if v1 == inner && v0 == outer {
            (a1, a0)
        } else {
            return None;
        };
        Some(DiagInfo {
            d_table: String::new(), // caller fills in
            t_table: t.clone(),
            matrix_name: matrix.clone(),
            query_name,
            subject_name,
        })
    }
}

struct HelperRule {
    table: String,
    open_name: String,
    ext_name: String,
    /// Loop variable whose `-1` offset drives the self-recurrence;
    /// tells U (inner/query direction) from L (outer/subject).
    dir_var: Option<String>,
    /// Span of the recurrence statement, for diagnostics.
    span: Span,
}

impl HelperRule {
    fn inner_dir(&self, inner: &str) -> bool {
        self.dir_var.as_deref() == Some(inner)
    }
    fn outer_dir(&self, outer: &str) -> bool {
        self.dir_var.as_deref() == Some(outer)
    }
}

fn find_helper_rule(body: &[Stmt], table: &str, t_table: &str) -> Option<HelperRule> {
    for st in body {
        let StmtKind::Assign {
            table: lhs_table,
            value,
            ..
        } = &st.kind
        else {
            continue;
        };
        if lhs_table != table {
            continue;
        }
        let args = value.max_args()?;
        if args.len() != 2 {
            return None;
        }
        let mut open_name = None;
        let mut ext_name = None;
        let mut dir_var = None;
        for a in args {
            let (base_expr, cname) = a.as_plus_const()?;
            let ExprKind::Index { base, subs } = &base_expr.kind else {
                return None;
            };
            if subs.len() != 2 {
                return None;
            }
            // Which subscript carries the -1 offset?
            let offset_var = subs.iter().find_map(|s| {
                if let ExprKind::Bin { op, lhs, rhs } = &s.kind {
                    if *op == BinOp::Sub && rhs.is_int(1) {
                        return lhs.as_ident().map(str::to_string);
                    }
                }
                None
            })?;
            if base == table {
                ext_name = Some(cname.to_string());
                dir_var = Some(offset_var);
            } else if base == t_table {
                open_name = Some(cname.to_string());
            } else {
                return None;
            }
        }
        return Some(HelperRule {
            table: table.to_string(),
            open_name: open_name?,
            ext_name: ext_name?,
            dir_var,
            span: st.span,
        });
    }
    None
}

fn validate_local_boundaries(prog: &[Stmt], t_table: &str) -> Result<(), AnalyzeError> {
    // Every top-level init loop assignment to T must be the literal 0.
    for st in prog {
        let StmtKind::For { body, .. } = &st.kind else {
            continue;
        };
        // Skip the main nest (contains a For).
        if body.iter().any(|s| matches!(s.kind, StmtKind::For { .. })) {
            continue;
        }
        for inner in body {
            if let StmtKind::Assign { table, value, .. } = &inner.kind {
                if table == t_table && !value.is_int(0) {
                    return Err(AnalyzeErrorKind::BadBoundary(format!(
                        "local kernel initializes {t_table} boundary to {:?}, expected 0",
                        value.kind
                    ))
                    .at(value.span));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn spec_of(src: &str) -> KernelSpec {
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn alg1_extracts_sw_affine() {
        let spec = spec_of(crate::ALG1_SMITH_WATERMAN_AFFINE);
        assert!(spec.local, "the 0 operand makes it local");
        assert!(spec.affine, "U/L tables make it affine");
        assert_eq!(spec.t_table, "T");
        assert_eq!(spec.u_table.as_deref(), Some("U"));
        assert_eq!(spec.l_table.as_deref(), Some("L"));
        assert_eq!(spec.matrix_name, "BLOSUM62");
        assert_eq!(spec.query_name, "Q");
        assert_eq!(spec.subject_name, "S");
        assert_eq!(spec.gap_open_name.as_deref(), Some("GAP_OPEN"));
        assert_eq!(spec.gap_ext_name, "GAP_EXT");
    }

    #[test]
    fn nw_affine_is_global() {
        let spec = spec_of(crate::NEEDLEMAN_WUNSCH_AFFINE);
        assert!(!spec.local);
        assert!(spec.affine);
        assert_eq!(spec.label(), "nw-aff");
    }

    #[test]
    fn sw_linear_detected() {
        let spec = spec_of(crate::SMITH_WATERMAN_LINEAR);
        assert!(spec.local);
        assert!(!spec.affine, "no U/L tables → θ = 0 → linear");
        assert_eq!(spec.gap_open_name, None);
        assert_eq!(spec.gap_ext_name, "GAP_EXT");
    }

    #[test]
    fn nw_linear_detected() {
        let spec = spec_of(crate::NEEDLEMAN_WUNSCH_LINEAR);
        assert_eq!(spec.label(), "nw-lin");
    }

    #[test]
    fn missing_diagonal_is_an_error() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { T[i][j] = max(0, T[i][j-1] + G, T[i-1][j] + G); } }";
        let err = analyze(&parse_program(src).unwrap()).unwrap_err();
        assert_eq!(err.kind, AnalyzeErrorKind::NoDiagonalRule);
        // Points at the inner loop.
        let span = err.span.unwrap();
        assert!(src[span.start..span.end].starts_with("for (j"));
    }

    #[test]
    fn asymmetric_gap_constants_rejected() {
        let src = r#"
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + EXT_A, T[i-1][j] + OPEN);
        U[i][j] = max(U[i][j-1] + EXT_B, T[i][j-1] + OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, L[i][j], U[i][j], D[i][j]);
    }
}
"#;
        let err = analyze(&parse_program(src).unwrap()).unwrap_err();
        assert_eq!(err.kind, AnalyzeErrorKind::AsymmetricGaps);
        // Span covers both offending recurrences.
        let span = err.span.unwrap();
        let text = &src[span.start..span.end];
        assert!(text.contains("EXT_A") && text.contains("EXT_B"));
    }

    #[test]
    fn local_with_nonzero_boundary_rejected() {
        let src = r#"
for (i = 0; i < n + 1; i = i + 1) { T[0][i] = 5; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, T[i-1][j] + G, T[i][j-1] + G, D[i][j]);
    }
}
"#;
        let err = analyze(&parse_program(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, AnalyzeErrorKind::BadBoundary(_)));
        // Points at the literal `5`.
        let span = err.span.unwrap();
        assert_eq!(&src[span.start..span.end], "5");
    }

    #[test]
    fn unclassified_operand_renders_caret_diagnostic() {
        let src = "for (i = 1; i < n; i = i + 1) { for (j = 1; j < m; j = j + 1) { D[i][j] = T[i-1][j-1] + M[ctoi(S[i-1])][ctoi(Q[j-1])]; T[i][j] = max(D[i][j], W[i][j] * 2, T[i-1][j] + G, T[i][j-1] + G); } }";
        let err = analyze(&parse_program(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, AnalyzeErrorKind::UnclassifiedOperand(_)));
        let span = err.span.unwrap();
        assert_eq!(&src[span.start..span.end], "W[i][j] * 2");
        let rendered = err.render(src);
        assert!(rendered.contains("-->"), "has a location line: {rendered}");
        assert!(
            rendered.contains("^^^"),
            "has a caret underline: {rendered}"
        );
    }

    #[test]
    fn swapped_sequence_roles_still_resolve() {
        // Matrix subscripts in the other order: M[ctoi(Q[j-1])][ctoi(S[i-1])].
        let src = r#"
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        D[i][j] = T[i-1][j-1] + M[ctoi(Q[j-1])][ctoi(S[i-1])];
        T[i][j] = max(T[i-1][j] + G, T[i][j-1] + G, D[i][j]);
    }
}
"#;
        let spec = spec_of(src);
        assert_eq!(spec.query_name, "Q");
        assert_eq!(spec.subject_name, "S");
        assert_eq!(spec.matrix_name, "M");
    }
}

#[cfg(test)]
mod inline_diag_tests {
    use super::*;
    use crate::parser::parse_program;

    /// An SW-linear kernel with the diagonal expression inlined into
    /// the result max — no separate `D` assignment.
    const SW_LINEAR_INLINE: &str = r#"
for (i = 0; i < n + 1; i = i + 1) { T[0][i] = 0; }
for (j = 0; j < m + 1; j = j + 1) { T[j][0] = 0; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        T[i][j] = max(0, T[i-1][j] + GAP_EXT, T[i][j-1] + GAP_EXT,
                      T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])]);
    }
}
"#;

    #[test]
    fn inlined_diagonal_is_recognized() {
        let spec = analyze(&parse_program(SW_LINEAR_INLINE).unwrap()).unwrap();
        assert!(spec.local);
        assert!(!spec.affine);
        assert_eq!(spec.matrix_name, "BLOSUM62");
        assert_eq!(spec.query_name, "Q");
        assert_eq!(spec.subject_name, "S");
        assert_eq!(spec.gap_ext_name, "GAP_EXT");
    }

    #[test]
    fn inlined_diagonal_matches_separate_d_table() {
        let a = analyze(&parse_program(SW_LINEAR_INLINE).unwrap()).unwrap();
        let b = analyze(&parse_program(crate::SMITH_WATERMAN_LINEAR).unwrap()).unwrap();
        assert_eq!(a.local, b.local);
        assert_eq!(a.affine, b.affine);
        assert_eq!(a.gap_ext_name, b.gap_ext_name);
    }
}
