//! AST for the sequential-paradigm input language.
//!
//! The language is the minimal C-like subset needed to write Alg. 1
//! style kernels: `for` loops with `i = lo; i < hi; i = i + 1`
//! headers, assignments to subscripted tables, and integer
//! expressions with `max(...)` and `ctoi(...)` calls.

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Plain identifier (`GAP_EXT`, `i`, `n`).
    Ident(String),
    /// Subscripted table access: `T[i-1][j]`.
    Index {
        /// Table name.
        base: String,
        /// One entry per `[...]`.
        subs: Vec<Expr>,
    },
    /// Function call: `max(a, b, …)`, `ctoi(c)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target = value;` where target is a subscripted table.
    Assign {
        /// Table name being assigned.
        table: String,
        /// Subscript expressions.
        subs: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// `for (var = lo; var < hi; var = var + 1) body`.
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        body: Vec<Stmt>,
    },
}

impl Expr {
    /// True if this expression is the integer literal `v`.
    pub fn is_int(&self, v: i64) -> bool {
        matches!(self, Expr::Int(x) if *x == v)
    }

    /// If this is `Ident`, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Flatten nested `max(...)` calls into their argument list, or
    /// `None` if this is not a max call.
    pub fn max_args(&self) -> Option<Vec<&Expr>> {
        match self {
            Expr::Call { name, args } if name == "max" => {
                let mut out = Vec::new();
                for a in args {
                    if let Some(inner) = a.max_args() {
                        out.extend(inner);
                    } else {
                        out.push(a);
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Decompose `base_expr + const_name` (in either order) into
    /// `(base, constant_name)`. Used to spot `T[i-1][j] + GAP_OPEN`.
    pub fn as_plus_const(&self) -> Option<(&Expr, &str)> {
        if let Expr::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } = self
        {
            if let Some(name) = rhs.as_ident() {
                if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    return Some((lhs, name));
                }
            }
            if let Some(name) = lhs.as_ident() {
                if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    return Some((rhs, name));
                }
            }
        }
        None
    }

    /// For a table subscript like `i`, `i-1`, `j-1`: return the offset
    /// relative to the loop variable, or `None` if it is not of that
    /// shape.
    pub fn index_offset(&self, var: &str) -> Option<i64> {
        match self {
            Expr::Ident(s) if s == var => Some(0),
            Expr::Bin { op, lhs, rhs } => {
                let base = lhs.as_ident()?;
                if base != var {
                    return None;
                }
                if let Expr::Int(k) = **rhs {
                    match op {
                        BinOp::Sub => Some(-k),
                        BinOp::Add => Some(k),
                        BinOp::Mul => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(s: &str) -> Expr {
        Expr::Ident(s.to_string())
    }

    #[test]
    fn max_args_flattens_nesting() {
        let inner = Expr::Call {
            name: "max".into(),
            args: vec![Expr::Int(1), Expr::Int(2)],
        };
        let outer = Expr::Call {
            name: "max".into(),
            args: vec![Expr::Int(0), inner],
        };
        let args = outer.max_args().unwrap();
        assert_eq!(args.len(), 3);
        assert!(args[0].is_int(0));
        assert!(args[2].is_int(2));
    }

    #[test]
    fn as_plus_const_both_orders() {
        let t = Expr::Index {
            base: "T".into(),
            subs: vec![ident("i"), ident("j")],
        };
        let e1 = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(t.clone()),
            rhs: Box::new(ident("GAP_OPEN")),
        };
        let (base, name) = e1.as_plus_const().unwrap();
        assert_eq!(name, "GAP_OPEN");
        assert!(matches!(base, Expr::Index { .. }));

        let e2 = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(ident("GAP_EXT")),
            rhs: Box::new(t),
        };
        assert_eq!(e2.as_plus_const().unwrap().1, "GAP_EXT");
    }

    #[test]
    fn lowercase_ident_is_not_a_constant() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(ident("x")),
            rhs: Box::new(ident("y")),
        };
        assert!(e.as_plus_const().is_none());
    }

    #[test]
    fn index_offset_shapes() {
        let i = ident("i");
        assert_eq!(i.index_offset("i"), Some(0));
        assert_eq!(i.index_offset("j"), None);
        let im1 = Expr::Bin {
            op: BinOp::Sub,
            lhs: Box::new(ident("i")),
            rhs: Box::new(Expr::Int(1)),
        };
        assert_eq!(im1.index_offset("i"), Some(-1));
        assert_eq!(Expr::Int(0).index_offset("i"), None);
    }
}
