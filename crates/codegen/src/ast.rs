//! AST for the sequential-paradigm input language.
//!
//! The language is the minimal C-like subset needed to write Alg. 1
//! style kernels: `for` loops with `i = lo; i < hi; i = i + 1`
//! headers, assignments to subscripted tables, and integer
//! expressions with `max(...)` and `ctoi(...)` calls.
//!
//! Every [`Expr`] and [`Stmt`] carries a byte-offset [`Span`] into the
//! original source, so the analyzer and the dataflow verifier
//! (`aalign-analyzer`) can point diagnostics at the offending text.

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Zero-width span at a single offset.
    pub fn point(pos: usize) -> Self {
        Self {
            start: pos,
            end: pos,
        }
    }

    /// The placeholder span for synthesized nodes (tests, builders).
    pub fn dummy() -> Self {
        Self::default()
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based `(line, column)` of the span start within `src`.
    /// Columns count bytes, which is exact for the ASCII-only kernel
    /// language and a best effort elsewhere.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src.as_bytes()[..self.start.min(src.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
        (line, col)
    }
}

impl core::fmt::Display for Span {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An expression: a [`kind`](ExprKind) plus its source [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Where it came from.
    pub span: Span,
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Plain identifier (`GAP_EXT`, `i`, `n`).
    Ident(String),
    /// Subscripted table access: `T[i-1][j]`.
    Index {
        /// Table name.
        base: String,
        /// One entry per `[...]`.
        subs: Vec<Expr>,
    },
    /// Function call: `max(a, b, …)`, `ctoi(c)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
}

/// A statement: a [`kind`](StmtKind) plus its source [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Where it came from.
    pub span: Span,
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `target = value;` where target is a subscripted table.
    Assign {
        /// Table name being assigned.
        table: String,
        /// Subscript expressions.
        subs: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// `for (var = lo; var < hi; var = var + 1) body`.
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        body: Vec<Stmt>,
    },
}

impl Expr {
    /// Expression with a dummy span (builders, tests).
    pub fn synthetic(kind: ExprKind) -> Self {
        Self {
            kind,
            span: Span::dummy(),
        }
    }

    /// True if this expression is the integer literal `v`.
    pub fn is_int(&self, v: i64) -> bool {
        matches!(self.kind, ExprKind::Int(x) if x == v)
    }

    /// If this is `Ident`, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Flatten nested `max(...)` calls into their argument list, or
    /// `None` if this is not a max call.
    pub fn max_args(&self) -> Option<Vec<&Expr>> {
        match &self.kind {
            ExprKind::Call { name, args } if name == "max" => {
                let mut out = Vec::new();
                for a in args {
                    if let Some(inner) = a.max_args() {
                        out.extend(inner);
                    } else {
                        out.push(a);
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Decompose `base_expr + const_name` (in either order) into
    /// `(base, constant_name)`. Used to spot `T[i-1][j] + GAP_OPEN`.
    pub fn as_plus_const(&self) -> Option<(&Expr, &str)> {
        if let ExprKind::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } = &self.kind
        {
            if let Some(name) = rhs.as_ident() {
                if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    return Some((lhs, name));
                }
            }
            if let Some(name) = lhs.as_ident() {
                if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                    return Some((rhs, name));
                }
            }
        }
        None
    }

    /// For a table subscript like `i`, `i-1`, `j-1`: return the offset
    /// relative to the loop variable, or `None` if it is not of that
    /// shape.
    pub fn index_offset(&self, var: &str) -> Option<i64> {
        match &self.kind {
            ExprKind::Ident(s) if s == var => Some(0),
            ExprKind::Bin { op, lhs, rhs } => {
                let base = lhs.as_ident()?;
                if base != var {
                    return None;
                }
                if let ExprKind::Int(k) = rhs.kind {
                    match op {
                        BinOp::Sub => Some(-k),
                        BinOp::Add => Some(k),
                        BinOp::Mul => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl Stmt {
    /// Statement with a dummy span (builders, tests).
    pub fn synthetic(kind: StmtKind) -> Self {
        Self {
            kind,
            span: Span::dummy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(s: &str) -> Expr {
        Expr::synthetic(ExprKind::Ident(s.to_string()))
    }

    fn int(v: i64) -> Expr {
        Expr::synthetic(ExprKind::Int(v))
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::synthetic(ExprKind::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    #[test]
    fn max_args_flattens_nesting() {
        let inner = Expr::synthetic(ExprKind::Call {
            name: "max".into(),
            args: vec![int(1), int(2)],
        });
        let outer = Expr::synthetic(ExprKind::Call {
            name: "max".into(),
            args: vec![int(0), inner],
        });
        let args = outer.max_args().unwrap();
        assert_eq!(args.len(), 3);
        assert!(args[0].is_int(0));
        assert!(args[2].is_int(2));
    }

    #[test]
    fn as_plus_const_both_orders() {
        let t = Expr::synthetic(ExprKind::Index {
            base: "T".into(),
            subs: vec![ident("i"), ident("j")],
        });
        let e1 = bin(BinOp::Add, t.clone(), ident("GAP_OPEN"));
        let (base, name) = e1.as_plus_const().unwrap();
        assert_eq!(name, "GAP_OPEN");
        assert!(matches!(base.kind, ExprKind::Index { .. }));

        let e2 = bin(BinOp::Add, ident("GAP_EXT"), t);
        assert_eq!(e2.as_plus_const().unwrap().1, "GAP_EXT");
    }

    #[test]
    fn lowercase_ident_is_not_a_constant() {
        let e = bin(BinOp::Add, ident("x"), ident("y"));
        assert!(e.as_plus_const().is_none());
    }

    #[test]
    fn index_offset_shapes() {
        let i = ident("i");
        assert_eq!(i.index_offset("i"), Some(0));
        assert_eq!(i.index_offset("j"), None);
        let im1 = bin(BinOp::Sub, ident("i"), int(1));
        assert_eq!(im1.index_offset("i"), Some(-1));
        assert_eq!(int(0).index_offset("i"), None);
    }

    #[test]
    fn span_line_col_is_one_based() {
        let src = "ab\ncd ef\n";
        assert_eq!(Span::point(0).line_col(src), (1, 1));
        assert_eq!(Span::point(3).line_col(src), (2, 1));
        assert_eq!(Span::point(6).line_col(src), (2, 4));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }
}
