//! Numeric interpretation of a [`KernelSpec`].
//!
//! Binding the spec's symbolic gap constants yields an
//! [`AlignConfig`], which runs through the same runtime kernels the
//! emitter specializes. This closes the loop for testing: sequential
//! text in → analysis → config → vector kernels → scores that must
//! match a directly constructed configuration.

use aalign_bio::SubstMatrix;
use aalign_core::config::{AlignConfig, AlignKind, GapModel};

use crate::emit::GapBindings;
use crate::spec::KernelSpec;

/// Errors binding a spec to a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// β must be negative.
    NonNegativeExtension(i32),
    /// θ (= open − ext) must be ≤ 0 under the paper's convention
    /// that `GAP_OPEN` already includes one extension.
    PositiveTheta(i32),
}

impl core::fmt::Display for BindError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonNegativeExtension(v) => {
                write!(f, "gap extension must be negative, got {v}")
            }
            Self::PositiveTheta(v) => write!(f, "derived θ must be ≤ 0, got {v}"),
        }
    }
}

impl std::error::Error for BindError {}

impl GapBindings {
    /// Validate these bindings under the paper's convention (see the
    /// [`GapBindings`] type docs): `gap_ext < 0` **strictly** (a
    /// non-negative extension makes unbounded gaps free), and for
    /// affine kernels θ ≤ 0 **inclusive** — the θ = 0 boundary
    /// (`gap_open == gap_ext`) is the legal degenerate-to-linear
    /// edge, accepted everywhere these bindings are consumed.
    pub fn theta_check(&self, affine: bool) -> Result<(), BindError> {
        if self.gap_ext >= 0 {
            return Err(BindError::NonNegativeExtension(self.gap_ext));
        }
        if affine && self.theta() > 0 {
            return Err(BindError::PositiveTheta(self.theta()));
        }
        Ok(())
    }
}

/// Bind constants and produce the runnable configuration.
pub fn spec_to_config(
    spec: &KernelSpec,
    bind: GapBindings,
    matrix: &SubstMatrix,
) -> Result<AlignConfig, BindError> {
    bind.theta_check(spec.affine)?;
    let gap = if spec.affine {
        GapModel::affine(bind.theta(), bind.gap_ext)
    } else {
        GapModel::linear(bind.gap_ext)
    };
    let kind = if spec.local {
        AlignKind::Local
    } else {
        AlignKind::Global
    };
    Ok(AlignConfig::new(kind, gap, matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse_program};
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
    use aalign_core::paradigm::paradigm_dp;
    use aalign_core::{Aligner, Strategy};

    fn bind() -> GapBindings {
        GapBindings {
            gap_open: -12,
            gap_ext: -2,
        }
    }

    /// The end-to-end property: analyzing Alg. 1 and running the
    /// extracted config through the vector kernels gives the same
    /// scores as a hand-built SW-affine configuration.
    #[test]
    fn alg1_pipeline_matches_handwritten_config() {
        let spec = analyze(&parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
        let cfg = spec_to_config(&spec, bind(), &BLOSUM62).unwrap();
        let hand = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

        let mut rng = seeded_rng(404);
        let q = named_query(&mut rng, 90);
        for spec_pair in [
            PairSpec::new(Level::Hi, Level::Hi),
            PairSpec::new(Level::Lo, Level::Lo),
        ] {
            let s = spec_pair.generate(&mut rng, &q).subject;
            let want = paradigm_dp(&hand, &q, &s).score;
            for strat in [
                Strategy::StripedIterate,
                Strategy::StripedScan,
                Strategy::Hybrid,
            ] {
                let got = Aligner::new(cfg.clone())
                    .with_strategy(strat)
                    .align(&q, &s)
                    .unwrap()
                    .score;
                assert_eq!(got, want, "{strat:?}");
            }
        }
    }

    #[test]
    fn all_four_builtin_kernels_produce_correct_configs() {
        let cases = [
            (crate::ALG1_SMITH_WATERMAN_AFFINE, "sw-aff"),
            (crate::NEEDLEMAN_WUNSCH_AFFINE, "nw-aff"),
            (crate::SMITH_WATERMAN_LINEAR, "sw-lin"),
            (crate::NEEDLEMAN_WUNSCH_LINEAR, "nw-lin"),
        ];
        for (src, label) in cases {
            let spec = analyze(&parse_program(src).unwrap()).unwrap();
            assert_eq!(spec.label(), label);
            let cfg = spec_to_config(&spec, bind(), &BLOSUM62).unwrap();
            assert_eq!(cfg.label(), label);
        }
    }

    /// The θ = 0 boundary (`gap_open == gap_ext`) is legal: the
    /// affine system degenerates to linear, and the degenerate config
    /// scores identically to the genuinely linear one.
    #[test]
    fn theta_zero_boundary_accepted_and_degenerates_to_linear() {
        let spec = analyze(&parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
        let edge = GapBindings {
            gap_open: -2,
            gap_ext: -2,
        };
        assert_eq!(edge.theta(), 0);
        assert_eq!(edge.theta_check(true), Ok(()));
        let cfg = spec_to_config(&spec, edge, &BLOSUM62).unwrap();
        assert_eq!(cfg.gap, GapModel::affine(0, -2));

        let linear = AlignConfig::local(GapModel::linear(-2), &BLOSUM62);
        let mut rng = seeded_rng(77);
        let q = named_query(&mut rng, 60);
        let s = PairSpec::new(Level::Md, Level::Md)
            .generate(&mut rng, &q)
            .subject;
        assert_eq!(
            paradigm_dp(&cfg, &q, &s).score,
            paradigm_dp(&linear, &q, &s).score,
            "θ = 0 affine must score exactly like linear"
        );
    }

    /// The two `BindError` checks treat their boundaries
    /// consistently: extension is strict (0 rejected — free unbounded
    /// gaps), θ is inclusive (0 accepted — the degenerate edge).
    #[test]
    fn boundary_strictness_is_consistent() {
        for affine in [false, true] {
            assert_eq!(
                GapBindings {
                    gap_open: -2,
                    gap_ext: 0
                }
                .theta_check(affine),
                Err(BindError::NonNegativeExtension(0)),
                "ext = 0 must be rejected (affine={affine})"
            );
        }
        // θ = 0 accepted for affine; θ only matters when affine.
        assert_eq!(
            GapBindings {
                gap_open: -3,
                gap_ext: -3
            }
            .theta_check(true),
            Ok(())
        );
        // A positive θ is rejected for affine but irrelevant for
        // linear kernels (GAP_OPEN is unused there).
        let pos = GapBindings {
            gap_open: -1,
            gap_ext: -5,
        };
        assert_eq!(pos.theta_check(true), Err(BindError::PositiveTheta(4)));
        assert_eq!(pos.theta_check(false), Ok(()));
        let spec = analyze(&parse_program(crate::SMITH_WATERMAN_LINEAR).unwrap()).unwrap();
        assert!(spec_to_config(&spec, pos, &BLOSUM62).is_ok());
    }

    #[test]
    fn bad_bindings_rejected() {
        let spec = analyze(&parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
        assert_eq!(
            spec_to_config(
                &spec,
                GapBindings {
                    gap_open: -12,
                    gap_ext: 1
                },
                &BLOSUM62
            )
            .unwrap_err(),
            BindError::NonNegativeExtension(1)
        );
        assert_eq!(
            spec_to_config(
                &spec,
                GapBindings {
                    gap_open: -1,
                    gap_ext: -5
                },
                &BLOSUM62
            )
            .unwrap_err(),
            BindError::PositiveTheta(4)
        );
    }
}
