//! Numeric interpretation of a [`KernelSpec`].
//!
//! Binding the spec's symbolic gap constants yields an
//! [`AlignConfig`], which runs through the same runtime kernels the
//! emitter specializes. This closes the loop for testing: sequential
//! text in → analysis → config → vector kernels → scores that must
//! match a directly constructed configuration.

use aalign_bio::SubstMatrix;
use aalign_core::config::{AlignConfig, AlignKind, GapModel};

use crate::emit::GapBindings;
use crate::spec::KernelSpec;

/// Errors binding a spec to a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// β must be negative.
    NonNegativeExtension(i32),
    /// θ (= open − ext) must be ≤ 0 under the paper's convention
    /// that `GAP_OPEN` already includes one extension.
    PositiveTheta(i32),
}

impl core::fmt::Display for BindError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonNegativeExtension(v) => {
                write!(f, "gap extension must be negative, got {v}")
            }
            Self::PositiveTheta(v) => write!(f, "derived θ must be ≤ 0, got {v}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Bind constants and produce the runnable configuration.
pub fn spec_to_config(
    spec: &KernelSpec,
    bind: GapBindings,
    matrix: &SubstMatrix,
) -> Result<AlignConfig, BindError> {
    if bind.gap_ext >= 0 {
        return Err(BindError::NonNegativeExtension(bind.gap_ext));
    }
    let gap = if spec.affine {
        let theta = bind.gap_open - bind.gap_ext;
        if theta > 0 {
            return Err(BindError::PositiveTheta(theta));
        }
        GapModel::affine(theta, bind.gap_ext)
    } else {
        GapModel::linear(bind.gap_ext)
    };
    let kind = if spec.local {
        AlignKind::Local
    } else {
        AlignKind::Global
    };
    Ok(AlignConfig::new(kind, gap, matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse_program};
    use aalign_bio::matrices::BLOSUM62;
    use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
    use aalign_core::paradigm::paradigm_dp;
    use aalign_core::{Aligner, Strategy};

    fn bind() -> GapBindings {
        GapBindings {
            gap_open: -12,
            gap_ext: -2,
        }
    }

    /// The end-to-end property: analyzing Alg. 1 and running the
    /// extracted config through the vector kernels gives the same
    /// scores as a hand-built SW-affine configuration.
    #[test]
    fn alg1_pipeline_matches_handwritten_config() {
        let spec = analyze(&parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
        let cfg = spec_to_config(&spec, bind(), &BLOSUM62).unwrap();
        let hand = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

        let mut rng = seeded_rng(404);
        let q = named_query(&mut rng, 90);
        for spec_pair in [
            PairSpec::new(Level::Hi, Level::Hi),
            PairSpec::new(Level::Lo, Level::Lo),
        ] {
            let s = spec_pair.generate(&mut rng, &q).subject;
            let want = paradigm_dp(&hand, &q, &s).score;
            for strat in [
                Strategy::StripedIterate,
                Strategy::StripedScan,
                Strategy::Hybrid,
            ] {
                let got = Aligner::new(cfg.clone())
                    .with_strategy(strat)
                    .align(&q, &s)
                    .unwrap()
                    .score;
                assert_eq!(got, want, "{strat:?}");
            }
        }
    }

    #[test]
    fn all_four_builtin_kernels_produce_correct_configs() {
        let cases = [
            (crate::ALG1_SMITH_WATERMAN_AFFINE, "sw-aff"),
            (crate::NEEDLEMAN_WUNSCH_AFFINE, "nw-aff"),
            (crate::SMITH_WATERMAN_LINEAR, "sw-lin"),
            (crate::NEEDLEMAN_WUNSCH_LINEAR, "nw-lin"),
        ];
        for (src, label) in cases {
            let spec = analyze(&parse_program(src).unwrap()).unwrap();
            assert_eq!(spec.label(), label);
            let cfg = spec_to_config(&spec, bind(), &BLOSUM62).unwrap();
            assert_eq!(cfg.label(), label);
        }
    }

    #[test]
    fn bad_bindings_rejected() {
        let spec = analyze(&parse_program(crate::ALG1_SMITH_WATERMAN_AFFINE).unwrap()).unwrap();
        assert_eq!(
            spec_to_config(
                &spec,
                GapBindings {
                    gap_open: -12,
                    gap_ext: 1
                },
                &BLOSUM62
            )
            .unwrap_err(),
            BindError::NonNegativeExtension(1)
        );
        assert_eq!(
            spec_to_config(
                &spec,
                GapBindings {
                    gap_open: -1,
                    gap_ext: -5
                },
                &BLOSUM62
            )
            .unwrap_err(),
            BindError::PositiveTheta(4)
        );
    }
}
