//! # aalign-codegen — the AAlign code-translation front end
//!
//! The paper's framework ingests *sequential* alignment code that
//! follows the generalized paradigm, analyzes its AST (with Clang in
//! the original), extracts the Table II configuration, and rewrites
//! vector code constructs into a specialized kernel (Sec. V-D).
//!
//! This crate is that pipeline in Rust, for a small C-like sequential
//! language sufficient to express Alg. 1-style kernels:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the front end;
//! * [`mod@analyze`] — the four-step extraction of Sec. V-D
//!   (local/global, linear/affine, boundary inits, gap constants);
//! * [`spec`] — the extracted [`spec::KernelSpec`];
//! * [`emit`] — renders specialized Rust kernel source from a spec;
//! * [`interpret`] — binds constants and runs the spec through the
//!   runtime kernels, so tests can verify the analysis numerically.

pub mod analyze;
pub mod ast;
pub mod emit;
pub mod interpret;
pub mod lexer;
pub mod parser;
pub mod spec;

pub use analyze::{analyze, AnalyzeError, AnalyzeErrorKind};
pub use ast::Span;
pub use emit::emit_rust_kernel;
pub use interpret::spec_to_config;
pub use parser::{parse_program, ParseError};
pub use spec::KernelSpec;

/// The canonical Smith-Waterman (affine) sequential kernel — the
/// paper's Alg. 1 in this crate's input language. Useful as a demo
/// input and in tests.
pub const ALG1_SMITH_WATERMAN_AFFINE: &str = r#"
# Sequential Smith-Waterman with affine gaps (paper Alg. 1).
for (i = 0; i < n + 1; i = i + 1) {
    T[0][i] = 0; U[0][i] = 0; L[0][i] = 0;
}
for (j = 0; j < m + 1; j = j + 1) {
    T[j][0] = 0; U[j][0] = 0; L[j][0] = 0;
}
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        U[i][j] = max(U[i][j-1] + GAP_EXT, T[i][j-1] + GAP_OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, L[i][j], U[i][j], D[i][j]);
    }
}
"#;

/// Needleman-Wunsch (affine): global boundaries, no 0 operand.
pub const NEEDLEMAN_WUNSCH_AFFINE: &str = r#"
for (i = 1; i < n + 1; i = i + 1) {
    T[i][0] = GAP_OPEN + (i - 1) * GAP_EXT;
}
for (j = 1; j < m + 1; j = j + 1) {
    T[0][j] = GAP_OPEN + (j - 1) * GAP_EXT;
}
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        L[i][j] = max(L[i-1][j] + GAP_EXT, T[i-1][j] + GAP_OPEN);
        U[i][j] = max(U[i][j-1] + GAP_EXT, T[i][j-1] + GAP_OPEN);
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(L[i][j], U[i][j], D[i][j]);
    }
}
"#;

/// Smith-Waterman with a linear gap system (no U/L tables).
pub const SMITH_WATERMAN_LINEAR: &str = r#"
for (i = 0; i < n + 1; i = i + 1) { T[0][i] = 0; }
for (j = 0; j < m + 1; j = j + 1) { T[j][0] = 0; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(0, T[i-1][j] + GAP_EXT, T[i][j-1] + GAP_EXT, D[i][j]);
    }
}
"#;

/// Needleman-Wunsch with a linear gap system.
pub const NEEDLEMAN_WUNSCH_LINEAR: &str = r#"
for (i = 1; i < n + 1; i = i + 1) { T[i][0] = i * GAP_EXT; }
for (j = 1; j < m + 1; j = j + 1) { T[0][j] = j * GAP_EXT; }
for (i = 1; i < n + 1; i = i + 1) {
    for (j = 1; j < m + 1; j = j + 1) {
        D[i][j] = T[i-1][j-1] + BLOSUM62[ctoi(S[i-1])][ctoi(Q[j-1])];
        T[i][j] = max(T[i-1][j] + GAP_EXT, T[i][j-1] + GAP_EXT, D[i][j]);
    }
}
"#;
