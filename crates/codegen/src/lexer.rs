//! Tokenizer for the sequential-paradigm language.

/// A token with its source position (half-open byte range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub pos: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Int(i64),
    /// `for`
    KwFor,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Lt,
    Plus,
    Minus,
    Star,
    Eof,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending byte.
    pub byte: u8,
    /// Byte offset.
    pub pos: usize,
}

impl core::fmt::Display for LexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unexpected byte {:?} at offset {}",
            self.byte as char, self.pos
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize the input. `#` and `//` start line comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push(&mut out, TokKind::LParen, &mut i),
            b')' => push(&mut out, TokKind::RParen, &mut i),
            b'{' => push(&mut out, TokKind::LBrace, &mut i),
            b'}' => push(&mut out, TokKind::RBrace, &mut i),
            b'[' => push(&mut out, TokKind::LBracket, &mut i),
            b']' => push(&mut out, TokKind::RBracket, &mut i),
            b';' => push(&mut out, TokKind::Semi, &mut i),
            b',' => push(&mut out, TokKind::Comma, &mut i),
            b'=' => push(&mut out, TokKind::Assign, &mut i),
            b'<' => push(&mut out, TokKind::Lt, &mut i),
            b'+' => push(&mut out, TokKind::Plus, &mut i),
            b'-' => push(&mut out, TokKind::Minus, &mut i),
            b'*' => push(&mut out, TokKind::Star, &mut i),
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[start..i].parse().expect("digits parse");
                out.push(Token {
                    kind: TokKind::Int(v),
                    pos: start,
                    end: i,
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = if word == "for" {
                    TokKind::KwFor
                } else {
                    TokKind::Ident(word.to_string())
                };
                out.push(Token {
                    kind,
                    pos: start,
                    end: i,
                });
            }
            other => {
                return Err(LexError {
                    byte: other,
                    pos: i,
                })
            }
        }
    }
    out.push(Token {
        kind: TokKind::Eof,
        pos: bytes.len(),
        end: bytes.len(),
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, kind: TokKind, i: &mut usize) {
    out.push(Token {
        kind,
        pos: *i,
        end: *i + 1,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_assignment() {
        let toks = lex("T[i][j] = max(0, D[i][j]);").unwrap();
        let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokKind::Ident(s) if s == "T"));
        assert_eq!(kinds[1], &TokKind::LBracket);
        assert!(kinds.contains(&&TokKind::Comma));
        assert_eq!(kinds.last().unwrap(), &&TokKind::Eof);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = lex("# comment\n  x = 1; // trailing\n").unwrap();
        assert!(matches!(&toks[0].kind, TokKind::Ident(s) if s == "x"));
        assert_eq!(toks.len(), 5); // x = 1 ; EOF
    }

    #[test]
    fn keyword_for_is_recognized() {
        let toks = lex("for (i = 0; i < n; i = i + 1) {}").unwrap();
        assert_eq!(toks[0].kind, TokKind::KwFor);
        // `fortune` is an identifier, not the keyword.
        let toks = lex("fortune").unwrap();
        assert!(matches!(&toks[0].kind, TokKind::Ident(s) if s == "fortune"));
    }

    #[test]
    fn rejects_unknown_bytes() {
        let err = lex("x = @;").unwrap_err();
        assert_eq!(err.byte, b'@');
        assert_eq!(err.pos, 4);
    }

    #[test]
    fn positions_are_byte_ranges() {
        let toks = lex("ab = 12;").unwrap();
        assert_eq!((toks[0].pos, toks[0].end), (0, 2));
        assert_eq!((toks[1].pos, toks[1].end), (3, 4));
        assert_eq!((toks[2].pos, toks[2].end), (5, 7));
        assert_eq!((toks[3].pos, toks[3].end), (7, 8));
    }
}
