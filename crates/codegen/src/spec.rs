//! The extracted kernel specification.
//!
//! [`KernelSpec`] is what the analyzer recovers from a sequential
//! kernel — the information Table II's configurable expressions are
//! rewritten from. Gap penalties stay *symbolic* (constant names from
//! the source); [`crate::interpret::spec_to_config`] binds them to
//! values.

/// The configuration extracted from a sequential paradigm kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Local (`max` includes the literal 0) or global.
    pub local: bool,
    /// Affine (separate U/L recurrences) or linear.
    pub affine: bool,
    /// Result table name (`T`).
    pub t_table: String,
    /// Query-direction helper table (`U`), affine only.
    pub u_table: Option<String>,
    /// Subject-direction helper table (`L`), affine only.
    pub l_table: Option<String>,
    /// Substitution matrix name (`BLOSUM62`).
    pub matrix_name: String,
    /// Query array name (`Q`).
    pub query_name: String,
    /// Subject array name (`S`).
    pub subject_name: String,
    /// Combined open constant (θ+β, the paper's `GAP_OPEN`); `None`
    /// for linear systems.
    pub gap_open_name: Option<String>,
    /// Extension constant (β, the paper's `GAP_EXT`).
    pub gap_ext_name: String,
}

impl KernelSpec {
    /// Paper-style label, e.g. `sw-aff`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            if self.local { "sw" } else { "nw" },
            if self.affine { "aff" } else { "lin" }
        )
    }

    /// A Rust-identifier-safe name for generated items.
    pub fn fn_stem(&self) -> String {
        self.label().replace('-', "_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_stems() {
        let spec = KernelSpec {
            local: true,
            affine: true,
            t_table: "T".into(),
            u_table: Some("U".into()),
            l_table: Some("L".into()),
            matrix_name: "BLOSUM62".into(),
            query_name: "Q".into(),
            subject_name: "S".into(),
            gap_open_name: Some("GAP_OPEN".into()),
            gap_ext_name: "GAP_EXT".into(),
        };
        assert_eq!(spec.label(), "sw-aff");
        assert_eq!(spec.fn_stem(), "sw_aff");
    }
}
