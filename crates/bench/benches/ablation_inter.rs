//! Ablation: intra-sequence (striped hybrid) vs inter-sequence
//! (lane-per-subject) database search, by subject length.
//!
//! Measured shape on the development host: intra wins at every
//! subject length — the inter kernel's portable scalar gather costs
//! more than the striped kernels' correction machinery saves. The
//! bench exists to keep that trade-off visible; see
//! `aalign_core::inter` docs for what a production inter engine does
//! differently (byte lanes + SIMD-shuffled profiles).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, random_protein, seeded_rng};
use aalign_bio::SeqDatabase;
use aalign_core::{AlignConfig, Aligner, GapModel, Strategy};
use aalign_par::{search_database, search_database_inter, SearchOptions};

fn bench_inter(c: &mut Criterion) {
    let mut rng = seeded_rng(7000);
    let query = named_query(&mut rng, 200);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut group = c.benchmark_group("ablation/intra-vs-inter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &subject_len in &[30usize, 100, 400, 1600] {
        // Constant total residues so the comparison is fair.
        let count = (48_000 / subject_len).max(16);
        let db = SeqDatabase::new(
            (0..count)
                .map(|i| random_protein(&mut rng, format!("s{i}"), subject_len))
                .collect(),
        );
        let intra = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
        group.bench_with_input(
            BenchmarkId::new("intra-hybrid", subject_len),
            &subject_len,
            |b, _| {
                b.iter(|| {
                    search_database(
                        &intra,
                        &query,
                        &db,
                        SearchOptions::new().threads(1).top_n(5),
                    )
                    .unwrap()
                    .hits
                    .len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("inter-lanes", subject_len),
            &subject_len,
            |b, _| {
                b.iter(|| {
                    search_database_inter(
                        &cfg,
                        &query,
                        &db,
                        SearchOptions::new().threads(1).top_n(5),
                    )
                    .unwrap()
                    .hits
                    .len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inter);
criterion_main!(benches);
