//! Criterion version of Fig. 9: sequential vs striped-iterate vs
//! striped-scan, per paradigm configuration and platform.
//!
//! The `fig9` harness binary prints the paper-style table; this bench
//! provides statistically grounded per-kernel timings.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_bench::harness::{four_configs, Platform};
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_core::{AlignScratch, Aligner, Strategy, WidthPolicy};

fn bench_fig9(c: &mut Criterion) {
    let mut rng = seeded_rng(9);
    let subject = named_query(&mut rng, 282);
    let queries: Vec<_> = [100usize, 282, 1000]
        .iter()
        .map(|&l| named_query(&mut rng, l))
        .collect();

    for cfg in four_configs() {
        for platform in Platform::ALL {
            let mut group = c.benchmark_group(format!("fig9/{}/{}", cfg.label(), platform.label()));
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(200))
                .measurement_time(Duration::from_millis(600));
            for q in &queries {
                let seq = Aligner::new(cfg.clone()).with_strategy(Strategy::Sequential);
                group.bench_with_input(BenchmarkId::new("sequential", q.id()), q, |b, q| {
                    b.iter(|| seq.align(q, &subject).unwrap().score);
                });
                for strat in [Strategy::StripedIterate, Strategy::StripedScan] {
                    let al = Aligner::new(cfg.clone())
                        .with_strategy(strat)
                        .with_isa(platform.isa())
                        .with_width(WidthPolicy::Fixed32);
                    let pq = al.prepare(q).unwrap();
                    let mut scratch = AlignScratch::new();
                    group.bench_with_input(BenchmarkId::new(strat.short(), q.id()), q, |b, _| {
                        b.iter(|| {
                            al.align_prepared(&pq, &subject, &mut scratch)
                                .unwrap()
                                .score
                        });
                    });
                }
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
