//! Criterion version of Fig. 2: the motivating iterate/scan flips on
//! the 512-bit platform.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_bench::harness::Platform;
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};

fn bench_fig2(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let query = named_query(&mut rng, 600);
    let similar = PairSpec::new(Level::Hi, Level::Hi)
        .generate(&mut rng, &query)
        .subject;
    let dissimilar = named_query(&mut rng, 600);

    let cases = [
        (
            "sw-aff/similar",
            AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62),
            &similar,
        ),
        (
            "sw-aff/dissimilar",
            AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62),
            &dissimilar,
        ),
        (
            "nw-aff/similar",
            AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62),
            &similar,
        ),
        (
            "sw-lin/similar",
            AlignConfig::local(GapModel::linear(-4), &BLOSUM62),
            &similar,
        ),
    ];

    let mut group = c.benchmark_group("fig2/mic(512b)");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (label, cfg, subject) in cases {
        for strat in [Strategy::StripedIterate, Strategy::StripedScan] {
            let al = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_isa(Platform::Mic.isa())
                .with_width(WidthPolicy::Fixed32);
            let pq = al.prepare(&query).unwrap();
            let mut scratch = AlignScratch::new();
            group.bench_with_input(BenchmarkId::new(strat.short(), label), subject, |b, s| {
                b.iter(|| al.align_prepared(&pq, s, &mut scratch).unwrap().score);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
