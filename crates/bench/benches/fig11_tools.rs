//! Criterion version of Fig. 11: AAlign SW-affine database search vs
//! the SWPS3-like and SWAPHI-like comparators (small database; the
//! `fig11` binary runs the full-size sweep).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_baselines::swps3_like::{Swps3Like, Swps3Scratch};
use aalign_baselines::SwaphiLike;
use aalign_bench::harness::Platform;
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_par::{search_database, SearchOptions};

fn bench_fig11(c: &mut Criterion) {
    let db = swissprot_like_db(11, 200);
    let mut rng = seeded_rng(1111);
    let queries: Vec<_> = [110usize, 500]
        .iter()
        .map(|&l| named_query(&mut rng, l))
        .collect();
    let gap = GapModel::affine(-10, -2);

    let mut group = c.benchmark_group("fig11/db200");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for q in &queries {
        // AAlign on the CPU platform (auto width, hybrid).
        let cpu = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
            .with_isa(Platform::Cpu.isa());
        group.bench_with_input(BenchmarkId::new("aalign-cpu", q.id()), q, |b, q| {
            b.iter(|| {
                search_database(&cpu, q, &db, SearchOptions::new().threads(1).top_n(5))
                    .unwrap()
                    .hits
                    .len()
            });
        });

        // SWPS3-like comparator.
        let swps3 = Swps3Like::new(q, gap, &BLOSUM62);
        group.bench_with_input(BenchmarkId::new("swps3-like", q.id()), q, |b, _| {
            let mut scratch = Swps3Scratch::new();
            b.iter(|| {
                let mut sum = 0i64;
                for s in db.sequences() {
                    sum += i64::from(swps3.align(s, &mut scratch).score);
                }
                sum
            });
        });

        // AAlign on the MIC platform (i32, hybrid).
        let mic = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
            .with_isa(Platform::Mic.isa())
            .with_width(WidthPolicy::Fixed32);
        group.bench_with_input(BenchmarkId::new("aalign-mic", q.id()), q, |b, q| {
            b.iter(|| {
                search_database(&mic, q, &db, SearchOptions::new().threads(1).top_n(5))
                    .unwrap()
                    .hits
                    .len()
            });
        });

        // SWAPHI-like comparator.
        let swaphi = SwaphiLike::new(q, gap, &BLOSUM62);
        group.bench_with_input(BenchmarkId::new("swaphi-like", q.id()), q, |b, _| {
            let mut ws = AlignScratch::new();
            b.iter(|| {
                let mut sum = 0i64;
                for s in db.sequences() {
                    sum += i64::from(swaphi.align(s, &mut ws).score);
                }
                sum
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
