//! Ablation: the `wgt_max_scan` module itself.
//!
//! DESIGN.md calls out the scan decomposition (Fig. 8's 3-step
//! striped orchestration) as a design choice; this bench compares it
//! against the O(m) sequential recurrence across column lengths and
//! engines, isolating the module the striped-scan strategy stands on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_vec::scan::{wgt_max_scan_scalar, wgt_max_scan_striped, ScanParams};
use aalign_vec::{EmuEngine, SimdEngine, StripedLayout};

fn input(m: usize) -> Vec<i32> {
    (0..m)
        .map(|i| ((i as i32).wrapping_mul(2_654_435_761u32 as i32) >> 20) % 100 - 30)
        .collect()
}

fn bench_scan(c: &mut Criterion) {
    let params = ScanParams {
        init: 0,
        open: -12,
        ext: -2,
    };
    let mut group = c.benchmark_group("ablation/wgt_max_scan");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for m in [256usize, 1024, 4096, 16384] {
        let linear = input(m);
        let mut out = vec![0i32; m];
        group.bench_with_input(BenchmarkId::new("scalar", m), &m, |b, _| {
            b.iter(|| wgt_max_scan_scalar(&linear, params, &mut out));
        });

        // Striped versions per engine.
        macro_rules! striped_case {
            ($name:literal, $eng:expr) => {{
                let eng = $eng;
                let layout = StripedLayout::new(m, engine_lanes(&eng));
                let mut striped_in = Vec::new();
                layout.stripe(&linear, i32::MIN / 4, &mut striped_in);
                let mut striped_out = vec![0i32; layout.padded_len()];
                group.bench_with_input(BenchmarkId::new($name, m), &m, |b, _| {
                    b.iter(|| {
                        wgt_max_scan_striped(eng, layout, &striped_in, &mut striped_out, params)
                    })
                });
            }};
        }
        fn engine_lanes<E: SimdEngine>(_: &E) -> usize {
            E::LANES
        }

        striped_case!("striped-emu16", EmuEngine::<i32, 16>::new());
        #[cfg(target_arch = "x86_64")]
        {
            if let Some(eng) = aalign_vec::avx2::Avx2I32::new() {
                striped_case!("striped-avx2", eng);
            }
            if let Some(eng) = aalign_vec::avx512::Avx512I32::new() {
                striped_case!("striped-avx512", eng);
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
