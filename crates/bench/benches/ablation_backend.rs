//! Ablation: backend ISA × element width on a fixed workload.
//!
//! Runs the same SW-affine striped-iterate alignment across every
//! engine the host offers (emulated, SSE4.1, AVX2, AVX-512) and the
//! practical element widths, quantifying what each ISA/width step is
//! worth — the portability claim of the vector-module design.
//!
//! All cases go through the `Aligner` dispatcher so hardware engines
//! run inside their `#[target_feature]` wrappers (the fast path a
//! real caller gets).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_vec::detect::Isa;

fn bench_backends(c: &mut Criterion) {
    let mut rng = seeded_rng(77);
    let query = named_query(&mut rng, 500);
    let subject = PairSpec::new(Level::Md, Level::Md)
        .generate(&mut rng, &query)
        .subject;
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut group = c.benchmark_group("ablation/backend");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let cases: &[(&str, Isa, WidthPolicy)] = &[
        ("emu512/i32x16", Isa::Emulated, WidthPolicy::Fixed32),
        ("emu512/i16x32", Isa::Emulated, WidthPolicy::Fixed16),
        ("sse41/i32x4", Isa::Sse41, WidthPolicy::Fixed32),
        ("sse41/i16x8", Isa::Sse41, WidthPolicy::Fixed16),
        ("avx2/i32x8", Isa::Avx2, WidthPolicy::Fixed32),
        ("avx2/i16x16", Isa::Avx2, WidthPolicy::Fixed16),
        ("avx2/i8x32", Isa::Avx2, WidthPolicy::Fixed8),
        ("avx512/i32x16", Isa::Avx512, WidthPolicy::Fixed32),
        ("avx512bw/i16x32", Isa::Avx512, WidthPolicy::Fixed16),
    ];
    for &(name, isa, width) in cases {
        let al = Aligner::new(cfg.clone())
            .with_strategy(Strategy::StripedIterate)
            .with_isa(isa)
            .with_width(width);
        let pq = al.prepare(&query).unwrap();
        let mut scratch = AlignScratch::new();
        // Record the backend actually used (pins may fall back to
        // emulation on hosts lacking the ISA).
        let actual = al
            .align_prepared(&pq, &subject, &mut scratch)
            .unwrap()
            .backend;
        group.bench_function(format!("{name} -> {actual}"), |b| {
            b.iter(|| {
                al.align_prepared(&pq, &subject, &mut scratch)
                    .unwrap()
                    .score
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
