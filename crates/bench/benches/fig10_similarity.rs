//! Criterion version of Fig. 10: the three strategies across the
//! nine QC_MI similarity classes (SW-affine on the 512-bit platform
//! — the panel with the sharpest crossover; the `fig10` binary runs
//! all eight panels).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aalign_bench::harness::Platform;
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};

fn bench_fig10(c: &mut Criterion) {
    let mut rng = seeded_rng(10);
    let query = named_query(&mut rng, 800);
    let pairs: Vec<_> = nine_similarity_specs()
        .iter()
        .map(|spec| (spec.label(), spec.generate(&mut rng, &query).subject))
        .collect();
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut group = c.benchmark_group("fig10/sw-aff/mic(512b)");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for strat in [
        Strategy::StripedIterate,
        Strategy::StripedScan,
        Strategy::Hybrid,
    ] {
        let al = Aligner::new(cfg.clone())
            .with_strategy(strat)
            .with_isa(Platform::Mic.isa())
            .with_width(WidthPolicy::Fixed32);
        let pq = al.prepare(&query).unwrap();
        let mut scratch = AlignScratch::new();
        for (label, subject) in &pairs {
            group.bench_with_input(BenchmarkId::new(strat.short(), label), subject, |b, s| {
                b.iter(|| al.align_prepared(&pq, s, &mut scratch).unwrap().score);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
