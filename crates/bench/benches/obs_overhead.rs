//! Guard bench: tracing must be free when no sink is listening.
//!
//! The kernel's once-per-alignment dispatch (`run_generic` in
//! `aalign-core`) routes disabled sinks to the `NullSink`
//! monomorphization, which is bit-for-bit the pre-observability
//! kernel — no per-column virtual calls, no branches. This bench
//! *enforces* that claim: it times the raw no-op-sink kernel path
//! against the public `align_prepared` entry (the path every
//! non-tracing caller takes) and fails if the public path costs more
//! than 1%. It also reports — informationally, unguarded — what an
//! enabled collector costs, since that path is allowed to pay for
//! what it records.
//!
//! The same budget covers the serve stack's always-on flight
//! recorder: one ring `record()` per alignment-sized unit of work
//! must also stay under 1%, or "always on" would be a lie.
//!
//! Usage: `cargo bench -p aalign-bench --bench obs_overhead`

use aalign_bench::harness::{gcups, time_min};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy};
use aalign_obs::{CollectorSink, FlightEvent, FlightRecorder, NullSink, StageKind};

fn main() {
    // `cargo bench` invokes every harness=false bench with --bench;
    // nothing to parse, but accept and ignore the flag.
    let _ = std::env::args();

    let mut rng = seeded_rng(42);
    let q = named_query(&mut rng, 800);
    let s = named_query(&mut rng, 800);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let (warmup, reps) = (3, 9);

    println!("# obs_overhead — no-op sink vs the raw kernel path\n");
    let mut worst: f64 = 0.0;
    for strat in [
        Strategy::StripedIterate,
        Strategy::StripedScan,
        Strategy::Hybrid,
    ] {
        let al = Aligner::new(cfg.clone()).with_strategy(strat);
        let pq = al.prepare(&q).unwrap();
        let mut scratch = AlignScratch::new();

        // Baseline: the explicit no-op monomorphization, i.e. the
        // kernel exactly as it ran before tracing existed.
        let base = al
            .align_prepared_sink(&pq, &s, &mut scratch, &mut NullSink)
            .unwrap();
        let t_base = time_min(
            || {
                let _ = al
                    .align_prepared_sink(&pq, &s, &mut scratch, &mut NullSink)
                    .unwrap();
            },
            warmup,
            reps,
        );

        // Candidate: the public entry non-tracing callers use.
        let plain = al.align_prepared(&pq, &s, &mut scratch).unwrap();
        assert_eq!(plain.score, base.score, "paths must agree on results");
        assert_eq!(plain.stats, base.stats);
        let t_plain = time_min(
            || {
                let _ = al.align_prepared(&pq, &s, &mut scratch).unwrap();
            },
            warmup,
            reps,
        );

        // Informational: what an enabled sink costs.
        let mut sink = CollectorSink::default();
        let t_traced = time_min(
            || {
                sink.events.clear();
                let _ = al
                    .align_prepared_sink(&pq, &s, &mut scratch, &mut sink)
                    .unwrap();
            },
            warmup,
            reps,
        );

        let overhead = t_plain.as_secs_f64() / t_base.as_secs_f64() - 1.0;
        let traced = t_traced.as_secs_f64() / t_base.as_secs_f64() - 1.0;
        worst = worst.max(overhead);
        println!(
            "{:<8} base {:>6.2} GCUPS | disabled-sink overhead {:>+6.2}% | enabled collector {:>+7.2}%",
            strat.short(),
            gcups(q.len(), s.len(), t_base),
            overhead * 100.0,
            traced * 100.0,
        );
    }

    println!(
        "\nworst disabled-sink overhead: {:+.2}% (budget 1%)",
        worst * 100.0
    );
    assert!(
        worst < 0.01,
        "disabled tracing must cost <1% over the raw kernel path, measured {:+.2}%",
        worst * 100.0
    );

    // Flight recorder: the serve dispatcher records a handful of
    // stage events per request into an always-on lock-free ring.
    // Guard the per-event cost the same way: one record() per
    // alignment must not move the needle.
    let al = Aligner::new(cfg).with_strategy(Strategy::Hybrid);
    let pq = al.prepare(&q).unwrap();
    let mut scratch = AlignScratch::new();
    let t_base = time_min(
        || {
            let _ = al.align_prepared(&pq, &s, &mut scratch).unwrap();
        },
        warmup,
        reps,
    );
    let rec = FlightRecorder::new();
    let mut n = 0u64;
    let t_flight = time_min(
        || {
            let out = al.align_prepared(&pq, &s, &mut scratch).unwrap();
            n += 1;
            rec.record(FlightEvent {
                at_us: n,
                request: n,
                stage: StageKind::Sweep,
                dur_us: u64::from(out.score.unsigned_abs()),
                ref_request: 0,
            });
        },
        warmup,
        reps,
    );
    let flight_overhead = t_flight.as_secs_f64() / t_base.as_secs_f64() - 1.0;
    println!(
        "\nflight-recorder record() per alignment: {:+.2}% (budget 1%, {} events recorded)",
        flight_overhead * 100.0,
        rec.recorded(),
    );
    assert!(
        flight_overhead < 0.01,
        "always-on flight recording must cost <1% per request, measured {:+.2}%",
        flight_overhead * 100.0
    );
    println!("OK");
}
