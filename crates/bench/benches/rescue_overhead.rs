//! Guard bench: overflow rescue must be free when nothing saturates.
//!
//! The engine's rescue path adds exactly two things to a sweep that
//! never saturates: building the (lazy, empty) `RescueLadder` once
//! per query, and one `if out.saturated` branch per subject. This
//! bench *enforces* that budget: it times an engine search over a
//! non-saturating database with rescue enabled (the default) against
//! the same search with `rescue(false)` and fails if the enabled
//! path costs more than 1%. It also reports — informationally,
//! unguarded — what a sweep that actually rescues pays, since that
//! path is allowed to spend time recovering exact scores.
//!
//! Usage: `cargo bench -p aalign-bench --bench rescue_overhead
//!        [-- --json [--out BENCH_rescue.json]]`

use std::time::{Duration, Instant};

use aalign_bench::harness::{gcups, json_f64, print_banner, time_min, write_bench_json, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::{SeqDatabase, Sequence};
use aalign_core::{AlignConfig, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_par::{SearchEngine, SearchOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_rescue.json", String::as_str);

    print_banner("rescue_overhead — saturation check on the non-saturating hot path");
    let mut rng = seeded_rng(7);
    let q = named_query(&mut rng, 400);
    let db = swissprot_like_db(8, 600);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let a = Aligner::new(cfg).with_strategy(Strategy::Hybrid);
    // Single worker + min-of-k: scheduling noise would otherwise
    // swamp a 1% budget.
    let engine = SearchEngine::new(1);
    let (warmup, reps) = (3, 11);
    let cells: usize = q.len() * db.sequences().iter().map(Sequence::len).sum::<usize>();

    let mut table = Table::new(vec!["path", "GCUPS", "overhead", "rescued"]);
    let mut rows: Vec<String> = Vec::new();

    let run = |opts: &SearchOptions| engine.search(&a, &q, &db, opts).unwrap();
    let off = SearchOptions::new().rescue(false);
    let on = SearchOptions::new();

    let base_report = run(&off);
    assert_eq!(base_report.metrics.rescued, 0);
    let with_report = run(&on);
    assert_eq!(
        with_report.metrics.rescued, 0,
        "the guard database must not saturate, or the comparison is meaningless"
    );
    assert_eq!(with_report.hits, base_report.hits, "rescue-off must agree");

    // Interleave the two configurations rep by rep: clock-frequency
    // drift between two back-to-back min-of-k blocks is larger than
    // the budget being enforced, pairing the samples cancels it.
    let mut t_off = Duration::MAX;
    let mut t_on = Duration::MAX;
    for _ in 0..warmup {
        run(&off);
        run(&on);
    }
    for _ in 0..reps {
        let s = Instant::now();
        drop(run(&off));
        t_off = t_off.min(s.elapsed());
        let s = Instant::now();
        drop(run(&on));
        t_on = t_on.min(s.elapsed());
    }
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0;

    for (label, t, oh, rescued) in [
        ("rescue-off", t_off, 0.0, 0u64),
        ("rescue-on", t_on, overhead, 0),
    ] {
        table.row(vec![
            label.to_string(),
            format!("{:.2}", gcups(1, cells, t)),
            format!("{:+.2}%", oh * 100.0),
            rescued.to_string(),
        ]);
        rows.push(format!(
            "{{\"path\":\"{label}\",\"gcups\":{},\"overhead\":{},\"rescued\":{rescued}}}",
            json_f64(gcups(1, cells, t)),
            json_f64(oh),
        ));
    }

    // Informational: a database where every 20th subject saturates
    // 8-bit lanes under a Fixed8 policy — the rescue re-aligns those
    // subjects at 16 bits and is allowed to pay for it.
    let mut seqs = db.sequences().to_vec();
    for (i, s) in seqs.iter_mut().enumerate().step_by(20) {
        *s = Sequence::protein(format!("hot_{i}"), &[b'W'; 120]).unwrap();
    }
    let hot_db = SeqDatabase::new(seqs);
    let wq = Sequence::protein("wq", &[b'W'; 120]).unwrap();
    let narrow = a.clone().with_width(WidthPolicy::Fixed8);
    let hot = engine.search(&narrow, &wq, &hot_db, &on).unwrap();
    let t_hot = time_min(
        || drop(engine.search(&narrow, &wq, &hot_db, &on).unwrap()),
        warmup,
        reps,
    );
    table.row(vec![
        "rescuing".to_string(),
        format!(
            "{:.2}",
            gcups(
                1,
                wq.len() * hot_db.sequences().iter().map(Sequence::len).sum::<usize>(),
                t_hot
            )
        ),
        "n/a".to_string(),
        hot.metrics.rescued.to_string(),
    ]);
    rows.push(format!(
        "{{\"path\":\"rescuing\",\"gcups\":{},\"overhead\":null,\"rescued\":{}}}",
        json_f64(gcups(
            1,
            wq.len() * hot_db.sequences().iter().map(Sequence::len).sum::<usize>(),
            t_hot
        )),
        hot.metrics.rescued,
    ));
    assert!(hot.metrics.rescued > 0, "the hot database must rescue");

    println!("{}", table.render());
    println!(
        "non-saturating rescue-check overhead: {:+.2}% (budget 1%)",
        overhead * 100.0
    );
    if json {
        write_bench_json(out_path, "rescue", 1, &rows).unwrap();
    }
    assert!(
        overhead < 0.01,
        "the rescue check must cost <1% on a non-saturating sweep, measured {:+.2}%",
        overhead * 100.0
    );
    println!("OK");
}
