//! Shared machinery for the paper-figure harness binaries.
//!
//! Each `fig*` binary regenerates one table/figure of the paper's
//! evaluation. They share: wall-clock timing with warmup and
//! min-of-k repeats, GCUPS (billions of DP cell updates per second),
//! the two "platforms" (CPU = AVX2 shape, MIC = 512-bit shape, per
//! the DESIGN.md substitution), and markdown table rendering.

use std::time::{Duration, Instant};

use aalign_bio::matrices::BLOSUM62;
use aalign_core::{AlignConfig, AlignKind, GapModel, RunStats};
use aalign_vec::detect::{Isa, IsaSupport};

/// Time a closure: `warmup` unmeasured runs, then the minimum of
/// `reps` measured runs (minimum is the right statistic for
/// CPU-bound kernels — noise is strictly additive).
pub fn time_min<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Billions of cell updates per second for an `m × n` table.
pub fn gcups(m: usize, n: usize, d: Duration) -> f64 {
    (m as f64 * n as f64) / d.as_secs_f64() / 1e9
}

/// The two evaluation platforms of the paper, as ISA pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// 256-bit AVX2 — the paper's Haswell CPU.
    Cpu,
    /// 512-bit — the paper's Knights Corner MIC (AVX-512 here).
    Mic,
}

impl Platform {
    /// ISA pin for [`aalign_core::Aligner::with_isa`].
    pub fn isa(self) -> Isa {
        match self {
            Platform::Cpu => Isa::Avx2,
            Platform::Mic => Isa::Avx512,
        }
    }

    /// Label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Cpu => "cpu(avx2)",
            Platform::Mic => "mic(512b)",
        }
    }

    /// Whether this platform runs natively on the current host (else
    /// the emulated engine with the same geometry is used).
    pub fn native(self) -> bool {
        let sup = IsaSupport::detect();
        match self {
            Platform::Cpu => sup.avx2,
            Platform::Mic => sup.avx512f,
        }
    }

    /// Both platforms.
    pub const ALL: [Platform; 2] = [Platform::Cpu, Platform::Mic];
}

/// The four paradigm configurations evaluated throughout the paper,
/// with the gap values used in its experiments (BLOSUM62, open −10,
/// extend −2; linear −4).
pub fn four_configs() -> Vec<AlignConfig> {
    let mut out = Vec::new();
    for kind in [AlignKind::Local, AlignKind::Global] {
        for gap in [GapModel::linear(-4), GapModel::affine(-10, -2)] {
            out.push(AlignConfig::new(kind, gap, &BLOSUM62));
        }
    }
    out
}

/// Simple aligned markdown table writer.
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as a markdown table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = width[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

/// Minimal JSON string escape for the `--json` bench mode (values we
/// emit are ASCII identifiers and numbers, so only quotes, backslash
/// and control characters need care — no external deps).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float for JSON: finite values as-is, non-finite as 0
/// (JSON has no NaN/inf; a degenerate measurement is "no signal").
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_string()
    }
}

/// The kernel counters as a JSON object.
pub fn run_stats_json(st: &RunStats) -> String {
    format!(
        "{{\"iterate_columns\":{},\"scan_columns\":{},\"switches_to_scan\":{},\
         \"probes_stayed\":{},\"lazy_iters\":{},\"lazy_sweeps\":{}}}",
        st.iterate_columns,
        st.scan_columns,
        st.switches_to_scan,
        st.probes_stayed,
        st.lazy_iters,
        st.lazy_sweeps,
    )
}

/// Host/environment snapshot embedded in every `BENCH_*.json` so a
/// trajectory across commits can tell machines apart.
pub fn env_info_json(threads: usize) -> String {
    let sup = IsaSupport::detect();
    format!(
        "{{\"arch\":{},\"os\":{},\"avx2\":{},\"avx512f\":{},\"threads\":{threads},\
         \"version\":{},\"debug_assertions\":{}}}",
        json_str(std::env::consts::ARCH),
        json_str(std::env::consts::OS),
        sup.avx2,
        sup.avx512f,
        json_str(env!("CARGO_PKG_VERSION")),
        cfg!(debug_assertions),
    )
}

/// Write a `BENCH_*.json` document: a self-describing envelope with
/// the env snapshot and the bench's rows (already-serialized JSON
/// objects). The machine-readable twin of the markdown tables.
pub fn write_bench_json(
    path: &str,
    bench: &str,
    threads: usize,
    rows: &[String],
) -> std::io::Result<()> {
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str(&format!("  \"bench\": {},\n", json_str(bench)));
    doc.push_str(&format!("  \"env\": {},\n", env_info_json(threads)));
    doc.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        doc.push_str(&format!("    {row}{sep}\n"));
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(path, doc)?;
    eprintln!("wrote {} rows to {path}", rows.len());
    Ok(())
}

/// Standard harness banner: what runs natively, what is emulated.
pub fn print_banner(figure: &str) {
    println!("# {figure}");
    println!();
    let sup = IsaSupport::detect();
    println!(
        "host: avx2={} avx512f={} — cpu platform {}, mic platform {}",
        sup.avx2,
        sup.avx512f,
        if Platform::Cpu.native() {
            "native"
        } else {
            "EMULATED"
        },
        if Platform::Mic.native() {
            "native"
        } else {
            "EMULATED"
        },
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        let g = gcups(1000, 1000, Duration::from_millis(1));
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.starts_with("| a"));
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("| 333 | 4"));
    }

    #[test]
    fn four_configs_cover_the_grid() {
        let cfgs = four_configs();
        assert_eq!(cfgs.len(), 4);
        let labels: Vec<String> = cfgs.iter().map(aalign_core::AlignConfig::label).collect();
        for want in ["sw-lin", "sw-aff", "nw-lin", "nw-aff"] {
            assert!(labels.iter().any(|l| l == want), "{want}");
        }
    }

    #[test]
    fn json_helpers_escape_and_stay_finite() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        assert_eq!(json_f64(1.25), "1.2500");
        let st = RunStats::default();
        let j = run_stats_json(&st);
        assert!(j.contains("\"iterate_columns\":0"), "{j}");
        assert!(j.contains("\"lazy_sweeps\":0"), "{j}");
        let env = env_info_json(4);
        assert!(env.contains("\"threads\":4"), "{env}");
        assert!(env.contains("\"arch\":"), "{env}");
    }

    #[test]
    fn bench_json_document_is_an_envelope() {
        let dir = std::env::temp_dir().join("aalign_bench_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let rows = vec!["{\"a\":1}".to_string(), "{\"a\":2}".to_string()];
        write_bench_json(path.to_str().unwrap(), "test", 2, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"test\""), "{text}");
        assert!(text.contains("\"env\":"), "{text}");
        assert!(text.contains("{\"a\":1},"), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
    }

    #[test]
    fn time_min_runs_the_closure() {
        let mut count = 0;
        let _ = time_min(|| count += 1, 2, 3);
        assert_eq!(count, 5);
    }
}
