//! Shared machinery for the paper-figure harness binaries.
//!
//! Each `fig*` binary regenerates one table/figure of the paper's
//! evaluation. They share: wall-clock timing with warmup and
//! min-of-k repeats, GCUPS (billions of DP cell updates per second),
//! the two "platforms" (CPU = AVX2 shape, MIC = 512-bit shape, per
//! the DESIGN.md substitution), and markdown table rendering.

use std::time::{Duration, Instant};

use aalign_bio::matrices::BLOSUM62;
use aalign_core::{AlignConfig, AlignKind, GapModel};
use aalign_vec::detect::{Isa, IsaSupport};

/// Time a closure: `warmup` unmeasured runs, then the minimum of
/// `reps` measured runs (minimum is the right statistic for
/// CPU-bound kernels — noise is strictly additive).
pub fn time_min<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Billions of cell updates per second for an `m × n` table.
pub fn gcups(m: usize, n: usize, d: Duration) -> f64 {
    (m as f64 * n as f64) / d.as_secs_f64() / 1e9
}

/// The two evaluation platforms of the paper, as ISA pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// 256-bit AVX2 — the paper's Haswell CPU.
    Cpu,
    /// 512-bit — the paper's Knights Corner MIC (AVX-512 here).
    Mic,
}

impl Platform {
    /// ISA pin for [`aalign_core::Aligner::with_isa`].
    pub fn isa(self) -> Isa {
        match self {
            Platform::Cpu => Isa::Avx2,
            Platform::Mic => Isa::Avx512,
        }
    }

    /// Label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Cpu => "cpu(avx2)",
            Platform::Mic => "mic(512b)",
        }
    }

    /// Whether this platform runs natively on the current host (else
    /// the emulated engine with the same geometry is used).
    pub fn native(self) -> bool {
        let sup = IsaSupport::detect();
        match self {
            Platform::Cpu => sup.avx2,
            Platform::Mic => sup.avx512f,
        }
    }

    /// Both platforms.
    pub const ALL: [Platform; 2] = [Platform::Cpu, Platform::Mic];
}

/// The four paradigm configurations evaluated throughout the paper,
/// with the gap values used in its experiments (BLOSUM62, open −10,
/// extend −2; linear −4).
pub fn four_configs() -> Vec<AlignConfig> {
    let mut out = Vec::new();
    for kind in [AlignKind::Local, AlignKind::Global] {
        for gap in [GapModel::linear(-4), GapModel::affine(-10, -2)] {
            out.push(AlignConfig::new(kind, gap, &BLOSUM62));
        }
    }
    out
}

/// Simple aligned markdown table writer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as a markdown table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = width[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

/// Standard harness banner: what runs natively, what is emulated.
pub fn print_banner(figure: &str) {
    println!("# {figure}");
    println!();
    let sup = IsaSupport::detect();
    println!(
        "host: avx2={} avx512f={} — cpu platform {}, mic platform {}",
        sup.avx2,
        sup.avx512f,
        if Platform::Cpu.native() {
            "native"
        } else {
            "EMULATED"
        },
        if Platform::Mic.native() {
            "native"
        } else {
            "EMULATED"
        },
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        let g = gcups(1000, 1000, Duration::from_millis(1));
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.starts_with("| a"));
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("| 333 | 4"));
    }

    #[test]
    fn four_configs_cover_the_grid() {
        let cfgs = four_configs();
        assert_eq!(cfgs.len(), 4);
        let labels: Vec<String> = cfgs.iter().map(|c| c.label()).collect();
        for want in ["sw-lin", "sw-aff", "nw-lin", "nw-aff"] {
            assert!(labels.iter().any(|l| l == want), "{want}");
        }
    }

    #[test]
    fn time_min_runs_the_closure() {
        let mut count = 0;
        let _ = time_min(|| count += 1, 2, 3);
        assert_eq!(count, 5);
    }
}
