//! # aalign-bench — paper-figure harness library (bins use this).
pub mod harness;
