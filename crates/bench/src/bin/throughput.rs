//! Quick GCUPS throughput report across backends and strategies.
//!
//! Not a paper figure — a development tool for eyeballing the
//! dispatcher's fast paths on the current host.
//!
//! Usage: `cargo run --release -p aalign-bench --bin throughput`

use aalign_bench::harness::{gcups, print_banner, time_min, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_vec::detect::Isa;

fn main() {
    print_banner("throughput — SW-affine GCUPS per backend/strategy");
    let mut rng = seeded_rng(1);
    let q = named_query(&mut rng, 1000);
    let s = named_query(&mut rng, 1000);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut table = Table::new(vec!["backend", "strategy", "GCUPS"]);

    // Sequential reference.
    let seq = Aligner::new(cfg.clone()).with_strategy(Strategy::Sequential);
    let t = time_min(
        || {
            let _ = seq.align(&q, &s).unwrap();
        },
        1,
        3,
    );
    table.row(vec![
        "scalar".to_string(),
        "seq".to_string(),
        format!("{:.2}", gcups(1000, 1000, t)),
    ]);

    for (isa, width) in [
        (Isa::Emulated, WidthPolicy::Fixed32),
        (Isa::Sse41, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed16),
        (Isa::Avx512, WidthPolicy::Fixed32),
        (Isa::Avx512, WidthPolicy::Fixed16),
    ] {
        for strat in [Strategy::StripedIterate, Strategy::StripedScan] {
            let al = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_isa(isa)
                .with_width(width);
            let pq = al.prepare(&q).unwrap();
            let mut scratch = AlignScratch::new();
            let out = al.align_prepared(&pq, &s, &mut scratch).unwrap();
            let t = time_min(
                || {
                    let _ = al.align_prepared(&pq, &s, &mut scratch).unwrap();
                },
                1,
                3,
            );
            table.row(vec![
                out.backend.clone(),
                strat.short().to_string(),
                format!("{:.2}", gcups(1000, 1000, t)),
            ]);
        }
    }
    println!("{}", table.render());
}
