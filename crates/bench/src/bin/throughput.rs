//! Quick GCUPS throughput report across backends and strategies.
//!
//! Not a paper figure — a development tool for eyeballing the
//! dispatcher's fast paths on the current host. With `--json` it
//! also writes `BENCH_throughput.json` (override with `--out`), the
//! machine-readable perf-trajectory document the ROADMAP calls for:
//! per-row GCUPS plus the kernel `RunStats`, under an env envelope.
//!
//! Usage: `cargo run --release -p aalign-bench --bin throughput
//!         [--json] [--out BENCH_throughput.json]`

use aalign_bench::harness::{
    gcups, json_f64, json_str, print_banner, run_stats_json, time_min, write_bench_json, Table,
};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_bio::{Sequence, SubstMatrix};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, RunStats, Strategy, WidthPolicy};
use aalign_vec::detect::Isa;
use rand::RngExt;

fn row_json(backend: &str, strategy: &str, g: f64, stats: &RunStats) -> String {
    format!(
        "{{\"backend\":{},\"strategy\":{},\"gcups\":{},\"kernel\":{}}}",
        json_str(backend),
        json_str(strategy),
        json_f64(g),
        run_stats_json(stats),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_throughput.json", String::as_str);

    print_banner("throughput — SW-affine GCUPS per backend/strategy");
    let mut rng = seeded_rng(1);
    let q = named_query(&mut rng, 1000);
    let s = named_query(&mut rng, 1000);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut table = Table::new(vec!["backend", "strategy", "GCUPS"]);
    let mut rows: Vec<String> = Vec::new();

    // Sequential reference.
    let seq = Aligner::new(cfg.clone()).with_strategy(Strategy::Sequential);
    let t = time_min(
        || {
            let _ = seq.align(&q, &s).unwrap();
        },
        1,
        3,
    );
    let g = gcups(1000, 1000, t);
    table.row(vec![
        "scalar".to_string(),
        "seq".to_string(),
        format!("{g:.2}"),
    ]);
    rows.push(row_json("scalar", "seq", g, &RunStats::default()));

    for (isa, width) in [
        (Isa::Emulated, WidthPolicy::Fixed32),
        (Isa::Sse41, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed16),
        (Isa::Avx512, WidthPolicy::Fixed32),
        (Isa::Avx512, WidthPolicy::Fixed16),
    ] {
        for strat in [Strategy::StripedIterate, Strategy::StripedScan] {
            let al = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_isa(isa)
                .with_width(width);
            let pq = al.prepare(&q).unwrap();
            let mut scratch = AlignScratch::new();
            let out = al.align_prepared(&pq, &s, &mut scratch).unwrap();
            let t = time_min(
                || {
                    let _ = al.align_prepared(&pq, &s, &mut scratch).unwrap();
                },
                1,
                3,
            );
            let g = gcups(1000, 1000, t);
            table.row(vec![
                out.backend.clone(),
                strat.short().to_string(),
                format!("{g:.2}"),
            ]);
            rows.push(row_json(&out.backend, strat.short(), g, &out.stats));
        }
    }
    println!("{}", table.render());

    // Certified narrow path: dna(2,-3)/affine(-5,-2) at query 48 vs
    // subject 1000 carries an i8 width certificate (`aalign-analyzer
    // certify`), so the 8-bit kernels run with the rescue ladder
    // provably dead. Fixed8 rows pin the kernels themselves; the Auto
    // row shows the certificate steering the width ladder to i8.
    print_banner("throughput — certified-i8 SW-affine DNA (48 x 1000)");
    let dna = SubstMatrix::dna(2, -3);
    let dcfg = AlignConfig::local(GapModel::affine(-5, -2), &dna);
    let dna_seq = |rng: &mut rand::StdRng, id: &str, len: usize| {
        let text: Vec<u8> = (0..len)
            .map(|_| b"ACGT"[rng.random_range(0..4usize)])
            .collect();
        Sequence::dna(id, &text).unwrap()
    };
    let dq = dna_seq(&mut rng, "dq", 48);
    let ds = dna_seq(&mut rng, "ds", 1000);
    let mut dna_table = Table::new(vec!["backend", "width", "GCUPS"]);
    for (isa, width, label) in [
        (Isa::Avx2, WidthPolicy::Fixed16, "i16"),
        (Isa::Avx2, WidthPolicy::Fixed8, "i8"),
        (Isa::Avx2, WidthPolicy::Auto, "auto(i8 cert)"),
        (Isa::Avx512, WidthPolicy::Fixed16, "i16"),
        (Isa::Avx512, WidthPolicy::Fixed8, "i8"),
        (Isa::Avx512, WidthPolicy::Auto, "auto(i8 cert)"),
    ] {
        let al = Aligner::new(dcfg.clone())
            .with_certified_bounds(48, 1000)
            .with_strategy(Strategy::StripedIterate)
            .with_isa(isa)
            .with_width(width);
        let pq = al.prepare(&dq).unwrap();
        let mut scratch = AlignScratch::new();
        let out = al.align_prepared(&pq, &ds, &mut scratch).unwrap();
        assert!(!out.saturated, "certified width saturated in the bench");
        let t = time_min(
            || {
                let _ = al.align_prepared(&pq, &ds, &mut scratch).unwrap();
            },
            8,
            3,
        );
        let g = gcups(48, 1000, t);
        dna_table.row(vec![
            out.backend.clone(),
            label.to_string(),
            format!("{g:.2}"),
        ]);
        rows.push(row_json(
            &out.backend,
            &format!("dna48/{label}"),
            g,
            &out.stats,
        ));
    }
    println!("{}", dna_table.render());

    if json {
        write_bench_json(out_path, "throughput", 1, &rows).expect("write bench json");
    }
}
