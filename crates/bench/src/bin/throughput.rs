//! Quick GCUPS throughput report across backends and strategies.
//!
//! Not a paper figure — a development tool for eyeballing the
//! dispatcher's fast paths on the current host. With `--json` it
//! also writes `BENCH_throughput.json` (override with `--out`), the
//! machine-readable perf-trajectory document the ROADMAP calls for:
//! per-row GCUPS plus the kernel `RunStats`, under an env envelope.
//!
//! Usage: `cargo run --release -p aalign-bench --bin throughput
//!         [--json] [--out BENCH_throughput.json]`

use aalign_bench::harness::{
    gcups, json_f64, json_str, print_banner, run_stats_json, time_min, write_bench_json, Table,
};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, RunStats, Strategy, WidthPolicy};
use aalign_vec::detect::Isa;

fn row_json(backend: &str, strategy: &str, g: f64, stats: &RunStats) -> String {
    format!(
        "{{\"backend\":{},\"strategy\":{},\"gcups\":{},\"kernel\":{}}}",
        json_str(backend),
        json_str(strategy),
        json_f64(g),
        run_stats_json(stats),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_throughput.json", String::as_str);

    print_banner("throughput — SW-affine GCUPS per backend/strategy");
    let mut rng = seeded_rng(1);
    let q = named_query(&mut rng, 1000);
    let s = named_query(&mut rng, 1000);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    let mut table = Table::new(vec!["backend", "strategy", "GCUPS"]);
    let mut rows: Vec<String> = Vec::new();

    // Sequential reference.
    let seq = Aligner::new(cfg.clone()).with_strategy(Strategy::Sequential);
    let t = time_min(
        || {
            let _ = seq.align(&q, &s).unwrap();
        },
        1,
        3,
    );
    let g = gcups(1000, 1000, t);
    table.row(vec![
        "scalar".to_string(),
        "seq".to_string(),
        format!("{g:.2}"),
    ]);
    rows.push(row_json("scalar", "seq", g, &RunStats::default()));

    for (isa, width) in [
        (Isa::Emulated, WidthPolicy::Fixed32),
        (Isa::Sse41, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed32),
        (Isa::Avx2, WidthPolicy::Fixed16),
        (Isa::Avx512, WidthPolicy::Fixed32),
        (Isa::Avx512, WidthPolicy::Fixed16),
    ] {
        for strat in [Strategy::StripedIterate, Strategy::StripedScan] {
            let al = Aligner::new(cfg.clone())
                .with_strategy(strat)
                .with_isa(isa)
                .with_width(width);
            let pq = al.prepare(&q).unwrap();
            let mut scratch = AlignScratch::new();
            let out = al.align_prepared(&pq, &s, &mut scratch).unwrap();
            let t = time_min(
                || {
                    let _ = al.align_prepared(&pq, &s, &mut scratch).unwrap();
                },
                1,
                3,
            );
            let g = gcups(1000, 1000, t);
            table.row(vec![
                out.backend.clone(),
                strat.short().to_string(),
                format!("{g:.2}"),
            ]);
            rows.push(row_json(&out.backend, strat.short(), g, &out.stats));
        }
    }
    println!("{}", table.render());

    if json {
        write_bench_json(out_path, "throughput", 1, &rows).expect("write bench json");
    }
}
