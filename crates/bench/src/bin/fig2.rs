//! Fig. 2 — the motivating example: neither strategy always wins.
//!
//! The paper shows four MIC cases mixing algorithm, gap system and
//! input similarity where the iterate/scan winner flips. This
//! harness reproduces the flip on the 512-bit platform: similar
//! inputs under affine gaps favour scan; dissimilar inputs (and all
//! linear-gap runs) favour iterate.
//!
//! Usage: `cargo run --release -p aalign-bench --bin fig2 [--quick]`

use aalign_bench::harness::{print_banner, time_min, Platform, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, Level, PairSpec};
use aalign_core::{AlignConfig, Aligner, GapModel, Strategy, WidthPolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_banner("Fig. 2 — iterate vs scan under various conditions (512-bit)");

    let mut rng = seeded_rng(2);
    let qlen = if quick { 400 } else { 1500 };
    let query = named_query(&mut rng, qlen);
    let similar = PairSpec::new(Level::Hi, Level::Hi)
        .generate(&mut rng, &query)
        .subject;
    let dissimilar = named_query(&mut rng, qlen);

    // The paper's four cases (SW/NW × lin/aff × similar/dissimilar).
    let cases = [
        (
            "sw-aff similar",
            AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62),
            &similar,
        ),
        (
            "sw-aff dissimilar",
            AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62),
            &dissimilar,
        ),
        (
            "nw-aff similar",
            AlignConfig::global(GapModel::affine(-10, -2), &BLOSUM62),
            &similar,
        ),
        (
            "sw-lin similar",
            AlignConfig::local(GapModel::linear(-4), &BLOSUM62),
            &similar,
        ),
    ];

    let mut table = Table::new(vec!["case", "iterate ms", "scan ms", "winner"]);
    for (label, cfg, subject) in cases {
        let make = |s: Strategy| {
            Aligner::new(cfg.clone())
                .with_strategy(s)
                .with_isa(Platform::Mic.isa())
                .with_width(WidthPolicy::Fixed32)
        };
        let it = make(Strategy::StripedIterate);
        let sc = make(Strategy::StripedScan);
        let pq_it = it.prepare(&query).unwrap();
        let pq_sc = sc.prepare(&query).unwrap();
        let mut scratch = aalign_core::AlignScratch::new();
        assert_eq!(
            it.align_prepared(&pq_it, subject, &mut scratch)
                .unwrap()
                .score,
            sc.align_prepared(&pq_sc, subject, &mut scratch)
                .unwrap()
                .score,
        );
        let reps = if quick { 2 } else { 5 };
        let t_it = time_min(
            || {
                let _ = it.align_prepared(&pq_it, subject, &mut scratch).unwrap();
            },
            1,
            reps,
        );
        let t_sc = time_min(
            || {
                let _ = sc.align_prepared(&pq_sc, subject, &mut scratch).unwrap();
            },
            1,
            reps,
        );
        table.row(vec![
            label.to_string(),
            format!("{:.3}", t_it.as_secs_f64() * 1e3),
            format!("{:.3}", t_sc.as_secs_f64() * 1e3),
            if t_it <= t_sc { "iterate" } else { "scan" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: scan wins the affine+similar cases; iterate wins dissimilar and linear."
    );
}
