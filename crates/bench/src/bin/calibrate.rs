//! Sec. V-B calibration — where is the iterate/scan crossover?
//!
//! The paper measures that scan starts winning when iterate's
//! re-computation count per column exceeds ≈1.5 (MIC) / ≈2.5 (CPU),
//! and sets the hybrid thresholds to 2 and 3. This harness sweeps
//! subjects of increasing similarity, reporting iterate's lazy
//! sweeps per column next to the iterate/scan time ratio, then
//! sweeps the hybrid threshold and probe stride to show the
//! calibrated defaults are near-optimal.
//!
//! Usage: `cargo run --release -p aalign-bench --bin calibrate [--quick]`

use aalign_bench::harness::{print_banner, time_min, Platform, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, PairSpec};
use aalign_bio::Sequence;
use aalign_core::{AlignConfig, Aligner, GapModel, HybridPolicy, Strategy, WidthPolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_banner("Sec. V-B calibration — iterate/scan crossover & hybrid tuning");

    let mut rng = seeded_rng(55);
    let qlen = if quick { 400 } else { 1200 };
    let query = named_query(&mut rng, qlen);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);

    // Subjects of increasing identity within full coverage.
    let identities = [0.05f64, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95];
    let subjects: Vec<(String, Sequence)> = identities
        .iter()
        .map(|&p| {
            // Reuse the pair generator machinery at a fixed identity by
            // mutating the query directly.
            let mut idx = Vec::with_capacity(query.len());
            use rand::RngExt;
            for &r in query.indices() {
                if rng.random_bool(p) {
                    idx.push(r);
                } else {
                    idx.push(aalign_bio::synth::random_residue(&mut rng));
                }
            }
            (
                format!("id{:.0}%", p * 100.0),
                Sequence::from_indices("subj", query.alphabet(), idx),
            )
        })
        .collect();

    for platform in Platform::ALL {
        println!(
            "## crossover on {} {}",
            platform.label(),
            if platform.native() { "" } else { "(emulated)" }
        );
        let make = |s: Strategy| {
            Aligner::new(cfg.clone())
                .with_strategy(s)
                .with_isa(platform.isa())
                .with_width(WidthPolicy::Fixed32)
        };
        let it = make(Strategy::StripedIterate);
        let sc = make(Strategy::StripedScan);
        let pq_it = it.prepare(&query).unwrap();
        let pq_sc = sc.prepare(&query).unwrap();
        let mut scratch = aalign_core::AlignScratch::new();
        let reps = if quick { 2 } else { 4 };

        let mut table = Table::new(vec![
            "identity",
            "sweeps/col",
            "iterate ms",
            "scan ms",
            "scan/iterate",
            "winner",
        ]);
        for (label, s) in &subjects {
            let out = it.align_prepared(&pq_it, s, &mut scratch).unwrap();
            let sweeps = out.stats.lazy_sweeps as f64 / out.stats.iterate_columns.max(1) as f64;
            let t_it = time_min(
                || {
                    let _ = it.align_prepared(&pq_it, s, &mut scratch).unwrap();
                },
                1,
                reps,
            );
            let t_sc = time_min(
                || {
                    let _ = sc.align_prepared(&pq_sc, s, &mut scratch).unwrap();
                },
                1,
                reps,
            );
            table.row(vec![
                label.clone(),
                format!("{sweeps:.2}"),
                format!("{:.3}", t_it.as_secs_f64() * 1e3),
                format!("{:.3}", t_sc.as_secs_f64() * 1e3),
                format!("{:.2}", t_sc.as_secs_f64() / t_it.as_secs_f64()),
                if t_it <= t_sc { "iterate" } else { "scan" }.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    // Hybrid threshold/stride ablation on a mixed subject.
    println!("## hybrid policy ablation (mixed head/middle/tail subject, 512-bit)");
    let mixed = {
        let mut idx = Vec::new();
        idx.extend_from_slice(named_query(&mut rng, qlen).indices());
        idx.extend_from_slice(
            PairSpec::new(aalign_bio::synth::Level::Hi, aalign_bio::synth::Level::Hi)
                .generate(&mut rng, &query)
                .subject
                .indices(),
        );
        idx.extend_from_slice(named_query(&mut rng, qlen).indices());
        Sequence::from_indices("mixed", query.alphabet(), idx)
    };
    let mut table = Table::new(vec!["threshold", "stride", "ms"]);
    for threshold in [0u32, 1, 2, 3, 5, 8] {
        for stride in [16usize, 64, 128, 512] {
            let al = Aligner::new(cfg.clone())
                .with_strategy(Strategy::Hybrid)
                .with_isa(Platform::Mic.isa())
                .with_width(WidthPolicy::Fixed32)
                .with_hybrid_policy(HybridPolicy {
                    threshold,
                    probe_stride: stride,
                });
            let pq = al.prepare(&query).unwrap();
            let mut scratch = aalign_core::AlignScratch::new();
            let t = time_min(
                || {
                    let _ = al.align_prepared(&pq, &mixed, &mut scratch).unwrap();
                },
                1,
                if quick { 2 } else { 3 },
            );
            table.row(vec![
                threshold.to_string(),
                stride.to_string(),
                format!("{:.3}", t.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!("{}", table.render());
}
