//! Thread-scaling sweep for the database-search driver (paper
//! Sec. V-E's multithreading claim).
//!
//! The paper ran 24 CPU cores / 60 MIC cores; this harness sweeps
//! 1..=available threads and prints throughput per count, plus the
//! dynamic-binding load balance (per-thread subject counts would be
//! equalized by length sorting; we report wall time only). On a
//! single-core host the sweep degenerates to one row — the point of
//! the binary is portability of the experiment, as EXPERIMENTS.md
//! notes.
//!
//! Usage: `cargo run --release -p aalign-bench --bin scaling [--quick]`

use aalign_bench::harness::{print_banner, time_min, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_core::{AlignConfig, Aligner, GapModel, Strategy};
use aalign_par::{search_database, search_database_inter, SearchOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_banner("Thread scaling — database search driver (Sec. V-E)");

    let db = swissprot_like_db(42, if quick { 300 } else { 1500 });
    let stats = db.stats();
    let mut rng = seeded_rng(43);
    let query = named_query(&mut rng, 300);
    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let aligner = Aligner::new(cfg.clone()).with_strategy(Strategy::Hybrid);
    let max_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "database: {} seqs / {} residues; query {}; host threads: {max_threads}",
        stats.count,
        stats.total_residues,
        query.id()
    );

    let mut table = Table::new(vec![
        "threads",
        "intra s",
        "inter s",
        "intra GCUPS",
        "speedup",
    ]);
    let mut t1 = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        let t_intra = time_min(
            || {
                let _ = search_database(
                    &aligner,
                    &query,
                    &db,
                    SearchOptions::new().threads(threads).top_n(5),
                )
                .unwrap();
            },
            1,
            if quick { 1 } else { 3 },
        );
        let t_inter = time_min(
            || {
                let _ = search_database_inter(
                    &cfg,
                    &query,
                    &db,
                    SearchOptions::new().threads(threads).top_n(5),
                )
                .unwrap();
            },
            1,
            if quick { 1 } else { 3 },
        );
        let base = *t1.get_or_insert(t_intra);
        table.row(vec![
            threads.to_string(),
            format!("{:.3}", t_intra.as_secs_f64()),
            format!("{:.3}", t_inter.as_secs_f64()),
            format!(
                "{:.2}",
                query.len() as f64 * stats.total_residues as f64 / t_intra.as_secs_f64() / 1e9
            ),
            format!("{:.2}x", base.as_secs_f64() / t_intra.as_secs_f64()),
        ]);
        threads *= 2;
    }
    println!("{}", table.render());
    println!(
        "expected shape on multi-core hosts: near-linear speedup until memory bandwidth saturates."
    );
}
