//! `perf_gate` — perf-trajectory gate for bench envelopes.
//!
//! Compares a freshly measured bench document against the checked-in
//! baseline under `results/` and fails (exit 1) when performance
//! regressed beyond the tolerance band:
//!
//! * latency fields (`*_us`, `*_ns`) must satisfy
//!   `fresh <= baseline * factor` — unless the fresh value is below
//!   the absolute floor, where run-to-run noise dominates and no
//!   regression claim is meaningful;
//! * rate fields (`throughput_rps`, `gcups`) must satisfy
//!   `fresh * factor >= baseline`.
//!
//! The default factor is deliberately loose (8×): CI machines are
//! shared and noisy, and the gate exists to catch *trajectory*
//! mistakes — an accidentally quadratic queue, a lock held across a
//! sweep — not single-digit-percent drift. Tighten with `--factor`
//! for controlled hardware.
//!
//! Rows are matched by their `source` field; a baseline row missing
//! from the fresh document is an error (coverage must not silently
//! shrink), while a fresh row missing from the baseline is reported
//! but tolerated (new metrics appear before their baselines do).
//!
//! Usage:
//! ```text
//! perf_gate --baseline results/BENCH_serve_latency.json \
//!           --fresh /tmp/fresh.json [--factor 8] [--floor-us 20000]
//! ```

use std::process::ExitCode;

use aalign_obs::wire::JsonValue;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Numeric view of a field (integers and floats both gate).
fn num(v: &JsonValue) -> Option<f64> {
    v.as_f64().or_else(|| v.as_u64().map(|n| n as f64))
}

fn str_of<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(|s| s.as_str())
}

/// Validate the envelope shape shared by `BENCH_*.json` documents:
/// versioned, named, with a non-empty `rows` array of objects that
/// carry a `source` label.
fn validate(doc: &JsonValue, path: &str) -> Result<Vec<JsonValue>, String> {
    aalign_obs::wire::check_version(doc).map_err(|e| format!("{path}: {e}"))?;
    if str_of(doc, "bench").is_none() {
        return Err(format!("{path}: missing string field \"bench\""));
    }
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path}: missing array field \"rows\""))?;
    if rows.is_empty() {
        return Err(format!("{path}: \"rows\" is empty — nothing was measured"));
    }
    for row in rows {
        if str_of(row, "source").is_none() {
            return Err(format!("{path}: row without a \"source\" label: {row:?}"));
        }
    }
    Ok(rows.to_vec())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(violations) => {
            eprintln!("perf_gate: {violations} violation(s) beyond the tolerance band");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf_gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<usize, String> {
    let baseline_path = arg(args, "--baseline").ok_or("--baseline <json> required")?;
    let fresh_path = arg(args, "--fresh").ok_or("--fresh <json> required")?;
    let factor: f64 = match arg(args, "--factor") {
        None => 8.0,
        Some(v) => v
            .parse()
            .ok()
            .filter(|f| *f >= 1.0)
            .ok_or("--factor expects a number >= 1")?,
    };
    let floor_us: f64 = match arg(args, "--floor-us") {
        None => 20_000.0,
        Some(v) => v.parse().map_err(|_| "--floor-us expects a number")?,
    };

    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;
    let base_rows = validate(&baseline, &baseline_path)?;
    let fresh_rows = validate(&fresh, &fresh_path)?;
    let (base_bench, fresh_bench) = (
        str_of(&baseline, "bench").unwrap().to_string(),
        str_of(&fresh, "bench").unwrap().to_string(),
    );
    if base_bench != fresh_bench {
        return Err(format!(
            "bench mismatch: baseline is {base_bench:?}, fresh is {fresh_bench:?}"
        ));
    }

    println!("perf_gate: {base_bench} — factor {factor}×, latency floor {floor_us}µs");
    let mut violations = 0usize;
    for base_row in &base_rows {
        let source = str_of(base_row, "source").unwrap();
        let Some(fresh_row) = fresh_rows
            .iter()
            .find(|r| str_of(r, "source") == Some(source))
        else {
            println!("  FAIL {source}: row missing from fresh document");
            violations += 1;
            continue;
        };
        let Some(fields) = base_row.as_object() else {
            continue;
        };
        for (key, base_val) in fields {
            let Some(base_n) = num(base_val) else {
                continue;
            };
            let Some(fresh_n) = fresh_row.get(key).and_then(num) else {
                println!("  FAIL {source}.{key}: field missing from fresh document");
                violations += 1;
                continue;
            };
            let lat_key = key.ends_with("_us") || key.ends_with("_ns");
            let rate_key = key == "throughput_rps" || key == "gcups";
            if lat_key {
                // Convert the floor into this field's unit.
                let floor = if key.ends_with("_ns") {
                    floor_us * 1000.0
                } else {
                    floor_us
                };
                if fresh_n > base_n * factor && fresh_n > floor {
                    println!(
                        "  FAIL {source}.{key}: {fresh_n:.0} > {base_n:.0} × {factor} (baseline)"
                    );
                    violations += 1;
                } else {
                    println!("  ok   {source}.{key}: {fresh_n:.0} (baseline {base_n:.0})");
                }
            } else if rate_key {
                if fresh_n * factor < base_n {
                    println!(
                        "  FAIL {source}.{key}: {fresh_n:.2} < {base_n:.2} / {factor} (baseline)"
                    );
                    violations += 1;
                } else {
                    println!("  ok   {source}.{key}: {fresh_n:.2} (baseline {base_n:.2})");
                }
            }
        }
    }
    for fresh_row in &fresh_rows {
        let source = str_of(fresh_row, "source").unwrap();
        if !base_rows
            .iter()
            .any(|r| str_of(r, "source") == Some(source))
        {
            println!("  note {source}: new row with no baseline yet (not gated)");
        }
    }
    Ok(violations)
}
