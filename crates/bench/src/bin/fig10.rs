//! Fig. 10 — iterate vs. scan vs. hybrid across the nine QC_MI
//! similarity classes.
//!
//! The paper aligns `Q2000` against nine BLAST-selected subjects, one
//! per (query-coverage × max-identity) class; here the subjects come
//! from the controlled pair generator. Eight panels: {SW, NW} ×
//! {linear, affine} × {CPU, MIC}, 32-bit elements.
//!
//! Shape to reproduce (paper Sec. VI-B): with linear gaps iterate
//! always wins and hybrid tracks it; with affine gaps scan wins on
//! similar pairs (hi/md coverage × identity), iterate on dissimilar
//! ones, and hybrid tracks the better of the two.
//!
//! Usage: `cargo run --release -p aalign-bench --bin fig10 [--quick]`

use aalign_bench::harness::{four_configs, print_banner, time_min, Platform, Table};
use aalign_bio::synth::{named_query, nine_similarity_specs, seeded_rng};
use aalign_core::{Aligner, Strategy, WidthPolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_banner("Fig. 10 — strategies across QC_MI similarity classes (i32)");

    let mut rng = seeded_rng(10);
    let qlen = if quick { 500 } else { 2000 };
    let query = named_query(&mut rng, qlen);
    let pairs: Vec<_> = nine_similarity_specs()
        .iter()
        .map(|spec| (spec.label(), spec.generate(&mut rng, &query)))
        .collect();
    let (warmup, reps) = if quick { (1, 2) } else { (1, 3) };

    for cfg in four_configs() {
        for platform in Platform::ALL {
            println!(
                "## {} on {} {}",
                cfg.label(),
                platform.label(),
                if platform.native() { "" } else { "(emulated)" }
            );
            let mut table = Table::new(vec![
                "QC_MI",
                "iterate ms",
                "scan ms",
                "hybrid ms",
                "winner",
                "hybrid≈winner",
                "lazy sweeps/col",
            ]);
            let make = |s: Strategy| {
                Aligner::new(cfg.clone())
                    .with_strategy(s)
                    .with_isa(platform.isa())
                    .with_width(WidthPolicy::Fixed32)
            };
            let it = make(Strategy::StripedIterate);
            let sc = make(Strategy::StripedScan);
            let hy = make(Strategy::Hybrid);
            let pq_it = it.prepare(&query).unwrap();
            let pq_sc = sc.prepare(&query).unwrap();
            let pq_hy = hy.prepare(&query).unwrap();
            let mut scratch = aalign_core::AlignScratch::new();

            for (label, pair) in &pairs {
                let s = &pair.subject;
                let want = it.align_prepared(&pq_it, s, &mut scratch).unwrap();
                assert_eq!(
                    sc.align_prepared(&pq_sc, s, &mut scratch).unwrap().score,
                    want.score
                );
                assert_eq!(
                    hy.align_prepared(&pq_hy, s, &mut scratch).unwrap().score,
                    want.score
                );
                let sweeps_per_col =
                    want.stats.lazy_sweeps as f64 / want.stats.iterate_columns.max(1) as f64;

                let t_it = time_min(
                    || {
                        let _ = it.align_prepared(&pq_it, s, &mut scratch).unwrap();
                    },
                    warmup,
                    reps,
                );
                let t_sc = time_min(
                    || {
                        let _ = sc.align_prepared(&pq_sc, s, &mut scratch).unwrap();
                    },
                    warmup,
                    reps,
                );
                let t_hy = time_min(
                    || {
                        let _ = hy.align_prepared(&pq_hy, s, &mut scratch).unwrap();
                    },
                    warmup,
                    reps,
                );
                let winner = if t_it <= t_sc { "iterate" } else { "scan" };
                let best = t_it.min(t_sc);
                // "Hybrid approximates the better solution" (paper):
                // within 25 % of the winner, or faster.
                let tracks = t_hy.as_secs_f64() <= best.as_secs_f64() * 1.25;
                table.row(vec![
                    (*label).clone(),
                    format!("{:.3}", t_it.as_secs_f64() * 1e3),
                    format!("{:.3}", t_sc.as_secs_f64() * 1e3),
                    format!("{:.3}", t_hy.as_secs_f64() * 1e3),
                    winner.to_string(),
                    if tracks { "yes" } else { "NO" }.to_string(),
                    format!("{sweeps_per_col:.2}"),
                ]);
            }
            println!("{}", table.render());
        }
    }
}
