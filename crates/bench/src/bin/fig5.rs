//! Fig. 5 — the hybrid method's switching trace.
//!
//! The paper's example subject has a highly similar middle region:
//! pure iterate drowns in re-computations there, pure scan wastes the
//! cheap head and tail, and the hybrid switches to scan inside the
//! similar region and probes back out of it. This harness builds
//! exactly that subject (random head, near-identical middle, random
//! tail), prints the per-column lazy-sweep counts and where the
//! hybrid switched, and times all three strategies.
//!
//! Usage: `cargo run --release -p aalign-bench --bin fig5`

use aalign_bench::harness::{print_banner, time_min, Platform, Table};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, random_protein, seeded_rng};
use aalign_bio::Sequence;
use aalign_core::striped::StrategyChoice;
use aalign_core::{AlignConfig, Aligner, GapModel, HybridPolicy, Strategy, WidthPolicy};

fn main() {
    print_banner("Fig. 5 — hybrid switching trace (SW-affine)");

    let mut rng = seeded_rng(5);
    let query = named_query(&mut rng, 600);

    // Subject: dissimilar head (600), near-identical middle (600 from
    // the query itself), dissimilar tail (600).
    let head = random_protein(&mut rng, "head", 600);
    let tail = random_protein(&mut rng, "tail", 600);
    let mut subject_idx = Vec::new();
    subject_idx.extend_from_slice(head.indices());
    subject_idx.extend_from_slice(query.indices());
    subject_idx.extend_from_slice(tail.indices());
    let subject = Sequence::from_indices("head+query+tail", query.alphabet(), subject_idx);

    let cfg = AlignConfig::local(GapModel::affine(-10, -2), &BLOSUM62);
    let policy = HybridPolicy {
        threshold: 2,
        probe_stride: 64,
    };

    // Trace via the core hybrid API.
    let prof = aalign_bio::StripedProfile::<i32>::build(&query, &cfg.matrix, 16);
    let mut ws = aalign_core::Workspace::new();
    let rep = aalign_core::striped::hybrid_align::<_, true, true>(
        aalign_vec::EmuEngine::<i32, 16>::new(),
        &prof,
        subject.indices(),
        cfg.table2(),
        policy,
        &mut ws,
        true,
    );

    // Aggregate the trace into 100-column bins (like the figure's x axis).
    println!("per-100-column summary (I = iterate cols, S = scan cols, sweeps = lazy sweeps):");
    let mut table = Table::new(vec!["columns", "iterate", "scan", "lazy sweeps"]);
    for (bin, chunk) in rep.trace.chunks(100).enumerate() {
        let mut it = 0usize;
        let mut sc = 0usize;
        let mut sweeps = 0u64;
        for ev in chunk {
            match ev {
                StrategyChoice::Iterate(s) => {
                    it += 1;
                    sweeps += u64::from(*s);
                }
                StrategyChoice::Scan => sc += 1,
            }
        }
        table.row(vec![
            format!("{}..{}", bin * 100, bin * 100 + chunk.len()),
            it.to_string(),
            sc.to_string(),
            sweeps.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "switches to scan: {}, probes that stayed in iterate: {}",
        rep.switches_to_scan, rep.probes_stayed
    );
    println!();

    // Wall-clock comparison of the three strategies on this subject.
    let mut table = Table::new(vec!["strategy", "ms"]);
    for strat in [
        Strategy::StripedIterate,
        Strategy::StripedScan,
        Strategy::Hybrid,
    ] {
        let al = Aligner::new(cfg.clone())
            .with_strategy(strat)
            .with_isa(Platform::Mic.isa())
            .with_width(WidthPolicy::Fixed32)
            .with_hybrid_policy(policy);
        let pq = al.prepare(&query).unwrap();
        let mut scratch = aalign_core::AlignScratch::new();
        let t = time_min(
            || {
                let _ = al.align_prepared(&pq, &subject, &mut scratch).unwrap();
            },
            1,
            5,
        );
        table.row(vec![
            strat.short().to_string(),
            format!("{:.3}", t.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: hybrid ≤ min(iterate, scan) + probe overhead.");
}
