//! Fig. 9 — AAlign vector kernels vs. the optimized sequential
//! baseline.
//!
//! Panels (a–d) of the paper: {SW, NW} × {linear, affine} on CPU and
//! MIC; queries of growing length against the fixed subject `Q282`;
//! 32-bit elements everywhere (the paper's configuration). Reported:
//! wall time per alignment, GCUPS, and the speedup of
//! striped-iterate and striped-scan over the sequential kernel.
//!
//! Usage: `cargo run --release -p aalign-bench --bin fig9 [--quick]`

use aalign_bench::harness::{four_configs, gcups, print_banner, time_min, Platform, Table};
use aalign_bio::synth::{named_query, seeded_rng};
use aalign_core::{Aligner, Strategy, WidthPolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print_banner("Fig. 9 — AAlign vs optimized sequential (subject Q282, i32)");

    let mut rng = seeded_rng(9);
    let subject = named_query(&mut rng, 282);
    let query_lens: &[usize] = if quick {
        &[100, 282, 1000]
    } else {
        &[100, 200, 282, 500, 1000, 2000, 4000]
    };
    let queries: Vec<_> = query_lens
        .iter()
        .map(|&l| named_query(&mut rng, l))
        .collect();
    let (warmup, reps) = if quick { (1, 3) } else { (2, 5) };

    for cfg in four_configs() {
        for platform in Platform::ALL {
            println!(
                "## {} on {} {}",
                cfg.label(),
                platform.label(),
                if platform.native() { "" } else { "(emulated)" }
            );
            let mut table = Table::new(vec![
                "query",
                "seq ms",
                "iterate ms",
                "scan ms",
                "iterate GCUPS",
                "scan GCUPS",
                "iterate speedup",
                "scan speedup",
            ]);
            for q in &queries {
                let seq = Aligner::new(cfg.clone()).with_strategy(Strategy::Sequential);
                let make = |s: Strategy| {
                    Aligner::new(cfg.clone())
                        .with_strategy(s)
                        .with_isa(platform.isa())
                        .with_width(WidthPolicy::Fixed32)
                };
                let it = make(Strategy::StripedIterate);
                let sc = make(Strategy::StripedScan);

                // Sanity: identical scores before timing.
                let want = seq.align(q, &subject).unwrap().score;
                assert_eq!(it.align(q, &subject).unwrap().score, want);
                assert_eq!(sc.align(q, &subject).unwrap().score, want);

                let t_seq = time_min(
                    || {
                        let _ = seq.align(q, &subject).unwrap();
                    },
                    warmup,
                    reps,
                );
                let pq_it = it.prepare(q).unwrap();
                let pq_sc = sc.prepare(q).unwrap();
                let mut scratch = aalign_core::AlignScratch::new();
                let t_it = time_min(
                    || {
                        let _ = it.align_prepared(&pq_it, &subject, &mut scratch).unwrap();
                    },
                    warmup,
                    reps,
                );
                let t_sc = time_min(
                    || {
                        let _ = sc.align_prepared(&pq_sc, &subject, &mut scratch).unwrap();
                    },
                    warmup,
                    reps,
                );

                table.row(vec![
                    q.id().to_string(),
                    format!("{:.3}", t_seq.as_secs_f64() * 1e3),
                    format!("{:.3}", t_it.as_secs_f64() * 1e3),
                    format!("{:.3}", t_sc.as_secs_f64() * 1e3),
                    format!("{:.2}", gcups(q.len(), subject.len(), t_it)),
                    format!("{:.2}", gcups(q.len(), subject.len(), t_sc)),
                    format!("{:.2}x", t_seq.as_secs_f64() / t_it.as_secs_f64()),
                    format!("{:.2}x", t_seq.as_secs_f64() / t_sc.as_secs_f64()),
                ]);
            }
            println!("{}", table.render());
        }
    }
}
