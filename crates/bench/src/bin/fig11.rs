//! Fig. 11 — multi-threaded AAlign SW-affine vs. the SWPS3-like and
//! SWAPHI-like comparators on a swiss-prot-like database.
//!
//! Panel (a): CPU — AAlign (hybrid, i16 auto) vs. SWPS3-like
//! (i8-first with overflow fallback). Paper shape: AAlign wins up to
//! ≈2.5× on short/medium queries; SWPS3's 8-bit buffers win on the
//! longest (Q4000) query.
//! Panel (b): MIC — AAlign (hybrid, i32, 512-bit) vs. SWAPHI-like
//! (plain iterate, i32). Paper shape: AAlign ≈1.6× from the hybrid.
//!
//! Usage: `cargo run --release -p aalign-bench --bin fig11 [--quick]
//!         [--json] [--out BENCH_fig11.json]`
//!
//! `--json` additionally writes a machine-readable `BENCH_fig11.json`
//! (GCUPS, speedups, per-kernel `RunStats`, env info) for the perf
//! trajectory.

use std::time::Duration;

use aalign_baselines::swps3_like::{Swps3Like, Swps3Scratch};
use aalign_baselines::SwaphiLike;
use aalign_bench::harness::{
    json_f64, json_str, print_banner, run_stats_json, time_min, write_bench_json, Platform, Table,
};
use aalign_bio::matrices::BLOSUM62;
use aalign_bio::synth::{named_query, seeded_rng, swissprot_like_db};
use aalign_bio::SeqDatabase;
use aalign_core::{AlignConfig, AlignScratch, Aligner, GapModel, Strategy, WidthPolicy};
use aalign_par::{search_database, SearchOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_fig11.json", String::as_str);
    let mut rows: Vec<String> = Vec::new();
    print_banner("Fig. 11 — multithreaded SW-affine vs SWPS3-like / SWAPHI-like");

    let db_size = if quick { 300 } else { 2000 };
    let base_db = swissprot_like_db(11, db_size);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("threads: {threads}");
    println!();

    let mut rng = seeded_rng(1111);
    let qlens: &[usize] = if quick {
        &[110, 1000]
    } else {
        &[110, 282, 500, 1000, 2000, 4000]
    };
    // Real queries have homologs in swiss-prot (that is the point of
    // searching it); plant ~4 % homologs of each query into its
    // database so the hybrid's switching matters, as it does in the
    // paper's runs (see DESIGN.md substitutions).
    let homolog_specs = [
        aalign_bio::synth::PairSpec::new(
            aalign_bio::synth::Level::Hi,
            aalign_bio::synth::Level::Hi,
        ),
        aalign_bio::synth::PairSpec::new(
            aalign_bio::synth::Level::Hi,
            aalign_bio::synth::Level::Md,
        ),
        aalign_bio::synth::PairSpec::new(
            aalign_bio::synth::Level::Md,
            aalign_bio::synth::Level::Hi,
        ),
        aalign_bio::synth::PairSpec::new(
            aalign_bio::synth::Level::Md,
            aalign_bio::synth::Level::Md,
        ),
    ];
    let queries: Vec<_> = qlens
        .iter()
        .map(|&l| {
            let q = named_query(&mut rng, l);
            let mut seqs = base_db.sequences().to_vec();
            let per_spec = db_size / 100; // 4 specs → ~4 %
            for spec in &homolog_specs {
                for _ in 0..per_spec {
                    seqs.push(spec.generate(&mut rng, &q).subject);
                }
            }
            (q, SeqDatabase::new(seqs))
        })
        .collect();
    let stats = queries[0].1.stats();
    println!(
        "database: {} seqs, mean len {:.0} (swiss-prot-like, ~4% planted homologs per query)",
        stats.count, stats.mean_len
    );
    let gap = GapModel::affine(-10, -2);
    let (warmup, reps) = (0, if quick { 1 } else { 2 });

    // ---------------- Panel (a): CPU ----------------
    println!(
        "## (a) CPU: AAlign hybrid (i16 auto) vs SWPS3-like (i8→i16) {}",
        if Platform::Cpu.native() {
            ""
        } else {
            "(emulated)"
        }
    );
    let mut ta = Table::new(vec![
        "query",
        "aalign s",
        "swps3 s",
        "speedup",
        "aalign GCUPS",
    ]);
    for (q, db) in &queries {
        let aalign = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
            .with_isa(Platform::Cpu.isa())
            .with_width(WidthPolicy::Auto);
        let opts = || SearchOptions::new().threads(threads).top_n(10);
        // One untimed pass captures the kernel counters for the row.
        let kernel = search_database(&aalign, q, db, opts())
            .unwrap()
            .metrics
            .kernel_stats;
        let t_aalign = time_min(
            || {
                let _ = search_database(&aalign, q, db, opts()).unwrap();
            },
            warmup,
            reps,
        );
        let t_swps3 = time_swps3(q, gap, db, threads, warmup, reps);
        let g = q.len() as f64 * stats.total_residues as f64 / t_aalign.as_secs_f64() / 1e9;
        ta.row(vec![
            q.id().to_string(),
            format!("{:.3}", t_aalign.as_secs_f64()),
            format!("{:.3}", t_swps3.as_secs_f64()),
            format!("{:.2}x", t_swps3.as_secs_f64() / t_aalign.as_secs_f64()),
            format!("{g:.2}"),
        ]);
        rows.push(format!(
            "{{\"panel\":\"cpu\",\"query\":{},\"qlen\":{},\"aalign_s\":{},\
             \"baseline\":\"swps3-like\",\"baseline_s\":{},\"speedup\":{},\
             \"gcups\":{},\"kernel\":{}}}",
            json_str(q.id()),
            q.len(),
            json_f64(t_aalign.as_secs_f64()),
            json_f64(t_swps3.as_secs_f64()),
            json_f64(t_swps3.as_secs_f64() / t_aalign.as_secs_f64()),
            json_f64(g),
            run_stats_json(&kernel),
        ));
    }
    println!("{}", ta.render());

    // ---------------- Panel (b): MIC ----------------
    println!(
        "## (b) MIC (512-bit): AAlign hybrid (i32) vs SWAPHI-like (i32 iterate) {}",
        if Platform::Mic.native() {
            ""
        } else {
            "(emulated)"
        }
    );
    let mut tb = Table::new(vec![
        "query",
        "aalign s",
        "swaphi s",
        "speedup",
        "aalign GCUPS",
    ]);
    for (q, db) in &queries {
        let aalign = Aligner::new(AlignConfig::local(gap, &BLOSUM62))
            .with_strategy(Strategy::Hybrid)
            .with_isa(Platform::Mic.isa())
            .with_width(WidthPolicy::Fixed32);
        let opts = || SearchOptions::new().threads(threads).top_n(10);
        let kernel = search_database(&aalign, q, db, opts())
            .unwrap()
            .metrics
            .kernel_stats;
        let t_aalign = time_min(
            || {
                let _ = search_database(&aalign, q, db, opts()).unwrap();
            },
            warmup,
            reps,
        );
        let t_swaphi = time_swaphi(q, gap, db, threads, warmup, reps);
        let g = q.len() as f64 * stats.total_residues as f64 / t_aalign.as_secs_f64() / 1e9;
        tb.row(vec![
            q.id().to_string(),
            format!("{:.3}", t_aalign.as_secs_f64()),
            format!("{:.3}", t_swaphi.as_secs_f64()),
            format!("{:.2}x", t_swaphi.as_secs_f64() / t_aalign.as_secs_f64()),
            format!("{g:.2}"),
        ]);
        rows.push(format!(
            "{{\"panel\":\"mic\",\"query\":{},\"qlen\":{},\"aalign_s\":{},\
             \"baseline\":\"swaphi-like\",\"baseline_s\":{},\"speedup\":{},\
             \"gcups\":{},\"kernel\":{}}}",
            json_str(q.id()),
            q.len(),
            json_f64(t_aalign.as_secs_f64()),
            json_f64(t_swaphi.as_secs_f64()),
            json_f64(t_swaphi.as_secs_f64() / t_aalign.as_secs_f64()),
            json_f64(g),
            run_stats_json(&kernel),
        ));
    }
    println!("{}", tb.render());

    if json {
        write_bench_json(out_path, "fig11", threads, &rows).expect("write bench json");
    }
}

/// Multithreaded SWPS3-like database sweep with the same dynamic
/// binding as aalign-par.
fn time_swps3(
    q: &aalign_bio::Sequence,
    gap: GapModel,
    db: &SeqDatabase,
    threads: usize,
    warmup: usize,
    reps: usize,
) -> Duration {
    let tool = Swps3Like::new(q, gap, &BLOSUM62);
    let order = db.sorted_by_length_desc();
    time_min(
        || {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut scratch = Swps3Scratch::new();
                        loop {
                            let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if slot >= order.len() {
                                break;
                            }
                            let _ = tool.align(db.get(order[slot]), &mut scratch);
                        }
                    });
                }
            });
        },
        warmup,
        reps,
    )
}

/// Multithreaded SWAPHI-like database sweep.
fn time_swaphi(
    q: &aalign_bio::Sequence,
    gap: GapModel,
    db: &SeqDatabase,
    threads: usize,
    warmup: usize,
    reps: usize,
) -> Duration {
    let tool = SwaphiLike::new(q, gap, &BLOSUM62);
    let order = db.sorted_by_length_desc();
    time_min(
        || {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut ws = AlignScratch::new();
                        loop {
                            let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if slot >= order.len() {
                                break;
                            }
                            let _ = tool.align(db.get(order[slot]), &mut ws);
                        }
                    });
                }
            });
        },
        warmup,
        reps,
    )
}
