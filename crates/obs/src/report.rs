//! Hybrid decision timelines reconstructed from a parsed trace.
//!
//! [`TraceReport::from_events`] folds a flat event stream back into
//! per-subject structure: runs of consecutive same-strategy columns
//! become [`StrategySegment`]s, and the per-subject counters are
//! cross-checked against the `align_end` summary the kernel reported
//! ([`SubjectTimeline::reconciled`]). That check is the PR's
//! acceptance gate: the per-column events must *exactly* explain the
//! `RunStats` totals, or the trace is lying about what the kernel
//! did.
//!
//! [`TraceReport::render`] is the backend of `aalign trace-report`.

use std::fmt::Write as _;

use crate::event::{ProbeOutcome, StrategyKind, TraceEvent};

/// A maximal run of consecutive columns processed by one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategySegment {
    /// Strategy for every column in the run.
    pub strategy: StrategyKind,
    /// First column of the run (inclusive).
    pub start: u64,
    /// Last column of the run (inclusive).
    pub end: u64,
    /// Lazy-loop sweeps accumulated across the run (iterate only).
    pub lazy_sweeps: u64,
}

impl StrategySegment {
    /// Columns covered by the run.
    pub fn columns(&self) -> u64 {
        self.end - self.start + 1
    }
}

/// One subject's reconstructed alignment timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectTimeline {
    /// Database index of the subject.
    pub subject: u64,
    /// Subject length in residues.
    pub len: u64,
    /// Worker that aligned it.
    pub worker: u64,
    /// Final score from `align_end`.
    pub score: i64,
    /// Alignment wall time in microseconds.
    pub dur_us: u64,
    /// Strategy runs, in column order.
    pub segments: Vec<StrategySegment>,
    /// Iterate→scan switches observed in the column stream.
    pub switches: u64,
    /// Probe columns that kept the kernel in iterate mode.
    pub probes_stayed: u64,
    /// Probe columns that sent the kernel back to scan mode.
    pub probes_returned: u64,
    /// Iterate columns counted from the column stream.
    pub iterate_columns: u64,
    /// Scan columns counted from the column stream.
    pub scan_columns: u64,
    /// Lazy sweeps summed from the column stream.
    pub lazy_sweeps: u64,
    /// Iterate/scan totals the kernel reported in `align_end`.
    pub reported: (u64, u64),
    /// Overflow rescues observed, as `(from_bits, to_bits)` widening
    /// steps in stream order.
    pub rescues: Vec<(u64, u64)>,
}

impl SubjectTimeline {
    /// True when the per-column events exactly explain the kernel's
    /// own `align_end` summary — the trace's integrity invariant.
    pub fn reconciled(&self) -> bool {
        (self.iterate_columns, self.scan_columns) == self.reported
            && self.iterate_columns + self.scan_columns == self.len
    }
}

/// A whole query's trace, reassembled.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Query id from `query_begin` (empty if the framing was absent).
    pub query: String,
    /// Subject count promised by `query_begin`.
    pub subjects: u64,
    /// Hits reported by `query_end`.
    pub hits: u64,
    /// Total query wall time in microseconds (from `query_end`).
    pub total_us: u64,
    /// Engine stage spans as `(name, dur_us)`, in completion order.
    pub spans: Vec<(String, u64)>,
    /// Per-subject timelines, in stream order.
    pub timelines: Vec<SubjectTimeline>,
}

/// State for the subject currently being folded.
struct OpenSubject {
    timeline: SubjectTimeline,
    prev_strategy: Option<StrategyKind>,
}

impl TraceReport {
    /// Fold a flat event stream into per-subject timelines.
    ///
    /// Structural violations — a `col` outside an `align_begin` /
    /// `align_end` envelope, a dangling `align_begin`, mismatched
    /// subject ids — are hard errors: they mean the producer broke
    /// the framing contract, and any numbers derived from such a
    /// stream would be untrustworthy.
    pub fn from_events(events: &[TraceEvent]) -> Result<TraceReport, String> {
        let mut report = TraceReport::default();
        let mut open: Option<OpenSubject> = None;
        for (i, ev) in events.iter().enumerate() {
            match ev {
                TraceEvent::QueryBegin { query, subjects } => {
                    report.query = query.clone();
                    report.subjects = *subjects;
                }
                TraceEvent::QueryEnd { at_us, hits } => {
                    report.total_us = *at_us;
                    report.hits = *hits;
                }
                TraceEvent::SpanBegin { .. } => {}
                // Serve-stack stage events interleave freely with the
                // engine envelope and carry no kernel decisions; the
                // per-query timeline ignores them.
                TraceEvent::Stage { .. } => {}
                TraceEvent::SpanEnd { span, dur_us, .. } => {
                    report.spans.push((span.clone(), *dur_us));
                }
                TraceEvent::AlignBegin {
                    subject,
                    len,
                    worker,
                } => {
                    if open.is_some() {
                        return Err(format!(
                            "event {i}: align_begin for subject {subject} \
                             while a previous subject is still open"
                        ));
                    }
                    open = Some(OpenSubject {
                        timeline: SubjectTimeline {
                            subject: *subject,
                            len: *len,
                            worker: *worker,
                            score: 0,
                            dur_us: 0,
                            segments: Vec::new(),
                            switches: 0,
                            probes_stayed: 0,
                            probes_returned: 0,
                            iterate_columns: 0,
                            scan_columns: 0,
                            lazy_sweeps: 0,
                            reported: (0, 0),
                            rescues: Vec::new(),
                        },
                        prev_strategy: None,
                    });
                }
                TraceEvent::Hybrid(h) => {
                    let cur = open
                        .as_mut()
                        .ok_or_else(|| format!("event {i}: col outside align envelope"))?;
                    let t = &mut cur.timeline;
                    match h.strategy {
                        StrategyKind::Iterate => t.iterate_columns += 1,
                        StrategyKind::Scan => t.scan_columns += 1,
                    }
                    t.lazy_sweeps += u64::from(h.lazy_sweeps);
                    if h.switched {
                        t.switches += 1;
                    }
                    match h.probe {
                        ProbeOutcome::NotProbe => {}
                        ProbeOutcome::Stayed => t.probes_stayed += 1,
                        ProbeOutcome::Returned => t.probes_returned += 1,
                    }
                    if cur.prev_strategy == Some(h.strategy) {
                        let seg = t.segments.last_mut().expect("segment for prev strategy");
                        seg.end = h.column;
                        seg.lazy_sweeps += u64::from(h.lazy_sweeps);
                    } else {
                        t.segments.push(StrategySegment {
                            strategy: h.strategy,
                            start: h.column,
                            end: h.column,
                            lazy_sweeps: u64::from(h.lazy_sweeps),
                        });
                        cur.prev_strategy = Some(h.strategy);
                    }
                }
                TraceEvent::Rescue {
                    subject,
                    from_bits,
                    to_bits,
                } => {
                    let cur = open
                        .as_mut()
                        .ok_or_else(|| format!("event {i}: rescue outside align envelope"))?;
                    let t = &mut cur.timeline;
                    if t.subject != *subject {
                        return Err(format!(
                            "event {i}: rescue for subject {subject} inside \
                             an envelope opened for subject {}",
                            t.subject
                        ));
                    }
                    // Any columns seen so far belonged to the
                    // discarded narrow run; only the kept run must
                    // reconcile against the `align_end` totals.
                    t.segments.clear();
                    t.switches = 0;
                    t.probes_stayed = 0;
                    t.probes_returned = 0;
                    t.iterate_columns = 0;
                    t.scan_columns = 0;
                    t.lazy_sweeps = 0;
                    cur.prev_strategy = None;
                    t.rescues.push((*from_bits, *to_bits));
                }
                TraceEvent::AlignEnd {
                    subject,
                    score,
                    iterate_columns,
                    scan_columns,
                    dur_us,
                } => {
                    let cur = open
                        .take()
                        .ok_or_else(|| format!("event {i}: align_end without align_begin"))?;
                    let mut t = cur.timeline;
                    if t.subject != *subject {
                        return Err(format!(
                            "event {i}: align_end for subject {subject} closes \
                             an envelope opened for subject {}",
                            t.subject
                        ));
                    }
                    t.score = *score;
                    t.dur_us = *dur_us;
                    t.reported = (*iterate_columns, *scan_columns);
                    report.timelines.push(t);
                }
            }
        }
        if let Some(cur) = open {
            return Err(format!(
                "stream ended with subject {} still open",
                cur.timeline.subject
            ));
        }
        Ok(report)
    }

    /// True when every subject's column stream reconciles with its
    /// kernel-reported totals.
    pub fn reconciled(&self) -> bool {
        self.timelines.iter().all(SubjectTimeline::reconciled)
    }

    /// Subjects that fail [`SubjectTimeline::reconciled`].
    pub fn unreconciled(&self) -> Vec<u64> {
        self.timelines
            .iter()
            .filter(|t| !t.reconciled())
            .map(|t| t.subject)
            .collect()
    }

    /// Render the human-readable report: query header, stage spans,
    /// and up to `max_subjects` per-subject strategy timelines
    /// (subjects with the most strategy activity first).
    pub fn render(&self, max_subjects: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query {:?}: {} subjects, {} hits, {} us total",
            self.query, self.subjects, self.hits, self.total_us
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "stages:");
            for (name, dur) in &self.spans {
                let _ = writeln!(out, "  {name:<10} {dur:>10} us");
            }
        }
        let total = self.timelines.len();
        let mut order: Vec<&SubjectTimeline> = self.timelines.iter().collect();
        order.sort_by_key(|t| std::cmp::Reverse((t.segments.len(), t.lazy_sweeps)));
        order.truncate(max_subjects);
        let _ = writeln!(
            out,
            "subjects traced: {total} (showing {} with the most strategy activity)",
            order.len()
        );
        for t in order {
            let _ = writeln!(
                out,
                "subject {:>6} len {:>5} worker {:>2} score {:>7} {:>8} us  \
                 switches {} probes +{}/-{} lazy {}{}{}",
                t.subject,
                t.len,
                t.worker,
                t.score,
                t.dur_us,
                t.switches,
                t.probes_stayed,
                t.probes_returned,
                t.lazy_sweeps,
                if t.rescues.is_empty() {
                    String::new()
                } else {
                    let steps: Vec<String> = t
                        .rescues
                        .iter()
                        .map(|(from, to)| format!("{from}->{to}"))
                        .collect();
                    format!("  rescued {}", steps.join(","))
                },
                if t.reconciled() {
                    ""
                } else {
                    "  [UNRECONCILED]"
                },
            );
            let mut line = String::from("  ");
            for seg in &t.segments {
                let tag = match seg.strategy {
                    StrategyKind::Iterate => "iter",
                    StrategyKind::Scan => "scan",
                };
                let _ = write!(
                    line,
                    "[{}..{} {tag} x{}{}] ",
                    seg.start,
                    seg.end,
                    seg.columns(),
                    if seg.lazy_sweeps > 0 {
                        format!(" lazy {}", seg.lazy_sweeps)
                    } else {
                        String::new()
                    },
                );
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HybridEvent;

    fn col(column: u64, strategy: StrategyKind, sweeps: u32) -> TraceEvent {
        TraceEvent::Hybrid(HybridEvent {
            column,
            strategy,
            lazy_sweeps: sweeps,
            switched: false,
            probe: ProbeOutcome::NotProbe,
        })
    }

    fn well_formed() -> Vec<TraceEvent> {
        use StrategyKind::{Iterate, Scan};
        vec![
            TraceEvent::QueryBegin {
                query: "q0".to_string(),
                subjects: 1,
            },
            TraceEvent::SpanBegin {
                span: "sweep".to_string(),
                at_us: 0,
            },
            TraceEvent::AlignBegin {
                subject: 4,
                len: 6,
                worker: 2,
            },
            col(0, Iterate, 0),
            col(1, Iterate, 3),
            TraceEvent::Hybrid(HybridEvent {
                column: 2,
                strategy: Iterate,
                lazy_sweeps: 5,
                switched: true,
                probe: ProbeOutcome::NotProbe,
            }),
            col(3, Scan, 0),
            col(4, Scan, 0),
            TraceEvent::Hybrid(HybridEvent {
                column: 5,
                strategy: Iterate,
                lazy_sweeps: 1,
                switched: false,
                probe: ProbeOutcome::Stayed,
            }),
            TraceEvent::AlignEnd {
                subject: 4,
                score: 42,
                iterate_columns: 4,
                scan_columns: 2,
                dur_us: 17,
            },
            TraceEvent::SpanEnd {
                span: "sweep".to_string(),
                at_us: 20,
                dur_us: 20,
            },
            TraceEvent::QueryEnd { at_us: 21, hits: 1 },
        ]
    }

    #[test]
    fn folds_segments_and_reconciles() {
        let report = TraceReport::from_events(&well_formed()).unwrap();
        assert_eq!(report.query, "q0");
        assert_eq!(report.hits, 1);
        assert_eq!(report.spans, vec![("sweep".to_string(), 20)]);
        assert_eq!(report.timelines.len(), 1);
        let t = &report.timelines[0];
        assert_eq!(t.subject, 4);
        assert_eq!(t.segments.len(), 3, "iterate / scan / iterate runs");
        assert_eq!(t.segments[0].start, 0);
        assert_eq!(t.segments[0].end, 2);
        assert_eq!(t.segments[0].columns(), 3);
        assert_eq!(t.segments[0].lazy_sweeps, 8);
        assert_eq!(t.segments[1].strategy, StrategyKind::Scan);
        assert_eq!(t.switches, 1);
        assert_eq!(t.probes_stayed, 1);
        assert_eq!(t.probes_returned, 0);
        assert_eq!((t.iterate_columns, t.scan_columns), (4, 2));
        assert!(t.reconciled());
        assert!(report.reconciled());
        assert!(report.unreconciled().is_empty());
    }

    #[test]
    fn detects_unreconciled_totals() {
        let mut events = well_formed();
        // Corrupt the kernel summary so it disagrees with the stream.
        for ev in &mut events {
            if let TraceEvent::AlignEnd {
                iterate_columns, ..
            } = ev
            {
                *iterate_columns += 1;
            }
        }
        let report = TraceReport::from_events(&events).unwrap();
        assert!(!report.reconciled());
        assert_eq!(report.unreconciled(), vec![4]);
        assert!(report.render(10).contains("[UNRECONCILED]"));
    }

    #[test]
    fn rescue_resets_column_accumulators_and_is_recorded() {
        use StrategyKind::Iterate;
        let events = vec![
            TraceEvent::AlignBegin {
                subject: 7,
                len: 2,
                worker: 0,
            },
            // Columns of the saturated 8-bit run (a producer that
            // truncates would drop these; one that doesn't must still
            // reconcile on the kept run only).
            col(0, Iterate, 0),
            col(1, Iterate, 2),
            TraceEvent::Rescue {
                subject: 7,
                from_bits: 8,
                to_bits: 16,
            },
            col(0, Iterate, 0),
            col(1, Iterate, 1),
            TraceEvent::AlignEnd {
                subject: 7,
                score: 200,
                iterate_columns: 2,
                scan_columns: 0,
                dur_us: 5,
            },
        ];
        let report = TraceReport::from_events(&events).unwrap();
        let t = &report.timelines[0];
        assert_eq!(t.rescues, vec![(8, 16)]);
        assert_eq!((t.iterate_columns, t.scan_columns), (2, 0));
        assert_eq!(t.lazy_sweeps, 1, "discarded run's sweeps dropped");
        assert!(t.reconciled());
        assert!(report.render(5).contains("rescued 8->16"));

        let orphan = vec![TraceEvent::Rescue {
            subject: 0,
            from_bits: 8,
            to_bits: 16,
        }];
        assert!(TraceReport::from_events(&orphan)
            .unwrap_err()
            .contains("outside align envelope"));
    }

    #[test]
    fn rejects_broken_framing() {
        let orphan_col = vec![col(0, StrategyKind::Iterate, 0)];
        assert!(TraceReport::from_events(&orphan_col)
            .unwrap_err()
            .contains("outside align envelope"));

        let dangling = vec![TraceEvent::AlignBegin {
            subject: 0,
            len: 1,
            worker: 0,
        }];
        assert!(TraceReport::from_events(&dangling)
            .unwrap_err()
            .contains("still open"));

        let crossed = vec![
            TraceEvent::AlignBegin {
                subject: 0,
                len: 1,
                worker: 0,
            },
            TraceEvent::AlignEnd {
                subject: 1,
                score: 0,
                iterate_columns: 0,
                scan_columns: 0,
                dur_us: 0,
            },
        ];
        assert!(TraceReport::from_events(&crossed)
            .unwrap_err()
            .contains("closes an envelope"));
    }

    #[test]
    fn render_mentions_every_shown_strategy_run() {
        let report = TraceReport::from_events(&well_formed()).unwrap();
        let text = report.render(5);
        assert!(text.contains("iter"), "{text}");
        assert!(text.contains("scan"), "{text}");
        assert!(text.contains("lazy"), "{text}");
    }
}
